"""Small statistical helpers shared by benchmarks and experiment reports."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence


@dataclass(frozen=True)
class SummaryStats:
    """Summary statistics of a sample of non-negative measurements.

    ``stdev`` is the *sample* standard deviation (Bessel-corrected, the
    quantity benchmarks report as "sd"); it is 0.0 for samples of size 1,
    where the sample deviation is undefined.
    """

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    stdev: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} median={self.median:.2f} "
            f"min={self.minimum:.2f} max={self.maximum:.2f} sd={self.stdev:.2f}"
        )


def summarize_counts(values: Iterable[float]) -> Optional[SummaryStats]:
    """Summarise a sample; returns ``None`` for an empty sample."""
    data: List[float] = [float(v) for v in values]
    if not data:
        return None
    return SummaryStats(
        count=len(data),
        mean=statistics.fmean(data),
        median=statistics.median(data),
        minimum=min(data),
        maximum=max(data),
        stdev=statistics.stdev(data) if len(data) > 1 else 0.0,
    )


def growth_ratio(values: Sequence[float]) -> Optional[float]:
    """Average ratio between consecutive values (``None`` when undefined).

    Used to check growth shapes: a sequence that doubles every step has a
    growth ratio of about 2, a logarithmically growing one has a ratio close
    to 1.
    """
    if len(values) < 2:
        return None
    ratios = []
    for previous, current in zip(values, values[1:]):
        if previous <= 0:
            return None
        ratios.append(current / previous)
    return statistics.fmean(ratios)


def is_monotone_nondecreasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """Whether the sequence never decreases by more than ``tolerance``."""
    return all(b >= a - tolerance for a, b in zip(values, values[1:]))


def correlation_with_log(values: Sequence[float], sizes: Sequence[float]) -> Optional[float]:
    """Pearson correlation between measurements and ``log2`` of the problem sizes.

    Benchmarks use it as a coarse shape check that a measured quantity grows
    (at most) logarithmically: a strong positive correlation with ``log n``
    together with a small growth ratio is consistent with the Theta(log n)
    bounds of Theorems 4.1 and 4.6.
    """
    if len(values) != len(sizes) or len(values) < 3:
        return None
    logs = [math.log2(max(2.0, float(s))) for s in sizes]
    mean_v = statistics.fmean(values)
    mean_l = statistics.fmean(logs)
    cov = sum((v - mean_v) * (l - mean_l) for v, l in zip(values, logs))
    var_v = sum((v - mean_v) ** 2 for v in values)
    var_l = sum((l - mean_l) ** 2 for l in logs)
    if var_v == 0 or var_l == 0:
        return None
    return cov / math.sqrt(var_v * var_l)
