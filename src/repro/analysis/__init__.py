"""Analysis utilities: the Figure 4 results map, statistics and plain-text reporting."""

from repro.analysis.results_map import (
    Feasibility,
    ResultCell,
    RESULTS_MAP,
    results_map,
    feasibility,
    assumptions,
    models_in_map,
)
from repro.analysis.reporting import format_table, format_results_map
from repro.analysis.statistics import summarize_counts, SummaryStats
from repro.analysis.reachability import (
    ReachabilityResult,
    InvariantReport,
    StabilisationReport,
    explore,
    check_invariant,
    check_stabilisation,
)

__all__ = [
    "Feasibility",
    "ResultCell",
    "RESULTS_MAP",
    "results_map",
    "feasibility",
    "assumptions",
    "models_in_map",
    "format_table",
    "format_results_map",
    "summarize_counts",
    "SummaryStats",
    "ReachabilityResult",
    "InvariantReport",
    "StabilisationReport",
    "explore",
    "check_invariant",
    "check_stabilisation",
]
