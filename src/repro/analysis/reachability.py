"""Exhaustive reachability analysis for small populations.

Stabilisation results about population protocols are statements over *all*
globally fair executions, so sampling random schedules — however many — can
only ever falsify them.  For small populations the reachable configuration
space is small enough to enumerate exhaustively, which turns three useful
checks into decision procedures:

* :func:`explore` — breadth-first enumeration of every configuration
  reachable from an initial one under a model (optionally with a budget of
  omissive interactions, matching the "at most ``o`` omissions" assumption);
* :func:`check_invariant` — does a safety invariant hold in *every* reachable
  configuration, under *every* schedule and omission placement?
* :func:`check_stabilisation` — global-fairness stabilisation: is a target
  set of configurations reachable from every reachable configuration, and
  closed once entered?  Under global fairness this implies the execution
  eventually stays in the target set, which is exactly how "the protocol
  stably computes X" is established.

These checks complement the statistical experiments: benchmarks use random
schedules at realistic sizes, tests use exhaustive exploration at small sizes
where it constitutes a proof.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.interaction.models import InteractionModel
from repro.interaction.omissions import NO_OMISSION, Omission
from repro.protocols.state import Configuration


class ReachabilityLimitError(Exception):
    """Raised when the exploration exceeds its configuration budget."""


@dataclass
class ReachabilityResult:
    """Outcome of an exhaustive exploration."""

    initial: Configuration
    configurations: Set[Configuration]
    transitions: int
    omission_budget: int
    truncated: bool

    @property
    def configuration_count(self) -> int:
        return len(self.configurations)


def _successors(
    program: Any,
    model: InteractionModel,
    configuration: Configuration,
    allow_omission: bool,
) -> Iterator[Tuple[Configuration, bool]]:
    """All configurations reachable in one interaction, tagged with omission use."""
    n = len(configuration)
    omissions = model.admissible_omissions() if allow_omission else [NO_OMISSION]
    for starter in range(n):
        for reactor in range(n):
            if starter == reactor:
                continue
            starter_pre = configuration[starter]
            reactor_pre = configuration[reactor]
            for omission in omissions:
                starter_post, reactor_post = model.apply(
                    program, starter_pre, reactor_pre, omission)
                successor = configuration.apply_interaction(
                    starter, reactor, starter_post, reactor_post)
                yield successor, omission.is_omissive


def explore(
    program: Any,
    model: InteractionModel,
    initial_configuration: Configuration,
    omission_budget: int = 0,
    max_configurations: int = 200_000,
    on_error: str = "raise",
) -> ReachabilityResult:
    """Enumerate every configuration reachable under the model.

    ``omission_budget`` bounds the total number of omissive interactions along
    any path (0 disables them entirely); the search state is therefore a
    (configuration, omissions-used) pair, and a configuration counts as
    reachable if it is reachable with *any* admissible number of omissions.

    ``on_error`` is ``"raise"`` (default) or ``"truncate"``; the latter stops
    the search at ``max_configurations`` and marks the result as truncated.
    """
    if omission_budget > 0 and not model.allows_omissions:
        raise ValueError(f"model {model.name} does not admit omissive interactions")

    # Track, per configuration, the minimum number of omissions used to reach
    # it: revisiting with fewer omissions may unlock further omissive branches.
    best_omissions: Dict[Configuration, int] = {initial_configuration: 0}
    queue = deque([(initial_configuration, 0)])
    transitions = 0
    truncated = False

    while queue:
        configuration, used = queue.popleft()
        allow_omission = used < omission_budget
        for successor, was_omissive in _successors(program, model, configuration, allow_omission):
            transitions += 1
            new_used = used + (1 if was_omissive else 0)
            previous = best_omissions.get(successor)
            if previous is not None and previous <= new_used:
                continue
            if previous is None and len(best_omissions) >= max_configurations:
                if on_error == "raise":
                    raise ReachabilityLimitError(
                        f"more than {max_configurations} reachable configurations")
                truncated = True
                continue
            best_omissions[successor] = new_used
            queue.append((successor, new_used))

    return ReachabilityResult(
        initial=initial_configuration,
        configurations=set(best_omissions),
        transitions=transitions,
        omission_budget=omission_budget,
        truncated=truncated,
    )


@dataclass
class InvariantReport:
    """Outcome of an exhaustive invariant check."""

    holds: bool
    configurations_checked: int
    counterexamples: List[Configuration] = field(default_factory=list)
    truncated: bool = False


def check_invariant(
    program: Any,
    model: InteractionModel,
    initial_configuration: Configuration,
    invariant: Callable[[Configuration], bool],
    omission_budget: int = 0,
    max_configurations: int = 200_000,
    projection: Optional[Callable] = None,
    max_counterexamples: int = 5,
) -> InvariantReport:
    """Check that ``invariant`` holds in every reachable configuration.

    ``projection`` (e.g. a simulator's ``project``) is applied to each
    configuration before evaluating the invariant, so the same predicate can
    be used for plain protocols and for simulated ones.
    """
    result = explore(
        program, model, initial_configuration,
        omission_budget=omission_budget,
        max_configurations=max_configurations,
        on_error="truncate",
    )
    counterexamples = []
    for configuration in result.configurations:
        view = configuration.project(projection) if projection else configuration
        if not invariant(view):
            counterexamples.append(configuration)
            if len(counterexamples) >= max_counterexamples:
                break
    return InvariantReport(
        holds=not counterexamples,
        configurations_checked=result.configuration_count,
        counterexamples=counterexamples,
        truncated=result.truncated,
    )


@dataclass
class StabilisationReport:
    """Outcome of an exhaustive stabilisation check under global fairness."""

    stabilises: bool
    configurations_checked: int
    unreachable_from: List[Configuration] = field(default_factory=list)
    escapes_from: List[Configuration] = field(default_factory=list)
    truncated: bool = False

    @property
    def target_always_reachable(self) -> bool:
        return not self.unreachable_from

    @property
    def target_closed(self) -> bool:
        return not self.escapes_from


def check_stabilisation(
    program: Any,
    model: InteractionModel,
    initial_configuration: Configuration,
    target: Callable[[Configuration], bool],
    max_configurations: int = 200_000,
    projection: Optional[Callable] = None,
    max_counterexamples: int = 5,
) -> StabilisationReport:
    """Check stabilisation to ``target`` under global fairness (no omissions).

    The check establishes the two facts that, combined with global fairness,
    imply every fair execution eventually remains in the target set:

    1. from every reachable configuration, some target configuration is
       reachable (the target set is "always reachable");
    2. every successor of a target configuration is again a target
       configuration (the target set is closed).
    """
    result = explore(
        program, model, initial_configuration,
        omission_budget=0,
        max_configurations=max_configurations,
        on_error="truncate",
    )

    def satisfies(configuration: Configuration) -> bool:
        view = configuration.project(projection) if projection else configuration
        return bool(target(view))

    reachable = result.configurations
    # Backward closure: the set of configurations from which a target
    # configuration is reachable, computed by reverse BFS over the successor
    # relation restricted to the reachable set.
    successors_of: Dict[Configuration, Set[Configuration]] = {c: set() for c in reachable}
    predecessors_of: Dict[Configuration, Set[Configuration]] = {c: set() for c in reachable}
    for configuration in reachable:
        for successor, _ in _successors(program, model, configuration, allow_omission=False):
            if successor in successors_of:
                successors_of[configuration].add(successor)
                predecessors_of[successor].add(configuration)

    target_configs = {c for c in reachable if satisfies(c)}
    can_reach_target: Set[Configuration] = set(target_configs)
    frontier = deque(target_configs)
    while frontier:
        configuration = frontier.popleft()
        for predecessor in predecessors_of[configuration]:
            if predecessor not in can_reach_target:
                can_reach_target.add(predecessor)
                frontier.append(predecessor)

    unreachable_from = [c for c in reachable if c not in can_reach_target]
    escapes_from = [
        c for c in target_configs
        if any(successor not in target_configs for successor in successors_of[c])
    ]

    return StabilisationReport(
        stabilises=not unreachable_from and not escapes_from and bool(target_configs),
        configurations_checked=len(reachable),
        unreachable_from=unreachable_from[:max_counterexamples],
        escapes_from=escapes_from[:max_counterexamples],
        truncated=result.truncated,
    )
