"""Plain-text table rendering for benchmark and example output.

The paper is a theory paper and reports no numeric tables, so the benchmark
harness regenerates its *figures and theorems* as plain-text tables: the
hierarchy of Figure 1, the map of Figure 4, FTT / overhead / memory sweeps.
This module keeps that formatting in one place.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Sequence, Tuple

from repro.analysis.results_map import (
    ASSUMPTIONS,
    ResultCell,
    results_map,
)
from repro.interaction.models import ALL_MODELS


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a list of rows as an aligned plain-text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "|-" + "-|-".join("-" * width for width in widths) + "-|"
    lines = [render_row(headers), separator]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def format_grid(
    corner: str,
    row_keys: Sequence[object],
    col_keys: Sequence[object],
    cell: Callable[[object, object], object],
) -> str:
    """Render a 2-D grid of values as a table.

    ``corner`` labels the row-key column, ``cell(row_key, col_key)`` produces
    each body cell.  This is the shared renderer behind the Figure 4 map and
    the campaign verdict grids (:mod:`repro.campaign.report`).
    """
    headers = [corner] + [str(key) for key in col_keys]
    rows = [[str(row)] + [cell(row, col) for col in col_keys] for row in row_keys]
    return format_table(headers, rows)


def format_results_map(overrides: Dict[Tuple[str, str], str] = None) -> str:
    """Render the Figure 4 map as a table.

    ``overrides`` optionally replaces the label of specific cells — the
    Figure 4 benchmark uses it to mark cells whose empirical check passed or
    failed.
    """
    overrides = overrides or {}
    cells = results_map()

    def cell_label(model_name: str, assumption: str) -> str:
        cell: ResultCell = cells[(model_name, assumption)]
        return overrides.get((model_name, assumption), cell.label())

    return format_grid(
        "model", [model.name for model in ALL_MODELS], ASSUMPTIONS, cell_label)
