"""``repro lint``: the determinism-contracts static-analysis pass.

Every claim this reproduction makes — Figure-4 verdict grids, backend
equivalence, byte-identical campaign resume — rests on determinism
invariants that used to live only in prose and example-based tests.
This package turns them into enforced, machine-checkable rules:

======  =====================================================================
code    contract
======  =====================================================================
RPL001  no unseeded RNG construction or module-level ``random.*`` /
        ``np.random.*`` calls in ``src/`` — seeds must flow from spec
        seed blocks
RPL002  no wall-clock reads (``time.time``, ``datetime.now``,
        ``perf_counter``, ...) inside the pure fold/hash layers
        (campaign planner/report/store record paths, ``analysis/``)
RPL003  no broad or bare ``except`` anywhere in ``src/`` (the PR 1 bug
        class: a bare ``except Exception`` around the scheduler draw
        silently swallowed drift)
RPL004  no file writes in ``repro.campaign`` that bypass the flushed +
        fsync'd atomic-append helpers in ``campaign/store.py``
RPL005  registry contracts hold at import time: every registered protocol
        defines ``state_order()``; every registered predicate is
        count-expressible via ``as_state_count()`` or listed in the
        explicit non-compilable allowlist (the machine-readable
        compile-gap inventory)
RPL006  no unordered ``set``/dict-view iteration feeding hashing, cell
        planning, or report folds without a ``sorted()`` boundary
======  =====================================================================

Suppression requires a justification::

    except Exception as error:  # repro-lint: disable=RPL003 reason=isolate broken dists

A pragma without a non-empty ``reason=`` does not suppress anything and is
itself reported (RPL000).  The repo self-hosts: ``repro lint`` over
``src/`` exits 0, and CI enforces that in both the no-numpy and numpy
matrices.  See ``docs/invariants.md`` for the catalogue with rationale.
"""

from repro.lint.framework import (
    Finding,
    LintContext,
    LintResult,
    ProjectRule,
    Rule,
    all_rules,
    lint_files,
    lint_source,
)
from repro.lint.pragmas import Pragma, parse_pragmas

__all__ = [
    "Finding",
    "LintContext",
    "LintResult",
    "ProjectRule",
    "Rule",
    "all_rules",
    "lint_files",
    "lint_source",
    "Pragma",
    "parse_pragmas",
]
