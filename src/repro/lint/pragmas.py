"""Inline suppression pragmas: ``# repro-lint: disable=RPLxxx reason=...``.

A pragma suppresses findings of the listed rule codes on its own physical
line, or — when the comment stands alone on a line — on the next
non-blank, non-comment line (so long statements can carry the pragma
directly above them).

The ``reason=`` clause is **mandatory and must be non-empty**: a
suppression without a recorded justification is worse than the finding it
hides, because the next reader cannot tell a vetted exception from a
silenced bug.  Malformed pragmas (missing or empty reason, no parseable
rule code) suppress nothing and are themselves reported under the
reserved code ``RPL000``, which no pragma can silence.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: The reserved code for malformed pragmas; not suppressible.
MALFORMED_PRAGMA_CODE = "RPL000"

_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*(?P<body>.*)$")
_DISABLE_RE = re.compile(
    r"^disable=(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
    r"(?:\s+reason=(?P<reason>.*))?$")


@dataclass(frozen=True)
class Pragma:
    """One parsed suppression comment."""

    line: int
    codes: Tuple[str, ...]
    reason: str
    #: Line the pragma applies to (== ``line`` for trailing comments; the
    #: next statement line for standalone comment lines).
    applies_to: int

    @property
    def valid(self) -> bool:
        return bool(self.codes) and bool(self.reason.strip())


@dataclass
class PragmaIndex:
    """Pragmas of one file, indexed by the line they suppress."""

    by_line: Dict[int, List[Pragma]] = field(default_factory=dict)
    malformed: List[Tuple[int, str]] = field(default_factory=list)

    def suppresses(self, line: int, code: str) -> bool:
        """Whether a *valid* pragma on/above ``line`` disables ``code``."""
        if code == MALFORMED_PRAGMA_CODE:
            return False
        return any(pragma.valid and code in pragma.codes
                   for pragma in self.by_line.get(line, ()))


def _next_code_line(lines: List[str], index: int) -> int:
    """1-based line of the next non-blank, non-comment line after ``index``."""
    for offset in range(index + 1, len(lines)):
        stripped = lines[offset].strip()
        if stripped and not stripped.startswith("#"):
            return offset + 1
    return index + 1  # trailing pragma at EOF: applies to itself


def _comment_tokens(source: str) -> List[Tuple[int, int, str]]:
    """``(line, column, text)`` of every comment token in the source.

    Tokenising (rather than regex-scanning raw lines) keeps pragma-shaped
    text inside string literals and docstrings from being treated as a
    live suppression — only an actual ``#`` comment counts.
    """
    comments: List[Tuple[int, int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Untokenisable sources get no pragmas; the driver reports the
        # syntax error separately, so nothing is silently certified.
        pass
    return comments


def parse_pragmas(source: str) -> PragmaIndex:
    """Scan a file's comments for ``repro-lint`` pragmas."""
    index = PragmaIndex()
    lines = source.splitlines()
    for line, column, text in _comment_tokens(source):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        body = match.group("body").strip()
        disable = _DISABLE_RE.match(body)
        if disable is None:
            index.malformed.append(
                (line, f"unparseable repro-lint pragma {body!r}; expected "
                       "'disable=RPLxxx[,RPLyyy] reason=<justification>'"))
            continue
        codes = tuple(code.strip()
                      for code in disable.group("codes").split(","))
        reason = (disable.group("reason") or "").strip()
        standalone = not lines[line - 1][:column].strip()
        applies_to = _next_code_line(lines, line - 1) if standalone else line
        pragma = Pragma(line=line, codes=codes, reason=reason,
                        applies_to=applies_to)
        if not pragma.valid:
            index.malformed.append(
                (line, "repro-lint pragma is missing a non-empty reason=; "
                       "suppressions must record their justification"))
            continue
        index.by_line.setdefault(applies_to, []).append(pragma)
    return index
