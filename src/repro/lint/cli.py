"""The ``repro lint`` command-line front end.

Exit codes follow the conventional linter contract:

* ``0`` — every checked file is clean,
* ``1`` — at least one finding,
* ``2`` — usage error (unknown rule code, unreadable path).

With no paths, the pass lints the installed ``repro`` package sources —
the self-hosting default that CI runs.  The import-time contract checks
(RPL005) fire exactly when the linted set contains
``repro/protocols/registry.py``, so pointing the linter at a fixture
directory never imports the registries.
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional, Sequence

import repro
from repro.lint.framework import LintResult, all_rules, lint_files
from repro.lint.reporters import render_json, render_text

KNOWN_CODES = tuple(rule.code for rule in all_rules())


def default_paths() -> List[str]:
    """The installed ``repro`` package directory (the self-hosting target)."""
    return [os.path.dirname(os.path.abspath(repro.__file__))]


def _parse_codes(raw: Optional[str], option: str) -> Optional[List[str]]:
    if raw is None:
        return None
    codes = [code.strip().upper() for code in raw.split(",") if code.strip()]
    unknown = sorted(set(codes) - set(KNOWN_CODES))
    if unknown:
        raise ValueError(f"{option}: unknown rule code(s) "
                         f"{', '.join(unknown)}; known: {', '.join(KNOWN_CODES)}")
    return codes


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: the repro package sources)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (json is versioned and stable)")
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run exclusively "
                             "(e.g. RPL001,RPL003)")
    parser.add_argument("--ignore", default=None, metavar="CODES",
                        help="comma-separated rule codes to skip")


def run_lint(paths: Sequence[str], *, select: Optional[str] = None,
             ignore: Optional[str] = None) -> LintResult:
    """Programmatic entry point mirroring the CLI semantics."""
    return lint_files(list(paths) or default_paths(),
                      select=_parse_codes(select, "--select"),
                      ignore=_parse_codes(ignore, "--ignore"))


def command_lint(args: argparse.Namespace) -> int:
    try:
        result = run_lint(args.paths, select=args.select, ignore=args.ignore)
    except (OSError, ValueError) as error:
        print(f"repro lint: {error}")
        return 2
    rendered = render_json(result) if args.format == "json" else render_text(result)
    print(rendered, end="")
    return 0 if result.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism-contracts static analysis for the repro tree")
    add_lint_arguments(parser)
    return command_lint(parser.parse_args(argv))
