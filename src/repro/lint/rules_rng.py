"""RPL001 — every random draw must be seeded from a spec seed block.

The reproducibility contract of the whole repo is that *a spec plus a
seed fully determines a run* (``run_spec`` is a pure function, campaign
cells are content-addressed over their seed blocks, process-pool workers
replay byte-identically).  Two constructs break that silently:

* **unseeded RNG construction** — ``random.Random()`` /
  ``numpy.random.default_rng()`` / ``numpy.random.SeedSequence()`` with
  no argument (or a literal ``None``) draw fresh OS entropy;
* **module-level RNG calls** — ``random.random()``, ``random.shuffle``,
  ``numpy.random.rand`` and friends share hidden global state, so any
  import-order or thread-interleaving change reorders draws.

Constructing *seeded* generators (``random.Random(seed)``,
``numpy.random.SeedSequence(seed)``, ``default_rng(seed)``) and calling
methods on generator *instances* is the sanctioned pattern and is not
flagged.  APIs that deliberately accept ``seed=None`` for OS entropy
(documented in :mod:`repro.scheduling.array_draws`) stay expressible:
the rule is static and only flags literally-unseeded call sites.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import Finding, LintContext, Rule

#: ``random``-module attributes that construct independent generators or
#: inspect state rather than draw from the hidden global instance.
_RANDOM_NON_DRAWING = frozenset({
    "Random", "SystemRandom", "getstate", "setstate",
})

#: ``numpy.random`` attributes that construct explicit generators /
#: bit-generators / seed material (the modern, seedable API surface).
_NP_RANDOM_NON_DRAWING = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})

#: Constructors whose *zero-argument / literal-None* form draws OS entropy.
_SEEDED_CONSTRUCTORS = frozenset({
    "random.Random",
    "random.SystemRandom",
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
})


def _first_argument_is_unseeded(call: ast.Call) -> bool:
    if call.keywords:
        for keyword in call.keywords:
            if keyword.arg in (None, "seed"):
                return _is_none_literal(keyword.value)
        return True  # keywords given, none of them a seed
    if not call.args:
        return True
    return _is_none_literal(call.args[0])


def _is_none_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


class UnseededRandomRule(Rule):
    code = "RPL001"
    name = "unseeded-rng"
    summary = ("RNG must be constructed from an explicit seed; module-level "
               "random draws are forbidden")
    scope = None  # the seed contract covers all of src/

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = context.imports.resolve(node.func)
            if qualified is None:
                continue
            if qualified in _SEEDED_CONSTRUCTORS:
                if _first_argument_is_unseeded(node):
                    yield context.finding(
                        self.code, node,
                        f"{qualified}() without an explicit seed draws OS "
                        "entropy; thread the seed from the spec seed block")
                continue
            parts = qualified.split(".")
            if parts[0] == "random" and len(parts) == 2 \
                    and parts[1] not in _RANDOM_NON_DRAWING:
                yield context.finding(
                    self.code, node,
                    f"module-level {qualified}() draws from the hidden global "
                    "RNG; construct random.Random(seed) from the spec seed "
                    "block instead")
            elif parts[:2] == ["numpy", "random"] and len(parts) == 3 \
                    and parts[2] not in _NP_RANDOM_NON_DRAWING:
                yield context.finding(
                    self.code, node,
                    f"legacy global-state {qualified}() is unseedable per-run; "
                    "use numpy.random.Generator streams spawned from the spec "
                    "SeedSequence")
