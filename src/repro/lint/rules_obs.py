"""RPL007 — observability is write-only: nothing flows back into hashes.

The observability layer (:mod:`repro.obs`) is a sidecar by contract:
recorders *receive* measurements from the engine, fan-out and campaign
layers, and nothing a recorder holds may ever influence a cell id, a
store record, or a report byte (``docs/observability.md``,
``docs/invariants.md``).  One recorder value reaching ``canonical_json``
or a store append would make campaign artifacts depend on whether
telemetry was switched on — exactly the "metrics on/off byte-identity"
pin this PR adds to CI.

Two checks enforce the direction:

* **Import ban** — the pure fold/hash layers (the campaign planner,
  report and store record paths, and everything under
  ``repro.analysis``; the same prefixes RPL002 scopes) must not import
  ``repro.obs`` at all.  If a module cannot name the layer, it cannot
  fold it.
* **Flow ban** (every linted file) — no value originating in
  ``repro.obs`` (an imported recorder/constructor, or a local bound to
  one, e.g. ``obs = get_recorder()``) may be passed to a determinism
  sink: ``canonical_json``, ``json.dumps``, ``hashlib.*`` or a store's
  ``.append_cell``.  Telemetry reads run state; run state never reads
  telemetry.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.framework import Finding, LintContext, Rule
from repro.lint.rules_purity import PURE_LAYERS

#: The banned package prefix (module equality or dotted descendant).
OBS_PACKAGE = "repro.obs"

#: Bare-name determinism sinks (hashed or persisted bytes).
_SINK_NAMES = frozenset({"canonical_json"})

#: Qualified determinism sinks (exact names and ``.``-terminated prefixes).
_SINK_QUALIFIED = ("json.dumps", "hashlib.")

#: Method-call determinism sinks (store appends).
_SINK_METHODS = frozenset({"append_cell"})


def _is_obs_module(module: Optional[str]) -> bool:
    return module is not None and (
        module == OBS_PACKAGE or module.startswith(OBS_PACKAGE + "."))


def _resolves_to_obs(context: LintContext, node: ast.AST) -> bool:
    """Does this expression name (or call) something from ``repro.obs``?"""
    if isinstance(node, ast.Call):
        return _resolves_to_obs(context, node.func)
    qualified = context.imports.resolve(node)
    return _is_obs_module(qualified) or (
        qualified is not None and qualified.startswith(OBS_PACKAGE + "."))


def _sink_call(context: LintContext, call: ast.Call) -> Optional[str]:
    """The determinism sink a call represents, if it is one."""
    if isinstance(call.func, ast.Name) and call.func.id in _SINK_NAMES:
        return call.func.id
    if isinstance(call.func, ast.Attribute) and call.func.attr in _SINK_METHODS:
        return call.func.attr
    qualified = context.imports.resolve(call.func)
    if qualified is not None:
        if qualified in _SINK_QUALIFIED:
            return qualified
        if any(qualified.startswith(prefix) for prefix in _SINK_QUALIFIED
               if prefix.endswith(".")):
            return qualified
    return None


def _tainted_names(context: LintContext) -> Set[str]:
    """Local names bound to values originating in ``repro.obs``."""
    tainted: Set[str] = set()
    for node in ast.walk(context.tree):
        targets = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None or not _resolves_to_obs(context, value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                tainted.add(target.id)
    return tainted


class ObsOneWayRule(Rule):
    code = "RPL007"
    name = "obs-one-way"
    summary = ("observability is write-only: the pure fold/hash layers "
               "must not import repro.obs, and no recorder value may reach "
               "canonical_json, hashlib, json.dumps or a store append")
    scope = None  # the flow ban applies everywhere; the import ban gates itself

    def check(self, context: LintContext) -> Iterator[Finding]:
        if any(context.module == prefix.rstrip(".")
               or context.module.startswith(prefix)
               for prefix in PURE_LAYERS):
            yield from self._check_imports(context)
        yield from self._check_flows(context)

    def _check_imports(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _is_obs_module(alias.name):
                        yield context.finding(
                            self.code, node,
                            f"pure fold/hash layer imports {alias.name}; "
                            "telemetry is write-only — planner/report/store "
                            "and analysis must stay byte-identical with "
                            "observability on or off")
            elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and _is_obs_module(node.module):
                yield context.finding(
                    self.code, node,
                    f"pure fold/hash layer imports from {node.module}; "
                    "telemetry is write-only — planner/report/store and "
                    "analysis must stay byte-identical with observability "
                    "on or off")

    def _check_flows(self, context: LintContext) -> Iterator[Finding]:
        tainted = _tainted_names(context)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            sink = _sink_call(context, node)
            if sink is None:
                continue
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for argument in arguments:
                flows = _resolves_to_obs(context, argument) or (
                    isinstance(argument, ast.Name) and argument.id in tainted)
                if flows:
                    yield context.finding(
                        self.code, argument,
                        f"a repro.obs value flows into {sink}(); recorders "
                        "must never reach hashed, persisted or rendered "
                        "bytes — record telemetry about the value instead")
