"""Finding reporters: human text and machine-readable JSON.

The JSON document is a stable interface (CI annotations, editor
integrations) and is versioned::

    {
      "version": 1,
      "files_checked": 42,
      "findings": [
        {"rule": "RPL001", "path": "src/repro/x.py", "line": 3,
         "column": 5, "message": "..."}
      ],
      "summary": {"RPL001": 1}
    }

Findings are emitted in ``(path, line, column, code)`` order in both
formats, so two runs over the same tree produce byte-identical output —
the lint pass holds itself to the determinism bar it enforces.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.lint.framework import LintResult

JSON_REPORT_VERSION = 1


def render_text(result: LintResult) -> str:
    """One ``path:line:col: CODE message`` line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    if result.findings:
        counts = ", ".join(f"{code}: {count}"
                           for code, count in result.counts.items())
        lines.append("")
        lines.append(f"{len(result.findings)} finding"
                     f"{'s' if len(result.findings) != 1 else ''} "
                     f"({counts}) in {result.files_checked} files")
    else:
        lines.append(f"repro lint: {result.files_checked} files clean")
    return "\n".join(lines) + "\n"


def as_json_document(result: LintResult) -> Dict[str, Any]:
    return {
        "version": JSON_REPORT_VERSION,
        "files_checked": result.files_checked,
        "findings": [
            {
                "rule": finding.code,
                "path": finding.path,
                "line": finding.line,
                "column": finding.column,
                "message": finding.message,
            }
            for finding in result.findings
        ],
        "summary": result.counts,
    }


def render_json(result: LintResult) -> str:
    return json.dumps(as_json_document(result), indent=2, sort_keys=True) + "\n"
