"""RPL003/RPL004 — error-handling and store-write discipline.

**RPL003, broad/bare except.**  PR 1's worst pre-seed bug was a bare
``except Exception`` around the scheduler draw in the convergence loop:
it converted scheduler exhaustion *and every programming error* into
"run did not converge", which is exactly the wrong failure mode for a
reproduction whose output is a verdict grid.  The rule bans bare
``except:`` and handlers catching ``Exception``/``BaseException``
anywhere in ``src/`` — narrow the handler to the failures the call site
actually produces, or pragma the site with a recorded reason (the
entry-point isolation loop in :mod:`repro.protocols.registry` is the
canonical sanctioned case: it must survive arbitrarily broken
third-party distributions).

**RPL004, store-write bypass.**  Campaign resume is byte-identical only
because every record reaches disk through the flushed + fsync'd
atomic-append helpers in :mod:`repro.campaign.store`
(``_append_line`` behind ``append_cell``/``register_campaign``,
``_write_manifest``, and the :func:`~repro.campaign.store.compact_store`
writer, whose non-append rewrite is sanctioned because it goes
write-temp-then-``os.replace``): one complete line per write, torn tails
recoverable, compactions all-or-nothing.  Any other write path inside
``repro.campaign`` — an ``open(..., "w"/"a")``, ``os.open`` with write
flags, ``Path.write_text`` — could interleave partial lines or skip the
fsync and silently void crash recovery, so constructing a writable file
handle outside the sanctioned writer modules is a finding.  The parallel
executor and the campaign queue deliberately hold no write path of their
own: workers return records, and the store appends them.  The
shared-memory result transport (:mod:`repro.engine.transport`) is scoped
in for the same reason: it moves results *between* processes, and the
single-writer contract only holds if no transport lane ever grows a
file-write path of its own.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.framework import Finding, LintContext, Rule

_BROAD_EXCEPTIONS = ("Exception", "BaseException")


def _broad_name(annotation: Optional[ast.AST]) -> Optional[str]:
    """The broad exception this handler type names, if any."""
    if annotation is None:
        return "bare"
    if isinstance(annotation, ast.Tuple):
        for element in annotation.elts:
            name = _broad_name(element)
            if name not in (None, "bare"):
                return name
        return None
    if isinstance(annotation, ast.Name) and annotation.id in _BROAD_EXCEPTIONS:
        return annotation.id
    if isinstance(annotation, ast.Attribute) \
            and annotation.attr in _BROAD_EXCEPTIONS:
        return annotation.attr
    return None


class BroadExceptRule(Rule):
    code = "RPL003"
    name = "broad-except"
    summary = ("no bare except or except Exception/BaseException; narrow "
               "the handler or pragma with a reason")
    scope = None  # the PR 1 bug class can hide in any layer

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_name(node.type)
            if broad == "bare":
                yield context.finding(
                    self.code, node,
                    "bare except swallows every error including "
                    "KeyboardInterrupt; catch the specific failures this "
                    "call site produces")
            elif broad is not None:
                yield context.finding(
                    self.code, node,
                    f"except {broad} converts programming errors into "
                    "ordinary control flow (the PR 1 convergence-loop bug "
                    "class); narrow the handler or add a "
                    "repro-lint pragma with the reason")


#: ``open()`` mode characters that make a handle writable.
_WRITE_MODE_CHARS = frozenset("wax+")

#: ``os.open`` flag names that make a descriptor writable.
_OS_WRITE_FLAGS = frozenset({
    "O_WRONLY", "O_RDWR", "O_APPEND", "O_CREAT", "O_TRUNC",
})

_PATH_WRITERS = frozenset({"write_text", "write_bytes", "touch", "unlink"})


def _open_mode(call: ast.Call) -> str:
    for keyword in call.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
            return str(keyword.value.value)
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        return str(call.args[1].value)
    return "r"


def _names_os_write_flag(node: ast.AST) -> bool:
    return any(isinstance(child, ast.Attribute)
               and child.attr in _OS_WRITE_FLAGS
               for child in ast.walk(node))


class StoreBypassRule(Rule):
    code = "RPL004"
    name = "store-write-bypass"
    summary = ("campaign-layer and result-transport file writes must go "
               "through the atomic append helpers in campaign/store.py")
    #: The campaign layer plus the shared-memory result transport: the
    #: transport moves results between processes and must never grow a
    #: store write path of its own — records reach disk only through the
    #: single-writer appenders, whatever lane carried them (pinned by
    #: ``tests/test_lint.py``).
    scope = ("repro.campaign.", "repro.engine.transport")

    #: Modules owning a sanctioned write path: the atomic-append helpers
    #: (``_append_line``/``_write_manifest``) and the compaction writer
    #: (``compact_store``'s write-temp-then-rename rewrite) both live in
    #: ``store.py`` — every other module in scope must route records
    #: through them.
    sanctioned_modules = ("repro.campaign.store",)

    def check(self, context: LintContext) -> Iterator[Finding]:
        if context.module in self.sanctioned_modules:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                mode = _open_mode(node)
                if any(char in _WRITE_MODE_CHARS for char in mode):
                    yield context.finding(
                        self.code, node,
                        f"open(..., {mode!r}) creates a writable handle in "
                        "the campaign layer; route the record through "
                        "ResultStore.append_cell so the write is one "
                        "flushed+fsync'd line with torn-tail recovery")
                continue
            qualified = context.imports.resolve(node.func)
            if qualified == "os.open" and any(
                    _names_os_write_flag(arg) for arg in node.args[1:]):
                yield context.finding(
                    self.code, node,
                    "os.open with write flags bypasses the store's atomic "
                    "append helper; use ResultStore.append_cell")
                continue
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _PATH_WRITERS:
                yield context.finding(
                    self.code, node,
                    f".{node.func.attr}() writes outside the store's atomic "
                    "append helper; use ResultStore.append_cell / "
                    "_write_manifest")
