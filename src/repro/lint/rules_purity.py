"""RPL002 — the fold/hash layers must not read the wall clock.

Campaign cell ids are content-addressed hashes, store records are replayed
byte-identically on resume, and reports are **pure functions of (plan,
records)** — that is the documented acceptance pin of the campaign
subsystem ("no timestamps, hostnames or execution order leak in").  One
``time.time()`` in a record path or report fold would make interrupted
and uninterrupted campaigns render different bytes and silently void the
resume contract.

The rule therefore bans every wall-clock/monotonic-clock read inside the
pure layers: the campaign planner, report, and store record paths, and
everything under ``repro.analysis``.  Benchmarks and the engine are out
of scope — timing *measurement* code is supposed to read clocks.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import Finding, LintContext, Rule

#: Qualified call targets that read a clock.  ``datetime.datetime.now``
#: covers ``from datetime import datetime; datetime.now()`` through the
#: alias map's prefix substitution.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: The pure fold/hash layers (dotted-module prefixes).
PURE_LAYERS = (
    "repro.campaign.planner",
    "repro.campaign.report",
    "repro.campaign.store",
    "repro.analysis.",
)


class WallClockRule(Rule):
    code = "RPL002"
    name = "wall-clock-in-pure-layer"
    summary = ("no wall-clock reads inside the pure fold/hash layers "
               "(campaign planner/report/store, analysis)")
    scope = PURE_LAYERS

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = context.imports.resolve(node.func)
            if qualified in WALL_CLOCK_CALLS:
                yield context.finding(
                    self.code, node,
                    f"{qualified}() read inside a pure fold/hash layer; "
                    "cell ids, store records and reports must be functions "
                    "of (plan, records) only — stamp times outside, or "
                    "thread them in as explicit data")
