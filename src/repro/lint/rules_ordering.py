"""RPL006 — unordered iteration must cross a ``sorted()`` boundary.

The campaign layer's central identity is *fold-order independence*:
cell ids hash canonical JSON (sorted keys), the grid fingerprint hashes
the **sorted** cell-id set, and reports are byte-identical whether the
store was written in one pass or across interrupted resumes (whose dict
of records is built in *append order*).  Iterating a ``set`` — or a dict
view whose insertion order tracks execution order — straight into a text
join, a tuple/list materialisation, or a hash breaks that identity in
the least reproducible way possible: only on the reordered run.

The rule flags, inside the hashing/planning/report-fold layers:

* a ``set``-typed expression (literal, ``set()``/``frozenset()`` call,
  set comprehension, or the store's ``completed_ids()``) used as the
  iterable of a ``for`` statement, list comprehension, or generator;
* a dict-view call (``.keys()``/``.values()``/``.items()``) feeding an
  order-sensitive sink (``str.join``, ``tuple``, ``list``,
  ``json.dumps``, ``canonical_json``, ``hashlib.*``) either directly or
  through a comprehension;

unless the iteration is wrapped by a ``sorted()`` boundary.  Iterations
that terminate in order-insensitive consumers (dict/set builds,
membership, ``len``, ``min``/``max``/``sum``) are not flagged — the
contract is about *order reaching bytes*, not about sets existing.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.framework import Finding, LintContext, Rule

#: Layers whose folds feed hashes, cell ids, or report bytes.
ORDERED_FOLD_LAYERS = (
    "repro.campaign.",
    "repro.analysis.reporting",
    "repro.analysis.results_map",
    "repro.analysis.statistics",
)

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_RETURNING_METHODS = frozenset({"completed_ids"})
_DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})
_SINK_NAMES = frozenset({"tuple", "list", "canonical_json"})
_SINK_QUALIFIED = ("json.dumps", "hashlib.")
_SINK_METHODS = frozenset({"join", "update"})


def _is_set_typed(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in _SET_CONSTRUCTORS:
            return True
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _SET_RETURNING_METHODS:
            return True
    return False


def _is_dict_view(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _DICT_VIEW_METHODS
            and not node.args and not node.keywords)


def _sink_call(context: LintContext, call: ast.Call) -> Optional[str]:
    """The sink a call represents, or None if it is order-insensitive."""
    if isinstance(call.func, ast.Name) and call.func.id in _SINK_NAMES:
        return call.func.id
    if isinstance(call.func, ast.Attribute) and call.func.attr in _SINK_METHODS:
        return call.func.attr
    qualified = context.imports.resolve(call.func)
    if qualified is not None:
        if qualified in _SINK_QUALIFIED:
            return qualified
        if any(qualified.startswith(prefix) for prefix in _SINK_QUALIFIED
               if prefix.endswith(".")):
            return qualified
    return None


def _has_sorted_boundary(context: LintContext, node: ast.AST) -> bool:
    for ancestor in context.ancestors(node):
        if isinstance(ancestor, ast.Call) \
                and isinstance(ancestor.func, ast.Name) \
                and ancestor.func.id == "sorted":
            return True
        if isinstance(ancestor, ast.stmt):
            return False
    return False


def _consuming_sink(context: LintContext,
                    node: ast.AST) -> Optional[Tuple[ast.AST, str]]:
    """The order-sensitive sink call this expression feeds, if any."""
    current: ast.AST = node
    for ancestor in context.ancestors(node):
        if isinstance(ancestor, ast.Call):
            sink = _sink_call(context, ancestor)
            if sink is not None and current in ancestor.args:
                return ancestor, sink
            return None  # some other call mediates; out of static reach
        if isinstance(ancestor, (ast.GeneratorExp, ast.ListComp)):
            current = ancestor
            continue
        if isinstance(ancestor, (ast.stmt, ast.SetComp, ast.DictComp)):
            return None
        current = ancestor
    return None


class UnorderedIterationRule(Rule):
    code = "RPL006"
    name = "unordered-fold"
    summary = ("set/dict-view iteration feeding hashing, cell planning, or "
               "report folds needs a sorted() boundary")
    scope = ORDERED_FOLD_LAYERS

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            iterables = []
            if isinstance(node, ast.For):
                iterables.append((node.iter, "for loop"))
            elif isinstance(node, (ast.GeneratorExp, ast.ListComp)):
                iterables.extend(
                    (generator.iter, "comprehension")
                    for generator in node.generators)
            for iterable, via in iterables:
                if _is_set_typed(iterable):
                    if not _has_sorted_boundary(context, iterable):
                        yield context.finding(
                            self.code, iterable,
                            f"{via} iterates a set without a sorted() "
                            "boundary; set order is interpreter-dependent "
                            "and must never reach hashed or rendered bytes")
                elif _is_dict_view(iterable) and not isinstance(node, ast.For):
                    sink = _consuming_sink(context, node)
                    if sink is not None \
                            and not _has_sorted_boundary(context, iterable):
                        yield context.finding(
                            self.code, iterable,
                            f"dict-view iteration feeds {sink[1]}() without "
                            "a sorted() boundary; insertion order tracks "
                            "append/execution order here, which resume is "
                            "allowed to permute")
            if isinstance(node, ast.Call):
                sink = _sink_call(context, node)
                if sink is None:
                    continue
                for argument in node.args:
                    if (_is_set_typed(argument) or _is_dict_view(argument)) \
                            and not _has_sorted_boundary(context, node):
                        yield context.finding(
                            self.code, argument,
                            f"unordered iterable passed straight to {sink}(); "
                            "wrap it in sorted() so the fold order is "
                            "deterministic")
