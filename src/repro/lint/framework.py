"""The rule framework: findings, alias-aware imports, visitors, the driver.

Design notes
------------

* **Per-file rules** subclass :class:`Rule` and implement
  :meth:`Rule.check` over a :class:`LintContext` (parsed tree, source
  lines, parent links, resolved imports).  A rule may scope itself to
  module prefixes (``scope=("repro.campaign.",)``) — the determinism
  contracts are layer contracts, and the scope *is* part of the contract.
* **Cross-file rules** subclass :class:`ProjectRule`: they run once per
  lint invocation and may import the live registries to verify
  import-time contracts (see :mod:`repro.lint.rules_contracts`).  They
  only fire when the file set actually contains the module they audit, so
  linting a fixture directory never imports the repo's registries.
* **Alias-aware import tracking** (:class:`ImportMap`) resolves dotted
  call targets through ``import numpy as np`` / ``from time import
  perf_counter as pc`` style aliasing, so rules match the *qualified*
  name (``numpy.random.default_rng``) rather than surface spelling.
* Findings carry ``(code, path, line, column, message)``; pragmas
  (:mod:`repro.lint.pragmas`) filter them after every rule ran, and
  malformed pragmas surface as unsuppressible ``RPL000`` findings.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.lint.pragmas import MALFORMED_PRAGMA_CODE, PragmaIndex, parse_pragmas


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    path: str
    line: int
    column: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.code)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"


class ImportMap:
    """Alias-aware resolution of names to qualified module paths.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``; ``from datetime
    import datetime`` maps ``datetime -> datetime.datetime``.  Attribute
    chains then resolve by prefix substitution: with the first mapping,
    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self._aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")

    def resolve(self, node: ast.AST) -> Optional[str]:
        """The qualified dotted name of a Name/Attribute chain, if imported."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        qualified = self._aliases.get(node.id)
        if qualified is None:
            return None
        parts.append(qualified)
        return ".".join(reversed(parts))


@dataclass
class LintContext:
    """Everything a per-file rule sees about one file."""

    path: str
    module: str
    source: str
    tree: ast.Module
    imports: ImportMap
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, path: str = "<string>",
                    module: str = "") -> "LintContext":
        tree = ast.parse(source, filename=path)
        context = cls(path=path, module=module or module_name(path),
                      source=source, tree=tree, imports=ImportMap(tree))
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                context.parents[child] = parent
        return context

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's ancestors, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        return Finding(code=code, path=self.path,
                       line=getattr(node, "lineno", 1),
                       column=getattr(node, "col_offset", 0) + 1,
                       message=message)


def module_name(path: str) -> str:
    """The dotted module a file path denotes, anchored at the ``repro`` package.

    Files outside the package (test fixtures, scratch dirs) fall back to
    their stem, so layer-scoped rules simply do not apply to them unless
    the caller passes an explicit ``module=``.
    """
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
        parts[-1] = os.path.splitext(parts[-1])[0]
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)
    return os.path.splitext(os.path.basename(path))[0]


class Rule:
    """Base class of the per-file determinism-contract rules.

    Subclasses set ``code``/``name``/``summary`` and implement
    :meth:`check`.  ``scope`` restricts a rule to dotted-module prefixes;
    ``None`` means the rule applies to every linted file.
    """

    code: str = ""
    name: str = ""
    summary: str = ""
    scope: Optional[Tuple[str, ...]] = None

    def applies_to(self, module: str) -> bool:
        if self.scope is None:
            return True
        return any(module == prefix.rstrip(".") or module.startswith(prefix)
                   for prefix in self.scope)

    def check(self, context: LintContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A cross-file rule checked once per lint run (import-time contracts).

    ``audited_module`` names the module whose contract the rule verifies;
    the driver only invokes :meth:`check_project` when a file of that
    module is part of the linted set, so fixture runs never trigger
    registry imports.
    """

    audited_module: str = ""

    def check(self, context: LintContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, contexts: Sequence[LintContext]) -> Iterator[Finding]:
        raise NotImplementedError


def all_rules() -> List[Rule]:
    """Fresh instances of every shipped rule, in code order."""
    from repro.lint.rules_contracts import RegistryContractRule
    from repro.lint.rules_obs import ObsOneWayRule
    from repro.lint.rules_ordering import UnorderedIterationRule
    from repro.lint.rules_purity import WallClockRule
    from repro.lint.rules_rng import UnseededRandomRule
    from repro.lint.rules_robustness import BroadExceptRule, StoreBypassRule

    return [
        UnseededRandomRule(),
        WallClockRule(),
        BroadExceptRule(),
        StoreBypassRule(),
        RegistryContractRule(),
        UnorderedIterationRule(),
        ObsOneWayRule(),
    ]


@dataclass
class LintResult:
    """The outcome of one lint invocation."""

    findings: List[Finding]
    files_checked: int

    @property
    def counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for finding in self.findings:
            totals[finding.code] = totals.get(finding.code, 0) + 1
        return dict(sorted(totals.items()))

    @property
    def clean(self) -> bool:
        return not self.findings


def _selected(rules: Iterable[Rule], select: Optional[Sequence[str]],
              ignore: Optional[Sequence[str]]) -> List[Rule]:
    chosen = list(rules)
    if select:
        wanted = set(select)
        chosen = [rule for rule in chosen if rule.code in wanted]
    if ignore:
        dropped = set(ignore)
        chosen = [rule for rule in chosen if rule.code not in dropped]
    return chosen


def _apply_pragmas(findings: Iterable[Finding],
                   pragmas: PragmaIndex) -> Iterator[Finding]:
    for finding in findings:
        if not pragmas.suppresses(finding.line, finding.code):
            yield finding


def lint_source(source: str, *, path: str = "<string>", module: str = "",
                rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint one in-memory file (the fixture-test entry point).

    Runs per-file rules plus pragma filtering; project rules need
    :func:`lint_files` with the audited module on disk.
    """
    context = LintContext.from_source(source, path=path, module=module)
    active = [rule for rule in (rules if rules is not None else all_rules())
              if not isinstance(rule, ProjectRule)
              and rule.applies_to(context.module)]
    findings: List[Finding] = []
    for rule in active:
        findings.extend(rule.check(context))
    pragmas = parse_pragmas(source)
    kept = list(_apply_pragmas(findings, pragmas))
    kept.extend(Finding(code=MALFORMED_PRAGMA_CODE, path=path, line=line,
                        column=1, message=message)
                for line, message in pragmas.malformed)
    return sorted(kept, key=Finding.sort_key)


def lint_files(paths: Sequence[str], *, select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None,
               rules: Optional[Sequence[Rule]] = None) -> LintResult:
    """Lint a set of files/directories and return every surviving finding.

    ``paths`` entries may be files or directories (recursed for ``.py``).
    Syntax errors are findings, not crashes: a file the linter cannot
    parse cannot be certified either.
    """
    files = sorted(set(_collect(paths)))
    active = _selected(rules if rules is not None else all_rules(),
                       select, ignore)
    file_rules = [rule for rule in active if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in active if isinstance(rule, ProjectRule)]

    findings: List[Finding] = []
    contexts: List[LintContext] = []
    for file_path in files:
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            context = LintContext.from_source(source, path=file_path)
        except SyntaxError as error:
            findings.append(Finding(
                code="RPL999", path=file_path, line=error.lineno or 1,
                column=(error.offset or 0) + 1,
                message=f"file does not parse: {error.msg}"))
            continue
        contexts.append(context)
        pragmas = parse_pragmas(source)
        raw: List[Finding] = []
        for rule in file_rules:
            if rule.applies_to(context.module):
                raw.extend(rule.check(context))
        findings.extend(_apply_pragmas(raw, pragmas))
        findings.extend(Finding(code=MALFORMED_PRAGMA_CODE, path=file_path,
                                line=line, column=1, message=message)
                        for line, message in pragmas.malformed)

    audited = {context.module for context in contexts}
    for rule in project_rules:
        if rule.audited_module in audited:
            findings.extend(rule.check_project(contexts))

    return LintResult(findings=sorted(findings, key=Finding.sort_key),
                      files_checked=len(contexts))


def _collect(paths: Sequence[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                for name in sorted(names):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        elif path.endswith(".py"):
            yield path
        else:
            raise ValueError(f"not a python file or directory: {path!r}")
