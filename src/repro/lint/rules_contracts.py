"""RPL005 — the registry contracts, checked against the *live* registries.

Two contracts make the array backend's compile surface predictable and
ROADMAP item 2's gap-closing work inventoriable:

* **every registered protocol defines ``state_order()``** — the canonical
  interning order the columnar engine compiles transition tables against
  (:mod:`repro.engine.backends.array_backend` hard-fails without it);
* **every registered predicate is count-expressible** for every catalog
  protocol — its built instance answers ``as_state_count()`` — **or the
  ``(predicate, protocol)`` pair is listed in**
  :data:`NON_COUNT_EXPRESSIBLE`, the explicit, machine-readable inventory
  of known compile gaps.  A pair that silently stopped compiling would
  otherwise only surface as a ``BackendCompileError`` deep inside
  someone's campaign; a pair that silently *started* compiling should be
  removed from the inventory so the gap list stays honest.

Unlike the AST rules this one runs the registries: it is a
:class:`~repro.lint.framework.ProjectRule`, fires only when the linted
file set contains ``repro/protocols/registry.py``, and skips gracefully
(no findings, no crash) for entries whose optional dependencies are
missing — the no-numpy CI matrix must pass identically.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.framework import Finding, LintContext, ProjectRule

#: The known compile gaps: ``(predicate key, protocol key)`` pairs whose
#: built predicate is legitimately not count-expressible today.  This is
#: ROADMAP item 2's inventory in executable form — shrink it by making
#: the predicate compile (and the lint pass will *force* the removal:
#: a pair that becomes count-expressible is reported as a stale entry).
NON_COUNT_EXPRESSIBLE: Set[Tuple[str, str]] = {
    # the averaging spread criterion (max - min <= 1) is a relation
    # between two counts, not a single state-count threshold
    ("stable-output", "averaging"),
    # approximate-majority has no expected_output(), so stable-output
    # falls back to the unanimity-of-outputs rescan
    ("stable-output", "approximate-majority"),
    # AndProtocol.expected_output takes (ones, zeros); the registry's
    # generic single-argument probe TypeErrors into the same fallback
    ("stable-output", "and"),
}

#: Population used for the probe configurations; any small even number
#: works for every catalog protocol's default initial configuration.
_PROBE_POPULATION = 10


def _assignment_line(context: Optional[LintContext], target: str) -> int:
    """Line of ``target = ...`` in the registry module (anchor for findings)."""
    if context is None:
        return 1
    for node in ast.walk(context.tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for assigned in targets:
                if isinstance(assigned, ast.Name) and assigned.id == target:
                    return node.lineno
    return 1


def check_registry_contracts(
        path: str, *,
        protocols=None, predicates=None,
        allowlist: Optional[Set[Tuple[str, str]]] = None,
        protocols_line: int = 1,
        predicates_line: int = 1) -> List[Finding]:
    """Verify the registry contracts; parameterised so tests can seed violations.

    ``protocols``/``predicates`` default to the live registries.  Entries
    that cannot even be built (missing optional dependency) are skipped —
    an uninstallable entry is the package author's problem, not a
    determinism-contract violation of this repo.
    """
    from repro.protocols import registry

    if protocols is None:
        protocols = registry.PROTOCOLS
    if predicates is None:
        predicates = registry.PREDICATES
    if allowlist is None:
        allowlist = NON_COUNT_EXPRESSIBLE

    findings: List[Finding] = []

    built = {}
    for name in sorted(protocols):
        factory = protocols[name]
        try:
            protocol = factory()
        except ImportError:
            continue  # optional-dependency protocol: skip gracefully
        except (TypeError, ValueError):
            # Constructor needs arguments; the contract is still checkable
            # on the class itself.
            protocol = factory
        if not callable(getattr(protocol, "state_order", None)):
            findings.append(Finding(
                code="RPL005", path=path, line=protocols_line, column=1,
                message=f"registered protocol {name!r} defines no "
                        "state_order(); the array backend cannot intern its "
                        "states (subclass PopulationProtocol or add the "
                        "canonical order)"))
        elif not isinstance(protocol, type):
            built[name] = protocol

    for predicate_key in sorted(predicates):
        factory = predicates[predicate_key]
        for name in sorted(built):
            protocol = built[name]
            try:
                initial = registry.default_initial_configuration(
                    protocol, _PROBE_POPULATION)
                simulator = registry.SIMULATORS["none"](
                    protocol, _PROBE_POPULATION, 0, "TW")
                predicate = factory(simulator, protocol, initial)
            except ImportError:
                continue  # optional-dependency predicate: skip gracefully
            except (AttributeError, KeyError, TypeError, ValueError):
                # No default initial configuration / incompatible factory
                # signature: nothing to probe, not a contract violation.
                continue
            as_state_count = getattr(predicate, "as_state_count", None)
            shape = as_state_count() if callable(as_state_count) else None
            expressible = shape is not None
            listed = (predicate_key, name) in allowlist
            if not expressible and not listed:
                findings.append(Finding(
                    code="RPL005", path=path, line=predicates_line, column=1,
                    message=f"predicate {predicate_key!r} on protocol "
                            f"{name!r} is not count-expressible "
                            "(as_state_count() is None) and the pair is not "
                            "in the NON_COUNT_EXPRESSIBLE inventory; either "
                            "make it compile or list the gap explicitly"))
            elif expressible and listed:
                findings.append(Finding(
                    code="RPL005", path=path, line=predicates_line, column=1,
                    message=f"stale compile-gap entry: predicate "
                            f"{predicate_key!r} on protocol {name!r} IS "
                            "count-expressible now; remove the pair from "
                            "NON_COUNT_EXPRESSIBLE so the inventory stays "
                            "honest"))
    return findings


class RegistryContractRule(ProjectRule):
    code = "RPL005"
    name = "registry-contract"
    summary = ("registered protocols define state_order(); registered "
               "predicates are count-expressible or inventoried gaps")
    audited_module = "repro.protocols.registry"

    def check_project(self, contexts: Sequence[LintContext]) -> Iterator[Finding]:
        registry_context = next(
            (context for context in contexts
             if context.module == self.audited_module), None)
        path = registry_context.path if registry_context else "repro/protocols/registry.py"
        yield from check_registry_contracts(
            path,
            protocols_line=_assignment_line(registry_context, "PROTOCOLS"),
            predicates_line=_assignment_line(registry_context, "PREDICATES"))
