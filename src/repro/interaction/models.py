"""Executable interaction models (Figure 1 of the paper).

Each model owns the transition relation that Figure 1 associates with it and
is the single authority on how an interaction — possibly omissive — maps the
pre-states of the starter and the reactor to their post-states, given a
*program*:

* two-way models run *two-way programs*: objects exposing ``fs(s, r)`` and
  ``fr(s, r)`` (any :class:`repro.protocols.PopulationProtocol`), plus the
  optional omission handlers ``on_starter_omission`` / ``on_reactor_omission``
  (the functions ``o`` and ``h`` of the paper);
* one-way models run *one-way programs*: objects exposing ``g(s)``,
  ``f(s, r)`` and the same optional omission handlers (any
  :class:`repro.protocols.OneWayProtocol`, which includes all simulators of
  :mod:`repro.core`).

The detection capabilities encoded by each model are:

=========  ========  =====================  =====================
model      one-way   starter detection      reactor detection
=========  ========  =====================  =====================
``TW``     no        (no omissions)         (no omissions)
``T3``     no        yes (``o``)            yes (``h``)
``T2``     no        yes (``o``)            no
``T1``     no        no                     no
``IT``     yes       proximity (``g``)      (no omissions)
``IO``     yes       none                   (no omissions)
``I4``     yes       omission (``o``)       proximity (``g``)
``I3``     yes       proximity (``g``)      omission (``h``)
``I2``     yes       proximity (``g``)      proximity (``g``)
``I1``     yes       proximity (``g``)      none
=========  ========  =====================  =====================
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, List, Tuple

from repro.interaction.omissions import (
    FULL_OMISSION,
    NO_OMISSION,
    ONE_WAY_OMISSION,
    REACTOR_OMISSION,
    STARTER_OMISSION,
    Omission,
)
from repro.protocols.state import State


class ModelError(Exception):
    """Raised when a program or an omission is incompatible with a model."""


def _starter_omission_handler(program: Any) -> Callable[[State], State]:
    handler = getattr(program, "on_starter_omission", None)
    if handler is None:
        return lambda state: state
    return handler


def _reactor_omission_handler(program: Any) -> Callable[[State], State]:
    handler = getattr(program, "on_reactor_omission", None)
    if handler is None:
        return lambda state: state
    return handler


class InteractionModel:
    """Base class for the interaction models of Figure 1."""

    #: Short model name as used in the paper ("TW", "T1", ..., "I4").
    name: str = "model"
    #: Whether the model is one-way (information flows starter -> reactor only).
    one_way: bool = False
    #: Whether omissive interactions are part of the model's transition relation.
    allows_omissions: bool = False
    #: Whether the starter can detect an omission (apply ``o``).
    starter_detects_omission: bool = False
    #: Whether the reactor can detect an omission (apply ``h``).
    reactor_detects_omission: bool = False
    #: Whether the starter detects the interaction at all (applies ``g`` / ``fs``).
    starter_detects_proximity: bool = True

    # -- core semantics -----------------------------------------------------------------

    def apply(
        self,
        program: Any,
        starter_state: State,
        reactor_state: State,
        omission: Omission = NO_OMISSION,
    ) -> Tuple[State, State]:
        """Apply one interaction and return ``(new_starter, new_reactor)``."""
        raise NotImplementedError

    def validate_omission(self, omission: Omission) -> None:
        """Raise :class:`ModelError` when ``omission`` is not expressible in this model."""
        if omission.is_omissive and not self.allows_omissions:
            raise ModelError(f"model {self.name} does not admit omissive interactions")
        if self.one_way and omission.starter_lost:
            raise ModelError(
                f"model {self.name} is one-way: the starter never receives information, "
                "so a starter-side omission is meaningless"
            )

    def admissible_omissions(self) -> List[Omission]:
        """The omission specifications expressible in this model."""
        if not self.allows_omissions:
            return [NO_OMISSION]
        if self.one_way:
            return [NO_OMISSION, ONE_WAY_OMISSION]
        return [NO_OMISSION, STARTER_OMISSION, REACTOR_OMISSION, FULL_OMISSION]

    def transition_relation(
        self, program: Any, starter_state: State, reactor_state: State
    ) -> FrozenSet[Tuple[State, State]]:
        """The set of possible outcomes of an interaction, per Figure 1."""
        outcomes = set()
        for omission in self.admissible_omissions():
            outcomes.add(self.apply(program, starter_state, reactor_state, omission))
        return frozenset(outcomes)

    def __repr__(self) -> str:
        return f"<InteractionModel {self.name}>"

    def __str__(self) -> str:
        return self.name


class TwoWayModel(InteractionModel):
    """Common machinery of ``TW`` and the omissive two-way models ``T1``-``T3``."""

    one_way = False

    def _require_two_way_program(self, program: Any) -> None:
        if not hasattr(program, "fs") or not hasattr(program, "fr"):
            raise ModelError(
                f"model {self.name} requires a two-way program exposing fs/fr; "
                f"got {type(program).__name__}"
            )

    def apply(
        self,
        program: Any,
        starter_state: State,
        reactor_state: State,
        omission: Omission = NO_OMISSION,
    ) -> Tuple[State, State]:
        self._require_two_way_program(program)
        self.validate_omission(omission)

        if omission.starter_lost:
            if self.starter_detects_omission:
                new_starter = _starter_omission_handler(program)(starter_state)
            else:
                new_starter = starter_state
        else:
            new_starter = program.fs(starter_state, reactor_state)

        if omission.reactor_lost:
            if self.reactor_detects_omission:
                new_reactor = _reactor_omission_handler(program)(reactor_state)
            else:
                new_reactor = reactor_state
        else:
            new_reactor = program.fr(starter_state, reactor_state)

        return new_starter, new_reactor


class OneWayModel(InteractionModel):
    """Common machinery of ``IT``, ``IO`` and the omissive one-way models ``I1``-``I4``."""

    one_way = True
    #: Whether the reactor applies ``g`` (proximity detection) on an omission.
    reactor_detects_proximity_on_omission: bool = False

    def _require_one_way_program(self, program: Any) -> None:
        if not hasattr(program, "f"):
            raise ModelError(
                f"model {self.name} requires a one-way program exposing f (and g); "
                f"got {type(program).__name__}"
            )

    def _apply_g(self, program: Any, state: State) -> State:
        if not self.starter_detects_proximity:
            return state
        g = getattr(program, "g", None)
        if g is None:
            return state
        return g(state)

    def apply(
        self,
        program: Any,
        starter_state: State,
        reactor_state: State,
        omission: Omission = NO_OMISSION,
    ) -> Tuple[State, State]:
        self._require_one_way_program(program)
        self.validate_omission(omission)

        if not omission.is_omissive:
            new_starter = self._apply_g(program, starter_state)
            new_reactor = program.f(starter_state, reactor_state)
            return new_starter, new_reactor

        # Omissive interaction: the reactor did not receive the starter's state.
        if self.starter_detects_omission:
            new_starter = _starter_omission_handler(program)(starter_state)
        else:
            new_starter = self._apply_g(program, starter_state)

        if self.reactor_detects_omission:
            new_reactor = _reactor_omission_handler(program)(reactor_state)
        elif self.reactor_detects_proximity_on_omission:
            new_reactor = self._apply_g(program, reactor_state)
        else:
            new_reactor = reactor_state

        return new_starter, new_reactor


# -- concrete two-way models -----------------------------------------------------------------


class _TW(TwoWayModel):
    """The standard two-way model: ``delta(as, ar) = (fs(as, ar), fr(as, ar))``."""

    name = "TW"
    allows_omissions = False


class _T3(TwoWayModel):
    """Two-way with omissions, detection on both sides (strongest omissive TW model)."""

    name = "T3"
    allows_omissions = True
    starter_detects_omission = True
    reactor_detects_omission = True


class _T2(TwoWayModel):
    """Two-way with omissions, detection on the starter side only (``h`` forced to identity)."""

    name = "T2"
    allows_omissions = True
    starter_detects_omission = True
    reactor_detects_omission = False


class _T1(TwoWayModel):
    """Two-way with omissions and no detection at all (``o`` and ``h`` identities)."""

    name = "T1"
    allows_omissions = True
    starter_detects_omission = False
    reactor_detects_omission = False


# -- concrete one-way models -----------------------------------------------------------------


class _IT(OneWayModel):
    """Immediate Transmission: ``delta(as, ar) = (g(as), f(as, ar))``, no omissions."""

    name = "IT"
    allows_omissions = False
    starter_detects_proximity = True


class _IO(OneWayModel):
    """Immediate Observation: ``delta(as, ar) = (as, f(as, ar))``, no omissions.

    The starter is oblivious to the interaction, so ``g`` is forced to the
    identity regardless of what the program defines.
    """

    name = "IO"
    allows_omissions = False
    starter_detects_proximity = False


class _I1(OneWayModel):
    """One-way omissive, no detection reactor-side: omission outcome ``(g(as), ar)``."""

    name = "I1"
    allows_omissions = True
    starter_detects_proximity = True
    reactor_detects_proximity_on_omission = False


class _I2(OneWayModel):
    """One-way omissive, proximity (but not omission) detection on both sides.

    Omission outcome ``(g(as), g(ar))``.
    """

    name = "I2"
    allows_omissions = True
    starter_detects_proximity = True
    reactor_detects_proximity_on_omission = True


class _I3(OneWayModel):
    """One-way omissive with reactor-side omission detection: ``(g(as), h(ar))``."""

    name = "I3"
    allows_omissions = True
    starter_detects_proximity = True
    reactor_detects_omission = True


class _I4(OneWayModel):
    """One-way omissive with starter-side omission detection: ``(o(as), g(ar))``."""

    name = "I4"
    allows_omissions = True
    starter_detects_proximity = True
    starter_detects_omission = True
    reactor_detects_proximity_on_omission = True


#: Singleton instances, used throughout the library.
TW = _TW()
T1 = _T1()
T2 = _T2()
T3 = _T3()
IT = _IT()
IO = _IO()
I1 = _I1()
I2 = _I2()
I3 = _I3()
I4 = _I4()

#: All ten models of Figure 1.
ALL_MODELS: Tuple[InteractionModel, ...] = (TW, T1, T2, T3, IT, IO, I1, I2, I3, I4)

#: Lookup table by model name.
MODELS_BY_NAME: Dict[str, InteractionModel] = {model.name: model for model in ALL_MODELS}


def get_model(name: str) -> InteractionModel:
    """Look up a model by its Figure 1 name (case-insensitive)."""
    try:
        return MODELS_BY_NAME[name.upper()]
    except KeyError:
        known = ", ".join(sorted(MODELS_BY_NAME))
        raise KeyError(f"unknown interaction model {name!r}; known models: {known}") from None
