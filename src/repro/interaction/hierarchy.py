"""The model hierarchy of Figure 1.

Figure 1 of the paper arranges the ten interaction models in a directed
graph where an edge ``M -> M'`` means that the class of problems solvable in
``M`` is included in the class solvable in ``M'``.  The caption gives two
sufficient reasons for an edge:

* **special-case** — the transition relation of the source is a special case
  of the transition relation of the destination (e.g. ``IO`` is ``IT`` with
  ``g`` equal to the identity), so any source protocol literally *is* a
  destination protocol; or
* **omission-avoidance** — the destination is obtained from the source by
  removing omissions, and the adversary of the source model can always
  choose not to insert omissions (e.g. ``T3 -> TW``), so a source-correct
  protocol remains correct on the omission-free runs of the destination.

This module exposes the hierarchy as a :mod:`networkx` digraph whose edges
carry their justification, plus convenience queries.  The companion
benchmark ``benchmarks/bench_figure_1_hierarchy.py`` mechanically verifies
every *special-case* edge by checking transition-relation inclusion on
concrete programs.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import networkx as nx

from repro.interaction.models import ALL_MODELS, InteractionModel, get_model

#: Justification labels for hierarchy edges.
SPECIAL_CASE = "special-case"
OMISSION_AVOIDANCE = "omission-avoidance"

#: The Figure 1 edges: (source, destination, justification).
HIERARCHY_EDGES: List[Tuple[str, str, str]] = [
    # One-way, non-omissive.
    ("IO", "IT", SPECIAL_CASE),        # IO is IT with g = identity.
    ("IT", "TW", SPECIAL_CASE),        # IT is TW with fs ignoring the reactor.
    # Two-way omissive chain: fewer detection capabilities -> special case of more.
    ("T1", "T2", SPECIAL_CASE),        # T1 is T2 with o = identity.
    ("T2", "T3", SPECIAL_CASE),        # T2 is T3 with h = identity.
    ("T3", "TW", OMISSION_AVOIDANCE),  # the T3 adversary may avoid omissions.
    # One-way omissive models into the stronger one-way omissive models.
    ("I1", "I3", SPECIAL_CASE),        # I1 is I3 with h = identity.
    ("I2", "I3", SPECIAL_CASE),        # I2 is I3 with h = g.
    ("I2", "I4", SPECIAL_CASE),        # I2 is I4 with o = g.
    # One-way omissive models into the non-omissive IT (omission avoidance).
    ("I1", "IT", OMISSION_AVOIDANCE),
    ("I2", "IT", OMISSION_AVOIDANCE),
    ("I3", "IT", OMISSION_AVOIDANCE),
    ("I4", "IT", OMISSION_AVOIDANCE),
    # One-way omissive into two-way omissive with matching detection.
    ("I3", "T3", SPECIAL_CASE),        # identify fs = o = g: the relations coincide.
]


def hierarchy_graph() -> nx.DiGraph:
    """Build the Figure 1 hierarchy as a ``networkx.DiGraph``.

    Nodes are model names; each edge has a ``justification`` attribute set to
    either :data:`SPECIAL_CASE` or :data:`OMISSION_AVOIDANCE`.
    """
    graph = nx.DiGraph()
    for model in ALL_MODELS:
        graph.add_node(
            model.name,
            one_way=model.one_way,
            allows_omissions=model.allows_omissions,
        )
    for source, destination, justification in HIERARCHY_EDGES:
        graph.add_edge(source, destination, justification=justification)
    return graph


def is_at_most_as_powerful(weaker: str, stronger: str) -> bool:
    """Whether the problems solvable in ``weaker`` are included in those of ``stronger``.

    ``True`` when there is a directed path from ``weaker`` to ``stronger`` in
    the Figure 1 hierarchy (inclusion is transitive), or the two names denote
    the same model.
    """
    weaker_name = get_model(weaker).name
    stronger_name = get_model(stronger).name
    if weaker_name == stronger_name:
        return True
    graph = hierarchy_graph()
    return nx.has_path(graph, weaker_name, stronger_name)


def weaker_models(name: str) -> List[str]:
    """Names of models whose solvable-problem class is included in ``name``'s."""
    graph = hierarchy_graph()
    target = get_model(name).name
    return sorted(node for node in graph.nodes if node != target and nx.has_path(graph, node, target))


def stronger_models(name: str) -> List[str]:
    """Names of models whose solvable-problem class includes ``name``'s."""
    graph = hierarchy_graph()
    source = get_model(name).name
    return sorted(node for node in graph.nodes if node != source and nx.has_path(graph, source, node))


def topological_order() -> List[str]:
    """Model names ordered from weakest to strongest (a topological order of Figure 1)."""
    return list(nx.topological_sort(hierarchy_graph()))


def edges_with_justification(justification: str) -> List[Tuple[str, str]]:
    """All hierarchy edges carrying the given justification label."""
    return [
        (source, destination)
        for source, destination, label in HIERARCHY_EDGES
        if label == justification
    ]
