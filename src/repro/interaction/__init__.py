"""Interaction models of Figure 1.

The paper identifies ten computationally distinct interaction models:

* ``TW`` — the standard two-way model (no omissions);
* ``T1``, ``T2``, ``T3`` — two-way models with omissions and increasing
  detection capabilities;
* ``IT``, ``IO`` — the non-omissive one-way models (Immediate Transmission
  and Immediate Observation);
* ``I1``, ``I2``, ``I3``, ``I4`` — one-way models with omissions and
  different detection capabilities.

Each model is an executable object that owns its transition relation: given
a program (a two-way protocol or a one-way protocol / simulator) and an
omission specification, it computes the post-interaction states of the
starter and the reactor.  The hierarchy of Figure 1 is exposed as a
``networkx`` digraph in :mod:`repro.interaction.hierarchy`.
"""

from repro.interaction.omissions import Omission, NO_OMISSION
from repro.interaction.models import (
    InteractionModel,
    TwoWayModel,
    OneWayModel,
    TW,
    T1,
    T2,
    T3,
    IT,
    IO,
    I1,
    I2,
    I3,
    I4,
    ALL_MODELS,
    MODELS_BY_NAME,
    get_model,
    ModelError,
)
from repro.interaction.hierarchy import (
    hierarchy_graph,
    is_at_most_as_powerful,
    weaker_models,
    stronger_models,
)

__all__ = [
    "Omission",
    "NO_OMISSION",
    "InteractionModel",
    "TwoWayModel",
    "OneWayModel",
    "TW",
    "T1",
    "T2",
    "T3",
    "IT",
    "IO",
    "I1",
    "I2",
    "I3",
    "I4",
    "ALL_MODELS",
    "MODELS_BY_NAME",
    "get_model",
    "ModelError",
    "hierarchy_graph",
    "is_at_most_as_powerful",
    "weaker_models",
    "stronger_models",
]
