"""Omission specifications for single interactions (Section 2.3).

An omission is a fault affecting a single interaction: an agent does not
receive any information about the state of its counterpart.  In two-way
models the omission can hit the starter side, the reactor side, or both.
In one-way models information only flows from starter to reactor, so the
only meaningful omission is the loss of the starter's state on its way to
the reactor; we still record it as ``reactor_lost`` for uniformity.

Whether an omission is *detected* by an agent is a property of the
interaction model (the functions ``o`` and ``h`` of the paper), not of the
omission itself; the :class:`Omission` value only says what information was
lost.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Omission:
    """What information was lost during one interaction.

    Attributes
    ----------
    starter_lost:
        The starter did not receive the reactor's state (meaningful only in
        two-way models, where information flows both ways).
    reactor_lost:
        The reactor did not receive the starter's state.
    """

    starter_lost: bool = False
    reactor_lost: bool = False

    @property
    def is_omissive(self) -> bool:
        """Whether any information was lost in this interaction."""
        return self.starter_lost or self.reactor_lost

    @property
    def is_full(self) -> bool:
        """Whether both directions were lost (two-way models only)."""
        return self.starter_lost and self.reactor_lost

    def __str__(self) -> str:
        if not self.is_omissive:
            return "no-omission"
        sides = []
        if self.starter_lost:
            sides.append("starter")
        if self.reactor_lost:
            sides.append("reactor")
        return "omission[" + "+".join(sides) + "]"


#: The non-omissive interaction.
NO_OMISSION = Omission(False, False)

#: Omission on the starter side only (starter misses the reactor's state).
STARTER_OMISSION = Omission(starter_lost=True, reactor_lost=False)

#: Omission on the reactor side only (reactor misses the starter's state).
REACTOR_OMISSION = Omission(starter_lost=False, reactor_lost=True)

#: Omission on both sides.
FULL_OMISSION = Omission(starter_lost=True, reactor_lost=True)

#: The single meaningful omission in one-way models.
ONE_WAY_OMISSION = REACTOR_OMISSION
