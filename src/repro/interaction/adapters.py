"""Adapters between one-way and two-way program interfaces.

Two adapters are provided:

* :func:`one_way_as_two_way` — wrap a one-way program (``g``, ``f``) as a
  two-way program (``fs``, ``fr``).  This realises the "special case" edges
  of Figure 1 (an ``IT``/``IO`` protocol *is* a ``TW`` protocol whose
  ``fs`` ignores the reactor's state) and lets the impossibility
  constructions of Section 3, which are phrased for the two-way omissive
  model ``T3``, be applied verbatim to the one-way simulators of Section 4.

* :func:`two_way_as_one_way_naive` — the *incorrect* naive embedding of a
  two-way protocol into the one-way interface (the starter's update is
  dropped).  It exists only as a foil: benchmarks and tests use it to show
  that running a two-way protocol directly on a one-way model without a
  simulator loses correctness, which is the gap the paper's simulators
  close.
"""

from __future__ import annotations

from typing import Any

from repro.protocols.protocol import OneWayProtocol, PopulationProtocol
from repro.protocols.state import State


class OneWayAsTwoWay:
    """Present a one-way program through the two-way program interface.

    ``fs(as, ar) = g(as)`` and ``fr(as, ar) = f(as, ar)``; the omission
    handlers are forwarded unchanged.  Running the wrapped program under
    ``TW`` (or an omissive two-way model) therefore reproduces exactly the
    behaviour it would have under ``IT`` (or the corresponding one-way
    omissive model), which is the precise sense in which one-way protocols
    are special cases of two-way protocols.
    """

    def __init__(self, program: Any) -> None:
        if not hasattr(program, "f"):
            raise TypeError(
                "one_way_as_two_way expects a one-way program exposing f (and g); "
                f"got {type(program).__name__}"
            )
        self._program = program
        self.name = f"two-way({getattr(program, 'name', type(program).__name__)})"

    @property
    def wrapped(self) -> Any:
        """The underlying one-way program."""
        return self._program

    def fs(self, starter: State, reactor: State) -> State:
        g = getattr(self._program, "g", None)
        if g is None:
            return starter
        return g(starter)

    def fr(self, starter: State, reactor: State) -> State:
        return self._program.f(starter, reactor)

    def on_starter_omission(self, starter: State) -> State:
        handler = getattr(self._program, "on_starter_omission", None)
        if handler is None:
            return starter
        return handler(starter)

    def on_reactor_omission(self, reactor: State) -> State:
        handler = getattr(self._program, "on_reactor_omission", None)
        if handler is None:
            return reactor
        return handler(reactor)

    def __getattr__(self, item) -> Any:
        # Projection, event extraction, initial-state construction etc. are
        # delegated to the wrapped program so simulators stay fully usable
        # through the adapter.
        return getattr(self._program, item)

    def __repr__(self) -> str:
        return f"<OneWayAsTwoWay {self._program!r}>"


def one_way_as_two_way(program: Any) -> OneWayAsTwoWay:
    """Wrap a one-way program so it can run under the two-way models."""
    return OneWayAsTwoWay(program)


class NaiveOneWayProjection(OneWayProtocol):
    """The naive (incorrect) one-way projection of a two-way protocol.

    Only the reactor's half of ``delta_P`` is applied; the starter's half is
    silently dropped.  This is *not* a simulation — it is the baseline
    showing why simulators are needed at all.
    """

    def __init__(self, protocol: PopulationProtocol) -> None:
        super().__init__(
            states=protocol.states,
            initial_states=protocol.initial_states,
            name=f"naive-one-way({protocol.name})",
        )
        self._protocol = protocol

    @property
    def protocol(self) -> PopulationProtocol:
        return self._protocol

    def f(self, starter: State, reactor: State) -> State:
        return self._protocol.delta(starter, reactor)[1]


def two_way_as_one_way_naive(protocol: PopulationProtocol) -> NaiveOneWayProjection:
    """Build the naive (incorrect) one-way projection of a two-way protocol."""
    return NaiveOneWayProjection(protocol)
