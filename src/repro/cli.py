"""Command-line interface.

The CLI exposes the library's main workflows without writing any Python:

``repro run``
    Run a catalog protocol under an interaction model, optionally through a
    simulator and under an omission adversary, and report convergence plus
    the Definition 3/4 verification.

``repro attack``
    Execute the Lemma 1 construction (Theorem 3.1) or the NO1 single-omission
    attack (Theorem 3.2) against ``SKnO`` and report the violation.

``repro map``
    Print the Figure 4 map of results.

``repro hierarchy``
    Print the Figure 1 hierarchy of interaction models.

Examples::

    repro run --protocol exact-majority --model I3 --simulator skno \
              --population 10 --omission-bound 2 --omissions 2 --seed 1
    repro attack lemma1 --omission-bound 1
    repro attack no1 --model I1
    repro map
    repro hierarchy
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.adversary.constructions import Lemma1Construction, no1_liveness_attack
from repro.adversary.omission import BoundedOmissionAdversary
from repro.analysis.reporting import format_results_map, format_table
from repro.core.naming import KnownSizeSimulator
from repro.core.sid import SIDSimulator
from repro.core.skno import SKnOSimulator
from repro.core.trivial import TrivialTwoWaySimulator
from repro.core.verification import verify_simulation
from repro.engine.convergence import run_until_stable
from repro.engine.engine import SimulationEngine
from repro.engine.experiment import repeat_experiment
from repro.interaction.adapters import one_way_as_two_way
from repro.interaction.hierarchy import HIERARCHY_EDGES, topological_order
from repro.interaction.models import MODELS_BY_NAME, get_model
from repro.protocols.catalog import CATALOG, get_protocol
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.state import Configuration
from repro.scheduling.scheduler import RandomScheduler

SIMULATOR_CHOICES = ("none", "skno", "sid", "known-n")


def _build_initial_configuration(protocol, population: int, args) -> Configuration:
    """A sensible default initial configuration for each catalog protocol."""
    name = protocol.name
    majority_a = population // 2 + 1
    if name == "pairing":
        consumers = population // 2
        return Configuration(["c"] * consumers + ["p"] * (population - consumers))
    if name == "leader-election":
        return Configuration(["L"] * population)
    if name in ("exact-majority", "approximate-majority"):
        return protocol.initial_configuration(majority_a, population - majority_a)
    if name.startswith("threshold") or name.startswith("mod-") or name == "parity":
        ones = args.ones if args.ones is not None else majority_a
        return protocol.initial_configuration(ones, population - ones)
    if name in ("or", "and"):
        ones = args.ones if args.ones is not None else 1
        return protocol.initial_configuration(ones, population - ones)
    if name.startswith("averaging"):
        return Configuration([(i * 3) % (protocol.max_value + 1) for i in range(population)])
    if name == "epidemic":
        return Configuration(["I"] + ["S"] * (population - 1))
    raise SystemExit(f"no default initial configuration for protocol {name!r}")


def _build_simulator(kind: str, protocol, population: int, omission_bound: int, model_name: str):
    if kind == "none":
        return TrivialTwoWaySimulator(protocol)
    if kind == "skno":
        variant = "I4" if model_name.upper() == "I4" else "I3"
        return SKnOSimulator(protocol, omission_bound=omission_bound, variant=variant)
    if kind == "sid":
        return SIDSimulator(protocol)
    if kind == "known-n":
        return KnownSizeSimulator(protocol, population_size=population)
    raise SystemExit(f"unknown simulator {kind!r}")


def _stable_predicate(simulator, protocol, initial_projected: Configuration):
    """Predicate: every agent's simulated output equals the final stable output.

    The expected stable output is derived from the initial configuration
    where possible (majority opinion, OR/AND value, threshold verdict);
    protocols without a natural scalar output fall back to "outputs stopped
    changing", approximated by unanimity of outputs.
    """
    outputs = [protocol.output(state) for state in initial_projected]

    name = protocol.name
    if name == "pairing":
        expected_critical = min(initial_projected.count("c"), initial_projected.count("p"))
        return lambda c: c.project(simulator.project).count("cs") == expected_critical
    if name == "leader-election":
        return lambda c: sum(1 for s in c if simulator.project(s) == "L") == 1
    if name == "exact-majority":
        count_a = sum(1 for value in outputs if value == "A")
        expected = "A" if count_a * 2 > len(outputs) else "B"
        return lambda c: all(protocol.output(simulator.project(s)) == expected for s in c)
    if name.startswith("averaging"):
        return lambda c: max(simulator.project(s) for s in c) - min(
            simulator.project(s) for s in c) <= 1
    if name.startswith("threshold"):
        ones = sum(weight for weight, _ in initial_projected)
        expected = protocol.expected_output(ones)
        return lambda c: all(protocol.output(simulator.project(s)) == expected for s in c)
    if name.startswith("mod-") or name == "parity":
        ones = sum(residue for _, residue in initial_projected)
        expected = protocol.expected_output(ones)
        return lambda c: all(protocol.output(simulator.project(s)) == expected for s in c)
    # Generic boolean predicates: the stable output is determined by the
    # protocol's own expected_output when available.
    expected = None
    if hasattr(protocol, "expected_output"):
        ones = sum(1 for state in initial_projected if protocol.output(state))
        try:
            expected = protocol.expected_output(ones)
        except TypeError:
            expected = None
    if expected is not None:
        return lambda c: all(protocol.output(simulator.project(s)) == expected for s in c)
    return lambda c: len({protocol.output(simulator.project(s)) for s in c}) == 1


def _command_run(args) -> int:
    protocol_kwargs = {}
    if args.protocol == "threshold" and args.threshold is not None:
        protocol_kwargs["threshold"] = args.threshold
    protocol = get_protocol(args.protocol, **protocol_kwargs)
    model = get_model(args.model)
    initial_projected = _build_initial_configuration(protocol, args.population, args)
    simulator = _build_simulator(
        args.simulator, protocol, args.population, args.omission_bound, args.model)

    if args.simulator == "none" and model.name != "TW":
        raise SystemExit(
            "running a two-way protocol without a simulator requires --model TW; "
            "pick --simulator skno/sid/known-n for weaker models")
    if args.omissions > 0 and not model.allows_omissions:
        raise SystemExit(f"model {model.name} does not admit omissions")
    if args.runs < 1:
        raise SystemExit("--runs must be at least 1")
    if args.jobs < 1:
        raise SystemExit("--jobs must be at least 1")

    config = simulator.initial_configuration(initial_projected)
    predicate = _stable_predicate(simulator, protocol, initial_projected)

    if args.runs > 1:
        return _run_repeated(args, protocol, model, simulator, config, predicate)

    adversary = None
    if args.omissions > 0:
        adversary = BoundedOmissionAdversary(model, max_omissions=args.omissions, seed=args.seed)

    engine = SimulationEngine(
        simulator, model, RandomScheduler(args.population, seed=args.seed), adversary=adversary)
    outcome = run_until_stable(engine, config, predicate, max_steps=args.max_steps,
                               stability_window=args.stability_window,
                               trace_policy=args.trace_policy)

    report = None
    if args.trace_policy == "full":
        report = verify_simulation(simulator, outcome.trace)

    rows = [
        ["protocol", protocol.name],
        ["model", model.name],
        ["simulator", simulator.name],
        ["population", args.population],
        ["converged", outcome.converged],
        ["interactions to stabilise", outcome.steps_to_convergence],
        ["interactions executed", outcome.steps_executed],
        ["omissions", outcome.omissions],
        ["simulated pairs", report.matched_pairs if report else "-"],
        ["verification", ("OK" if report.ok else "VIOLATION") if report
         else f"skipped ({args.trace_policy} trace)"],
    ]
    print(format_table(["quantity", "value"], rows))
    if report and report.errors:
        print()
        for error in report.errors[:5]:
            print("  !", error)
    verified = report.ok if report else True
    return 0 if (outcome.converged and verified) else 1


def _run_repeated(args, protocol, model, simulator, config, predicate) -> int:
    """``repro run --runs N [--jobs J]``: the parallel batch-experiment path."""
    adversary_factory = None
    if args.omissions > 0:
        adversary_factory = lambda run_index: BoundedOmissionAdversary(
            model, max_omissions=args.omissions, seed=args.seed + run_index)

    validate = None
    if args.trace_policy == "full":
        def validate(outcome):
            report = verify_simulation(simulator, outcome.trace)
            if not report.ok:
                return f"simulation verification: {report.errors[0]}" if report.errors \
                    else "simulation verification violation"
            return None

    result = repeat_experiment(
        simulator,
        model,
        config,
        predicate,
        runs=args.runs,
        max_steps=args.max_steps,
        stability_window=args.stability_window,
        base_seed=args.seed,
        adversary_factory=adversary_factory,
        validate=validate,
        jobs=args.jobs,
        trace_policy=args.trace_policy,
    )

    mean = result.mean_convergence_steps
    median = result.median_convergence_steps
    rows = [
        ["protocol", protocol.name],
        ["model", model.name],
        ["simulator", simulator.name],
        ["population", args.population],
        ["runs", result.runs],
        ["jobs", args.jobs],
        ["successes", f"{result.successes}/{result.runs}"],
        ["success rate", f"{result.success_rate:.2f}"],
        ["mean interactions to stabilise", f"{mean:.0f}" if mean is not None else "-"],
        ["median interactions to stabilise", f"{median:.0f}" if median is not None else "-"],
        ["max interactions to stabilise", result.max_convergence_steps
         if result.max_convergence_steps is not None else "-"],
        ["verification", "per-run" if validate else f"skipped ({args.trace_policy} trace)"],
    ]
    print(format_table(["quantity", "value"], rows))
    if result.failures:
        print()
        for failure in result.failures[:5]:
            print("  !", failure)
    return 0 if result.all_succeeded else 1


def _command_attack(args) -> int:
    protocol = PairingProtocol()
    if args.kind == "lemma1":
        simulator = one_way_as_two_way(
            SKnOSimulator(protocol, omission_bound=args.omission_bound))
        construction = Lemma1Construction(simulator, get_model("T3"), q0="p", q1="c")
        result = construction.execute()
        rows = [
            ["target simulator", f"SKnO(o={args.omission_bound}) via T3"],
            ["FTT", result.ftt],
            ["population", result.population],
            ["omissions used", result.omissions_used],
            ["critical transitions", result.q1_to_q1_prime_transitions],
            ["safety bound (producers)", result.safety_bound],
            ["safety violated", result.safety_violated],
        ]
        print(format_table(["quantity", "value"], rows))
        return 0 if result.safety_violated else 1

    simulator = SKnOSimulator(protocol, omission_bound=1)
    program = one_way_as_two_way(simulator) if args.model.upper() == "T1" else simulator
    result = no1_liveness_attack(
        program, args.model, target_state="cs", expected_committed=1,
        initial_p_configuration=Configuration(["p", "c"]), safety_bound=1,
        max_steps=args.max_steps, seed=args.seed)
    print(result.summary())
    return 0 if (result.liveness_violated or result.safety_violated) else 1


def _command_map(_args) -> int:
    print(format_results_map())
    print()
    print("YES = simulation possible, NO = impossible, ? = open, TW = trivially possible;")
    print("'*' marks cells re-checked empirically by benchmarks/bench_figure_4_results_map.py")
    return 0


def _command_hierarchy(_args) -> int:
    rows = [[f"{source} -> {destination}", justification]
            for source, destination, justification in HIERARCHY_EDGES]
    print(format_table(["edge (weaker -> stronger)", "justification"], rows))
    print()
    print("weakest to strongest:", " -> ".join(topological_order()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant simulation of population protocols (ICDCS 2017 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run a protocol, optionally through a simulator")
    run_parser.add_argument("--protocol", choices=sorted(CATALOG), default="exact-majority")
    run_parser.add_argument("--model", choices=sorted(MODELS_BY_NAME), default="TW")
    run_parser.add_argument("--simulator", choices=SIMULATOR_CHOICES, default="none")
    run_parser.add_argument("--population", "-n", type=int, default=10)
    run_parser.add_argument("--omission-bound", type=int, default=0,
                            help="bound o announced to SKnO")
    run_parser.add_argument("--omissions", type=int, default=0,
                            help="omissions actually injected by the adversary")
    run_parser.add_argument("--ones", type=int, default=None,
                            help="number of agents with input 1 (threshold/OR/AND/parity)")
    run_parser.add_argument("--threshold", type=int, default=None)
    run_parser.add_argument("--max-steps", type=int, default=300_000)
    run_parser.add_argument("--stability-window", type=int, default=300)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--runs", type=int, default=1,
                            help="repeat the run with seeds seed..seed+runs-1 "
                                 "and report aggregate convergence statistics")
    run_parser.add_argument("--jobs", type=int, default=1,
                            help="worker threads for --runs > 1 (deterministic merge)")
    run_parser.add_argument("--trace-policy", choices=("full", "counts-only", "ring"),
                            default="full",
                            help="full: record every step and verify the simulation; "
                                 "counts-only: fast path, skips verification; "
                                 "ring: keep only the last steps")
    run_parser.set_defaults(handler=_command_run)

    attack_parser = subparsers.add_parser("attack", help="execute an impossibility construction")
    attack_parser.add_argument("kind", choices=("lemma1", "no1"))
    attack_parser.add_argument("--omission-bound", type=int, default=1,
                               help="lemma1: the bound announced to the victim SKnO")
    attack_parser.add_argument("--model", default="I1",
                               help="no1: the weak model to attack (I1, I2 or T1)")
    attack_parser.add_argument("--max-steps", type=int, default=30_000)
    attack_parser.add_argument("--seed", type=int, default=0)
    attack_parser.set_defaults(handler=_command_attack)

    map_parser = subparsers.add_parser("map", help="print the Figure 4 map of results")
    map_parser.set_defaults(handler=_command_map)

    hierarchy_parser = subparsers.add_parser("hierarchy", help="print the Figure 1 hierarchy")
    hierarchy_parser.set_defaults(handler=_command_hierarchy)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
