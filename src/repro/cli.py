"""Command-line interface.

The CLI exposes the library's main workflows without writing any Python:

``repro run``
    Run a catalog protocol under an interaction model, optionally through a
    simulator and under an omission adversary, and report convergence plus
    the Definition 3/4 verification.

``repro attack``
    Execute the Lemma 1 construction (Theorem 3.1) or the NO1 single-omission
    attack (Theorem 3.2) against ``SKnO`` and report the violation.

``repro campaign``
    Declarative, resumable parameter-sweep campaigns
    (:mod:`repro.campaign`): ``run`` a JSON campaign spec over a grid of
    experiments with a persistent JSONL result store (``--cell-jobs K``
    overlaps independent cells across a worker pool; ``--shared`` pools
    cells across campaigns so overlapping grids are never recomputed),
    ``status`` it, ``resume`` an interrupted sweep (completed cells are
    skipped), render a Figure-4-style ``report``, and ``compact`` the
    store (drop superseded/orphaned records; reports are unchanged).

``repro list``
    Print every registered protocol, simulator, predicate, scheduler and
    adversary, the available engine/fan-out backends, and any third-party
    entry points that failed to load.

``repro lint``
    Run the determinism-contracts static-analysis pass
    (:mod:`repro.lint`) over the package sources (or given paths); the
    repo self-hosts it with zero findings and CI enforces that.

``repro map``
    Print the Figure 4 map of results.

``repro hierarchy``
    Print the Figure 1 hierarchy of interaction models.

Examples::

    repro run --protocol exact-majority --model I3 --simulator skno \
              --population 10 --omission-bound 2 --omissions 2 --seed 1
    repro run --protocol exact-majority --runs 16 --jobs 4 \
              --backend process --trace-policy counts-only
    repro run --protocol leader-election --trace-policy ring --max-steps 500
    repro run --protocol epidemic --scheduler ring-graph --population 64 \
              --trace-policy counts-only
    repro run --protocol epidemic --population 100000 --engine-backend array \
              --trace-policy counts-only --max-steps 2000000
    repro campaign run examples/figure4_omission_sweep.json
    repro campaign run examples/figure4_omission_sweep.json --cell-jobs 4
    repro campaign run examples/figure4_omission_sweep.json \
          --shared --store pool.results.jsonl
    repro campaign run examples/figure4_omission_sweep.json \
          --metrics sweep.metrics.jsonl --progress
    repro campaign metrics sweep.metrics.jsonl
    repro campaign resume examples/figure4_omission_sweep.json
    repro campaign report examples/figure4_omission_sweep.json
    repro campaign compact examples/figure4_omission_sweep.json
    repro lint --format json
    repro list
    repro attack lemma1 --omission-bound 1
    repro attack no1 --model I1
    repro map
    repro hierarchy
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple, Union

from repro.adversary.constructions import Lemma1Construction, no1_liveness_attack
from repro.analysis.reporting import format_results_map, format_table
from repro.campaign.planner import CampaignPlan, plan_campaign
from repro.campaign.report import render_report
from repro.campaign.runner import backend_summary, campaign_status, run_campaign
from repro.campaign.spec import CampaignError, campaign_from_file
from repro.campaign.store import (
    ResultStore,
    SharedResultStore,
    StoreError,
    compact_store,
    store_kind,
)
from repro.core.skno import SKnOSimulator
from repro.core.verification import verify_simulation
from repro.engine.backends import (
    BACKEND_CHOICES,
    BackendError,
    BackendUnavailableError,
    ENGINE_BACKENDS,
    get_backend,
)
from repro.engine.convergence import run_until_stable
from repro.engine.engine import SimulationEngine
from repro.engine.experiment import JOBS_BACKENDS, repeat_experiment
from repro.engine.transport import (
    RESULT_TRANSPORTS,
    TransportError,
    shm_unavailable_reason,
)
from repro.interaction.adapters import one_way_as_two_way
from repro.interaction.hierarchy import HIERARCHY_EDGES, topological_order
from repro.interaction.models import MODELS_BY_NAME, get_model
from repro.lint.cli import add_lint_arguments, command_lint
from repro.obs import (
    JsonlSink,
    MetricsRecorder,
    MultiRecorder,
    ProgressReporter,
    Recorder,
    SinkError,
    read_sink,
    recording,
    summarize_records,
)
from repro.protocols.catalog import CATALOG, get_protocol
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.registry import (
    ADVERSARIES,
    ENTRY_POINT_ERRORS,
    PREDICATES,
    SCHEDULERS,
    SIMULATORS,
    ExperimentSpec,
    build_simulator,
    default_initial_configuration,
    resolve_backend,
    stable_output_predicate,
)
from repro.protocols.state import Configuration

SIMULATOR_CHOICES = ("none", "skno", "sid", "known-n")


def _experiment_spec(args, protocol_kwargs) -> ExperimentSpec:
    """The registry spec for ``repro run``'s arguments (both run paths)."""
    return ExperimentSpec(
        protocol=args.protocol,
        protocol_kwargs=protocol_kwargs,
        population=args.population,
        model=args.model,
        simulator=args.simulator,
        omission_bound=args.omission_bound,
        omissions=args.omissions,
        adversary=args.adversary,
        ones=args.ones,
        predicate="stable-output",
        scheduler=args.scheduler,
        chunk_size=args.chunk_size,
        backend=args.engine_backend,
    )


def _resolve_cli_backend(args, protocol_kwargs) -> str:
    """Pin ``--engine-backend auto`` for this run, announcing the choice.

    Resolution happens against the run's actual trace policy, so what is
    probed is what will execute; concrete backends pass through silently.
    """
    if args.engine_backend != "auto":
        return args.engine_backend
    spec = _experiment_spec(args, protocol_kwargs)
    try:
        resolution = resolve_backend(spec, trace_policy=args.trace_policy)
    except (BackendError, KeyError, TypeError, ValueError) as error:
        raise SystemExit(f"--engine-backend auto: {error}")
    line = f"engine backend: auto -> {resolution.backend}"
    if resolution.reason:
        line += f" ({resolution.reason})"
    print(line)
    return resolution.backend


@contextmanager
def _observability(args) -> Iterator[None]:
    """Activate the recorder stack a command's flags ask for.

    Telemetry is strictly sidecar output: ``--metrics PATH`` streams the
    JSONL event sink (plus a folded summary on close) to its own file,
    ``--progress`` redraws a live line on *stderr* — stdout (tables,
    reports) and the result store are never touched, so command output is
    byte-identical with observability on or off.
    """
    recorders: List[Recorder] = []
    if getattr(args, "metrics", None):
        recorders.append(MetricsRecorder(sink=JsonlSink(args.metrics)))
    if getattr(args, "progress", False):
        recorders.append(ProgressReporter())
    if not recorders:
        yield
        return
    stack = recorders[0] if len(recorders) == 1 else MultiRecorder(recorders)
    with recording(stack):
        yield


def _command_run(args) -> int:
    with _observability(args):
        return _run_command(args)


def _run_command(args) -> int:
    protocol_kwargs = {}
    if args.protocol == "threshold" and args.threshold is not None:
        protocol_kwargs["threshold"] = args.threshold
    protocol = get_protocol(args.protocol, **protocol_kwargs)
    model = get_model(args.model)
    try:
        initial_projected = default_initial_configuration(
            protocol, args.population, ones=args.ones)
    except KeyError as error:
        # KeyError repr-quotes str(error); unwrap to keep the message clean.
        raise SystemExit(error.args[0])
    simulator = build_simulator(
        args.simulator, protocol, args.population, args.omission_bound, args.model)

    if args.simulator == "none" and model.name != "TW":
        raise SystemExit(
            "running a two-way protocol without a simulator requires --model TW; "
            "pick --simulator skno/sid/known-n for weaker models")
    if args.omissions > 0 and not model.allows_omissions:
        raise SystemExit(f"model {model.name} does not admit omissions")
    if args.runs < 1:
        raise SystemExit("--runs must be at least 1")
    if args.jobs < 1:
        raise SystemExit("--jobs must be at least 1")
    if args.run_chunk < 1:
        raise SystemExit("--run-chunk must be at least 1")
    if args.chunk_size is not None and args.chunk_size < 1:
        raise SystemExit("--chunk-size must be at least 1")
    _check_explicit_shm_transport(args.result_transport, args.backend)

    if args.runs > 1:
        return _run_repeated(args, protocol, model, simulator, protocol_kwargs)

    config = simulator.initial_configuration(initial_projected)
    predicate = stable_output_predicate(simulator, protocol, initial_projected)

    adversary = None
    if args.omissions > 0:
        adversary = ADVERSARIES[args.adversary](model, args.omissions, seed=args.seed)

    scheduler = SCHEDULERS[args.scheduler](args.population, seed=args.seed)
    engine_backend = _resolve_cli_backend(args, protocol_kwargs)
    engine = SimulationEngine(
        simulator, model, scheduler, adversary=adversary,
        backend=engine_backend)
    try:
        outcome = run_until_stable(engine, config, predicate, max_steps=args.max_steps,
                                   stability_window=args.stability_window,
                                   trace_policy=args.trace_policy,
                                   ring_size=args.ring_size,
                                   chunk_size=args.chunk_size)
    except BackendError as error:
        raise SystemExit(f"--engine-backend {args.engine_backend}: {error}")

    report = None
    if args.trace_policy == "full":
        report = verify_simulation(simulator, outcome.trace)

    rows = [
        ["protocol", protocol.name],
        ["model", model.name],
        ["simulator", simulator.name],
        ["population", args.population],
        ["converged", outcome.converged],
        ["interactions to stabilise", outcome.steps_to_convergence],
        ["interactions executed", outcome.steps_executed],
        ["omissions", outcome.omissions],
        ["simulated pairs", report.matched_pairs if report else "-"],
        ["verification", ("OK" if report.ok else "VIOLATION") if report
         else f"skipped ({args.trace_policy} trace)"],
    ]
    print(format_table(["quantity", "value"], rows))
    if report and report.errors:
        print()
        for error in report.errors[:5]:
            print("  !", error)
    if args.trace_policy == "ring" and not outcome.converged and outcome.last_steps:
        _print_ring_dump(outcome.last_steps)
    verified = report.ok if report else True
    return 0 if (outcome.converged and verified) else 1


def _print_ring_dump(last_steps, run_label: str = "run") -> None:
    """Crash-dump the trailing window kept by the ``ring`` trace policy."""
    print()
    print(f"{run_label} did not converge — last {len(last_steps)} interactions "
          "(ring trace policy crash dump):")
    rows = [
        [step.index, str(step.interaction),
         f"{step.starter_pre!r} -> {step.starter_post!r}",
         f"{step.reactor_pre!r} -> {step.reactor_post!r}"]
        for step in last_steps
    ]
    print(format_table(["step", "interaction", "starter", "reactor"], rows))


def _check_explicit_shm_transport(result_transport: str,
                                  jobs_backend: str) -> None:
    """Validate ``--result-transport shm`` up front, before any work runs.

    Explicit shm is strict by contract: it needs the process fan-out
    backend and a usable shared-memory subsystem, and the error must name
    the fallback flag.  Checking here (rather than letting
    ``repeat_experiment`` raise mid-campaign) keeps transport
    misconfiguration a CLI error, never a per-cell error verdict.
    """
    if result_transport != "shm":
        return
    if jobs_backend != "process":
        raise SystemExit(
            "--result-transport shm crosses process boundaries; combine it "
            "with --backend process (or use --result-transport auto)")
    reason = shm_unavailable_reason()
    if reason is not None:
        raise SystemExit(
            f"--result-transport shm: shared memory unavailable ({reason}); "
            "rerun with --result-transport pickle")


def _run_repeated(args, protocol, model, simulator, protocol_kwargs) -> int:
    """``repro run --runs N [--jobs J] [--backend B]``: the batch-experiment path.

    The experiment is described by a picklable registry spec, so the thread
    and process backends execute byte-identical runs and merge the same way.
    """
    spec = _experiment_spec(args, protocol_kwargs)
    if spec.backend == "auto":
        # Resolve (and announce) here rather than inside repeat_experiment
        # so the user sees which backend won and why before the runs start.
        spec = dataclasses.replace(
            spec, backend=_resolve_cli_backend(args, protocol_kwargs))

    validate = None
    if args.trace_policy == "full":
        def validate(outcome) -> Optional[str]:
            report = verify_simulation(simulator, outcome.trace)
            if not report.ok:
                return f"simulation verification: {report.errors[0]}" if report.errors \
                    else "simulation verification violation"
            return None

    try:
        result = repeat_experiment(
            spec=spec,
            runs=args.runs,
            max_steps=args.max_steps,
            stability_window=args.stability_window,
            base_seed=args.seed,
            validate=validate,
            jobs=args.jobs,
            jobs_backend=args.backend,
            trace_policy=args.trace_policy,
            ring_size=args.ring_size,
            run_chunk=args.run_chunk,
            result_transport=args.result_transport,
        )
    except BackendError as error:
        raise SystemExit(f"--engine-backend {args.engine_backend}: {error}")
    except TransportError as error:
        raise SystemExit(str(error))

    mean = result.mean_convergence_steps
    median = result.median_convergence_steps
    rows = [
        ["protocol", protocol.name],
        ["model", model.name],
        ["simulator", simulator.name],
        ["population", args.population],
        ["runs", result.runs],
        ["jobs", args.jobs],
        ["backend", args.backend],
        ["successes", f"{result.successes}/{result.runs}"],
        ["success rate", f"{result.success_rate:.2f}"],
        ["mean interactions to stabilise", f"{mean:.0f}" if mean is not None else "-"],
        ["median interactions to stabilise", f"{median:.0f}" if median is not None else "-"],
        ["max interactions to stabilise", result.max_convergence_steps
         if result.max_convergence_steps is not None else "-"],
        ["verification", "per-run" if validate else f"skipped ({args.trace_policy} trace)"],
    ]
    print(format_table(["quantity", "value"], rows))
    if result.failures:
        print()
        for failure in result.failures[:5]:
            print("  !", failure)
    if args.trace_policy == "ring":
        for run_index, last_steps in result.failure_dumps:
            _print_ring_dump(last_steps, run_label=f"run {run_index}")
    return 0 if result.all_succeeded else 1


def _command_attack(args) -> int:
    protocol = PairingProtocol()
    if args.kind == "lemma1":
        simulator = one_way_as_two_way(
            SKnOSimulator(protocol, omission_bound=args.omission_bound))
        construction = Lemma1Construction(simulator, get_model("T3"), q0="p", q1="c")
        result = construction.execute()
        rows = [
            ["target simulator", f"SKnO(o={args.omission_bound}) via T3"],
            ["FTT", result.ftt],
            ["population", result.population],
            ["omissions used", result.omissions_used],
            ["critical transitions", result.q1_to_q1_prime_transitions],
            ["safety bound (producers)", result.safety_bound],
            ["safety violated", result.safety_violated],
        ]
        print(format_table(["quantity", "value"], rows))
        return 0 if result.safety_violated else 1

    simulator = SKnOSimulator(protocol, omission_bound=1)
    program = one_way_as_two_way(simulator) if args.model.upper() == "T1" else simulator
    result = no1_liveness_attack(
        program, args.model, target_state="cs", expected_committed=1,
        initial_p_configuration=Configuration(["p", "c"]), safety_bound=1,
        max_steps=args.max_steps, seed=args.seed)
    print(result.summary())
    return 0 if (result.liveness_violated or result.safety_violated) else 1


def _default_store_path(spec_path: str) -> str:
    """Store path derived from the spec path: ``<spec stem>.results.jsonl``."""
    stem, _ = os.path.splitext(spec_path)
    return stem + ".results.jsonl"


def _load_campaign(args) -> Tuple[CampaignPlan, str]:
    """Parse the campaign spec, expand the plan, resolve the store path.

    The engine backend layering (every action, so cell ids stay consistent
    between run/status/resume/report): an explicit ``--engine-backend``
    flag overrides the spec's ``base.backend``; otherwise the spec value
    applies; otherwise campaigns default to ``auto`` — the planner then
    pins each cell to the fastest backend that compiles, before hashing.
    """
    try:
        campaign = campaign_from_file(args.spec)
        engine_backend = getattr(args, "engine_backend", None)
        if engine_backend is not None:
            campaign.base["backend"] = engine_backend
        else:
            campaign.base.setdefault("backend", "auto")
        plan = plan_campaign(campaign)
    except CampaignError as error:
        raise SystemExit(f"campaign spec {args.spec}: {error}")
    store_path = args.store if args.store else _default_store_path(args.spec)
    return plan, store_path


def _open_campaign_store(args, plan: CampaignPlan,
                         store_path: str) -> Union[ResultStore,
                                                   SharedResultStore]:
    """Open (or create, for ``run``) the right store kind for the action.

    Existing stores are opened as whatever their manifest says they are —
    ``--shared`` only decides what ``run`` *creates* (and rejects an
    exclusive store when sharing was asked for).  status/report opens are
    strictly read-only; only run/resume may repair torn tails or
    re-initialise a torn manifest.
    """
    campaign = plan.campaign
    writable = args.action in ("run", "resume")
    if not os.path.exists(store_path):
        if args.action != "run":
            raise SystemExit(
                f"no result store at {store_path!r}; run the campaign first")
        if args.shared:
            return SharedResultStore.create(store_path)
        return ResultStore.create(store_path, campaign.name, plan.campaign_hash)
    kind = store_kind(store_path)
    if args.shared and kind != "shared":
        raise SystemExit(
            f"store {store_path!r} is an exclusive single-campaign store, "
            "not a shared pool; drop --shared or pick another --store path")
    if kind == "shared":
        return SharedResultStore.open(store_path, recover=writable)
    return ResultStore.open(store_path, campaign.name, plan.campaign_hash,
                            recover=writable)


def _command_campaign_metrics(path: str) -> int:
    """``repro campaign metrics PATH``: summarise a recorded metrics sink."""
    try:
        records = read_sink(path)
    except OSError as error:
        raise SystemExit(f"cannot read metrics sink {path!r}: {error}")
    except SinkError as error:
        raise SystemExit(str(error))
    print(summarize_records(records), end="")
    return 0


def _command_campaign(args) -> int:
    if args.action == "metrics":
        # The positional argument is the sink path here, not a campaign
        # spec — summarising telemetry needs no plan and no store.
        return _command_campaign_metrics(args.spec)
    with _observability(args):
        return _campaign_action(args)


def _campaign_action(args) -> int:
    if args.action in ("run", "resume"):
        if args.max_cells is not None and args.max_cells < 1:
            raise SystemExit("--max-cells must be at least 1")
        if args.cell_jobs < 1:
            raise SystemExit("--cell-jobs must be at least 1")
        if args.jobs < 1:
            raise SystemExit("--jobs must be at least 1")
        if args.run_chunk < 1:
            raise SystemExit("--run-chunk must be at least 1")
        _check_explicit_shm_transport(args.result_transport, args.backend)
    plan, store_path = _load_campaign(args)
    campaign = plan.campaign

    if args.action == "compact":
        try:
            stats = compact_store(store_path)
        except StoreError as error:
            raise SystemExit(str(error))
        print(f"compacted {store_path} ({stats.kind}): {stats.summary()}")
        return 0

    try:
        store = _open_campaign_store(args, plan, store_path)
    except StoreError as error:
        raise SystemExit(str(error))

    if args.action in ("run", "resume"):
        if isinstance(store, SharedResultStore):
            # Bind this campaign's membership to the pool up front so
            # orphan accounting (and compaction) knows the cell set even
            # if this invocation is interrupted.
            store.register_campaign(
                campaign.name, plan.campaign_hash, plan.cell_ids())
        if not args.quiet:
            for line in backend_summary(plan):
                print(line)
        progress = None if args.quiet else print
        status = run_campaign(
            plan, store,
            jobs=args.jobs,
            jobs_backend=args.backend,
            run_chunk=args.run_chunk,
            max_cells=args.max_cells,
            progress=progress,
            cell_jobs=args.cell_jobs,
            result_transport=args.result_transport,
        )
        print(f"campaign {campaign.name}: {status.summary()}  (store: {store_path})")
        if status.pending:
            print(f"resume with: repro campaign resume {args.spec} "
                  f"--store {store_path}")
        if status.keyboard_interrupt:
            # A signal interruption is not a completed run (a --max-cells
            # cap is): use the conventional SIGINT exit code so wrappers
            # don't treat the partial sweep as success.
            return 130
        return 1 if status.errors else 0

    status = campaign_status(plan, store)
    if args.action == "status":
        rows = [
            ["campaign", campaign.name],
            ["grid hash", plan.campaign_hash],
            ["store", store_path],
            ["cells", plan.total],
            ["done", status.done],
            ["n/a", status.na],
            ["failed", status.errors],
            ["pending", status.pending],
        ]
        print(format_table(["quantity", "value"], rows))
        return 0 if status.complete and not status.errors else 1

    # action == "report"
    print(render_report(plan, store.cell_records), end="")
    return 0 if status.complete and not status.errors else 1


def _array_support() -> Optional[dict]:
    """Which registered keys compile for the array backend, per registry.

    ``None`` when numpy is unavailable.  Each key is probed with a small
    representative experiment (the epidemic protocol, model I3 where an
    omissive model is needed), so simulator/predicate verdicts read "can
    compile", not "compiles for every protocol" — e.g. ``stable-output``
    compiles wherever it reduces to a state-count predicate.
    """
    try:
        get_backend("array")
    except (BackendUnavailableError, BackendError):
        return None
    from repro.core.trivial import TrivialTwoWaySimulator
    from repro.engine.backends.array_backend import (
        ARRAY_COMPILED_ADVERSARIES,
        compile_program,
        probe_compile,
    )
    from repro.interaction.models import get_model as _get_model
    from repro.scheduling.array_draws import compile_scheduler

    probe_errors = (BackendError, KeyError, TypeError, ValueError)
    support: dict = {}

    def probed(keys, check) -> List[str]:
        compilable = []
        for key in keys:
            try:
                if check(key):
                    compilable.append(key)
            except probe_errors:
                continue
        return compilable

    epidemic = get_protocol("epidemic")
    omissive = _get_model("I3")
    trivial_tw = _get_model("TW")

    def protocol_compiles(name: str) -> bool:
        compile_program(TrivialTwoWaySimulator(get_protocol(name)), trivial_tw)
        return True

    def simulator_compiles(name: str) -> bool:
        compile_program(build_simulator(name, epidemic, 8, 1, "I3"), omissive)
        return True

    trivial_epidemic = TrivialTwoWaySimulator(epidemic)
    epidemic_initial = default_initial_configuration(epidemic, 8)

    def predicate_compiles(name: str) -> bool:
        predicate = PREDICATES[name](trivial_epidemic, epidemic, epidemic_initial)
        return probe_compile(
            trivial_epidemic, trivial_tw, predicate=predicate, population=8) is None

    def scheduler_compiles(name: str) -> bool:
        compile_scheduler(SCHEDULERS[name](4, seed=0))
        return True

    def adversary_compiles(name: str) -> bool:
        return type(ADVERSARIES[name](omissive, 1, seed=0)) \
            in ARRAY_COMPILED_ADVERSARIES

    support["protocols"] = probed(sorted(CATALOG), protocol_compiles)
    support["simulators"] = probed(sorted(SIMULATORS), simulator_compiles)
    support["predicates"] = probed(sorted(PREDICATES), predicate_compiles)
    support["schedulers"] = probed(sorted(SCHEDULERS), scheduler_compiles)
    support["adversaries"] = probed(sorted(ADVERSARIES), adversary_compiles)
    return support


def _command_list(_args) -> int:
    sections = [
        ("protocols", sorted(CATALOG)),
        ("simulators", sorted(SIMULATORS)),
        ("predicates", sorted(PREDICATES)),
        ("schedulers", sorted(SCHEDULERS)),
        ("adversaries", sorted(ADVERSARIES)),
        ("engine backends", list(ENGINE_BACKENDS)),
        ("fan-out backends", list(JOBS_BACKENDS)),
    ]
    support = _array_support()
    rows = []
    for kind, names in sections:
        if support is None or kind not in support:
            compilable = "-"
        else:
            supported = set(support[kind])
            compilable = ", ".join(
                name for name in names if name in supported) or "(none)"
        rows.append([kind, ", ".join(names), compilable])
    print(format_table(["registry", "registered keys", "array-compilable"], rows))
    if support is None:
        print()
        print("array-compilable column unavailable: numpy is not installed "
              "(pip install 'repro[fast]')")
    if ENTRY_POINT_ERRORS:
        print()
        print("entry points that FAILED to load (repro.protocols group):")
        for name in sorted(ENTRY_POINT_ERRORS):
            print(f"  ! {name}: {ENTRY_POINT_ERRORS[name]}")
    else:
        print()
        print("all repro.protocols entry points loaded cleanly")
    return 0


def _command_map(_args) -> int:
    print(format_results_map())
    print()
    print("YES = simulation possible, NO = impossible, ? = open, TW = trivially possible;")
    print("'*' marks cells re-checked empirically by benchmarks/bench_figure_4_results_map.py")
    return 0


def _command_hierarchy(_args) -> int:
    rows = [[f"{source} -> {destination}", justification]
            for source, destination, justification in HIERARCHY_EDGES]
    print(format_table(["edge (weaker -> stronger)", "justification"], rows))
    print()
    print("weakest to strongest:", " -> ".join(topological_order()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant simulation of population protocols (ICDCS 2017 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run a protocol, optionally through a simulator")
    run_parser.add_argument("--protocol", choices=sorted(CATALOG), default="exact-majority")
    run_parser.add_argument("--model", choices=sorted(MODELS_BY_NAME), default="TW")
    run_parser.add_argument("--simulator", choices=SIMULATOR_CHOICES, default="none")
    run_parser.add_argument("--population", "-n", type=int, default=10)
    run_parser.add_argument("--omission-bound", type=int, default=0,
                            help="bound o announced to SKnO")
    run_parser.add_argument("--omissions", type=int, default=0,
                            help="omissions actually injected by the adversary")
    run_parser.add_argument("--adversary", choices=sorted(ADVERSARIES), default="bounded",
                            help="adversary class injecting the omissions (active "
                                 "when --omissions > 0): bounded (hard budget of "
                                 "--omissions), no1 (single pinned omission), uo "
                                 "(injects forever), no (stops after its active "
                                 "window)")
    run_parser.add_argument("--ones", type=int, default=None,
                            help="number of agents with input 1 (threshold/OR/AND/parity)")
    run_parser.add_argument("--threshold", type=int, default=None)
    run_parser.add_argument("--max-steps", type=int, default=300_000)
    run_parser.add_argument("--stability-window", type=int, default=300)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--runs", type=int, default=1,
                            help="repeat the run with seeds seed..seed+runs-1 "
                                 "and report aggregate convergence statistics")
    run_parser.add_argument("--jobs", type=int, default=1,
                            help="workers for --runs > 1 (deterministic merge)")
    run_parser.add_argument("--backend", choices=JOBS_BACKENDS, default="thread",
                            help="fan-out backend for --runs > 1: thread shares live "
                                 "objects (GIL-bound); process ships picklable registry "
                                 "keys + seeds to a ProcessPoolExecutor")
    run_parser.add_argument("--run-chunk", type=int, default=1,
                            help="consecutive seeds shipped per executor task for "
                                 "--runs > 1; larger chunks amortize the per-run "
                                 "pickling that dominates short runs on --backend "
                                 "process (results are identical for every value)")
    run_parser.add_argument("--result-transport", choices=RESULT_TRANSPORTS,
                            default="auto",
                            help="how --backend process workers ship results back: "
                                 "pickle (one pickled list per batch), shm "
                                 "(zero-copy shared-memory arenas with a pickle "
                                 "overflow lane for traces and ring dumps; "
                                 "requires --backend process), or auto (default: "
                                 "shm whenever the fan-out crosses processes, the "
                                 "trace policy is counts-only and shared memory "
                                 "is usable, else pickle); results are identical "
                                 "for every choice")
    run_parser.add_argument("--chunk-size", type=int, default=None,
                            help="scheduled draws per batched scheduler call inside "
                                 "the engine (default 256; 1 reproduces the per-step "
                                 "loop; results are identical for every value)")
    run_parser.add_argument("--scheduler", choices=sorted(SCHEDULERS), default="random",
                            help="interaction scheduler: random (uniform pairs, the "
                                 "default), round-robin (deterministic lexicographic "
                                 "cycle), or a graph family restricting interactions "
                                 "to a topology (ring-graph, star-graph, "
                                 "complete-graph)")
    run_parser.add_argument("--engine-backend", choices=BACKEND_CHOICES, default="python",
                            help="execution backend: python (default, supports "
                                 "everything), array (columnar numpy engine for "
                                 "huge populations; needs the repro[fast] extra, "
                                 "a finite-state protocol, counts-only or ring "
                                 "traces, and catalog adversaries/schedulers — "
                                 "anything else fails with an explanation), or "
                                 "auto (probe what compiles and pick the fastest "
                                 "backend, announcing the choice)")
    run_parser.add_argument("--trace-policy", choices=("full", "counts-only", "ring"),
                            default="full",
                            help="full: record every step and verify the simulation; "
                                 "counts-only: fast path, skips verification; "
                                 "ring: keep only the last steps and crash-dump them "
                                 "on non-convergence")
    run_parser.add_argument("--ring-size", type=int, default=64,
                            help="trailing window size for --trace-policy ring")
    run_parser.add_argument("--metrics", metavar="PATH", default=None,
                            help="stream engine/fan-out telemetry to a JSONL "
                                 "event sink at PATH (sidecar file; results "
                                 "and printed tables are byte-identical with "
                                 "or without it); summarise later with "
                                 "'repro campaign metrics PATH'")
    run_parser.set_defaults(handler=_command_run)

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="declarative, resumable parameter-sweep campaigns over a result store")
    campaign_parser.add_argument(
        "action",
        choices=("run", "status", "resume", "report", "compact", "metrics"),
        help="run: execute pending cells (creates the store); resume: continue "
             "an interrupted campaign (requires the store); status: progress "
             "summary; report: render the verdict grids and per-cell table; "
             "compact: rewrite the store in canonical order, dropping "
             "superseded and orphaned records (reports are byte-identical "
             "before and after); metrics: summarise a telemetry sink "
             "recorded by --metrics (the positional argument is the sink "
             "path, not a spec)")
    campaign_parser.add_argument(
        "spec", help="path to the campaign spec (JSON); for the metrics "
                     "action, the path of the recorded sink")
    campaign_parser.add_argument(
        "--store", default=None,
        help="result store path (default: <spec stem>.results.jsonl next to the spec)")
    campaign_parser.add_argument(
        "--shared", action="store_true",
        help="use a shared multi-campaign cell pool at the store path: "
             "campaigns with overlapping grids reuse each other's cells "
             "instead of recomputing (auto-detected for existing stores)")
    campaign_parser.add_argument(
        "--cell-jobs", type=int, default=1,
        help="independent cells to keep in flight (cell-level worker pool; "
             "composes with the per-cell --jobs fan-out)")
    campaign_parser.add_argument("--jobs", type=int, default=1,
                                 help="workers for each cell's per-seed fan-out")
    campaign_parser.add_argument("--backend", choices=JOBS_BACKENDS, default="thread",
                                 help="fan-out backend for each cell's runs")
    campaign_parser.add_argument("--run-chunk", type=int, default=1,
                                 help="consecutive seeds per executor task "
                                      "(see repro run --run-chunk)")
    campaign_parser.add_argument("--result-transport", choices=RESULT_TRANSPORTS,
                                 default="auto",
                                 help="result transport of each cell's process "
                                      "fan-out (see repro run "
                                      "--result-transport; campaign cells run "
                                      "counts-only, so auto picks shm whenever "
                                      "--backend process is given and shared "
                                      "memory is usable); records and reports "
                                      "are byte-identical for every choice")
    campaign_parser.add_argument(
        "--engine-backend", choices=BACKEND_CHOICES, default=None,
        help="engine backend for every cell, overriding the spec's "
             "base.backend (default: the spec's value, else auto — each "
             "cell is pinned to the fastest backend that compiles at plan "
             "time, before cell hashing, so content addresses and resumes "
             "stay stable); pass the same flag to status/report so they "
             "address the same cells")
    campaign_parser.add_argument("--max-cells", type=int, default=None,
                                 help="stop after executing this many new cells "
                                      "(deterministic interruption; resume later)")
    campaign_parser.add_argument("--quiet", action="store_true",
                                 help="suppress per-cell progress lines")
    campaign_parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="stream campaign/engine telemetry to a JSONL event sink at "
             "PATH (sidecar file; the store and the rendered report are "
             "byte-identical with or without it); summarise later with "
             "'repro campaign metrics PATH'")
    campaign_parser.add_argument(
        "--progress", action="store_true",
        help="redraw a live progress line on stderr while the campaign "
             "runs (cells done/total, cells/s, ETA, per-backend tally)")
    campaign_parser.set_defaults(handler=_command_campaign)

    list_parser = subparsers.add_parser(
        "list", help="list registered protocols, simulators, predicates, "
                     "schedulers, adversaries and backends")
    list_parser.set_defaults(handler=_command_list)

    lint_parser = subparsers.add_parser(
        "lint", help="run the determinism-contracts static-analysis pass "
                     "(RPL001-RPL007) over the package sources")
    add_lint_arguments(lint_parser)
    lint_parser.set_defaults(handler=command_lint)

    attack_parser = subparsers.add_parser("attack", help="execute an impossibility construction")
    attack_parser.add_argument("kind", choices=("lemma1", "no1"))
    attack_parser.add_argument("--omission-bound", type=int, default=1,
                               help="lemma1: the bound announced to the victim SKnO")
    attack_parser.add_argument("--model", default="I1",
                               help="no1: the weak model to attack (I1, I2 or T1)")
    attack_parser.add_argument("--max-steps", type=int, default=30_000)
    attack_parser.add_argument("--seed", type=int, default=0)
    attack_parser.set_defaults(handler=_command_attack)

    map_parser = subparsers.add_parser("map", help="print the Figure 4 map of results")
    map_parser.set_defaults(handler=_command_map)

    hierarchy_parser = subparsers.add_parser("hierarchy", help="print the Figure 1 hierarchy")
    hierarchy_parser.set_defaults(handler=_command_hierarchy)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
