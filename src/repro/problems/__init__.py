"""Problem specifications with machine-checkable correctness conditions.

A *problem* specifies what a protocol is supposed to achieve, independently
of how it is computed: safety conditions (invariants over every reachable
configuration), liveness conditions (what the population must eventually
stabilise to), and — for the Pairing problem of Definition 5 —
irrevocability (certain states, once entered, are never left).

Problem checkers operate on *simulated* configurations, i.e. on projected
traces, so the same checker validates a protocol run directly on ``TW`` and
the same protocol run through any simulator on a weak model.  The Pairing
problem is the centrepiece: it is the counterexample used by every
impossibility result in Section 3, and its safety bound is what the Lemma 1
attack violates.
"""

from repro.problems.base import Problem, ProblemReport
from repro.problems.pairing import PairingProblem
from repro.problems.leader_election import LeaderElectionProblem
from repro.problems.majority import MajorityProblem
from repro.problems.threshold import ThresholdProblem

__all__ = [
    "Problem",
    "ProblemReport",
    "PairingProblem",
    "LeaderElectionProblem",
    "MajorityProblem",
    "ThresholdProblem",
]
