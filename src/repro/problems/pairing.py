"""The Pairing Problem (Definition 5).

The population is split into consumers (state ``c``) and producers (state
``p``); the protocol must eventually move exactly ``min(|Ac|, |Ap|)``
consumers into the irrevocable critical state ``cs``, and must never have
more than ``|Ap|`` agents in ``cs`` at any time.

The problem is solvable by a trivial two-way protocol
(:class:`repro.protocols.PairingProtocol`) but — this is the content of
Section 3 — no simulator can preserve its safety in the presence of
omissions, which is why every impossibility benchmark in this repository
checks executions against this specification.
"""

from __future__ import annotations

from typing import List

from repro.problems.base import Problem
from repro.protocols.catalog.pairing import BOTTOM, CONSUMER, CRITICAL, PRODUCER
from repro.protocols.state import Configuration


class PairingProblem(Problem):
    """Safety / liveness / irrevocability checker for the Pairing problem."""

    name = "pairing"

    def __init__(self, consumers: int, producers: int) -> None:
        if consumers < 0 or producers < 0:
            raise ValueError("population counts must be non-negative")
        self.consumers = consumers
        self.producers = producers

    # -- Definition 5, Safety: |cs| <= |Ap| at all times --------------------------------------------

    def check_configuration_safety(self, configuration: Configuration) -> List[str]:
        violations = []
        critical = configuration.count(CRITICAL)
        if critical > self.producers:
            violations.append(
                f"{critical} agents in critical state {CRITICAL!r} but only "
                f"{self.producers} producers exist"
            )
        # Only consumers may ever become critical; the number of agents that are
        # (or have been) on the consumer side is exactly ``self.consumers``.
        consumer_side = configuration.count(CONSUMER) + critical
        if consumer_side > self.consumers:
            violations.append(
                f"{consumer_side} agents on the consumer side but only "
                f"{self.consumers} consumers exist"
            )
        return violations

    # -- Definition 5, Irrevocability -------------------------------------------------------------------

    def irrevocable_states(self) -> frozenset:
        return frozenset({CRITICAL})

    # -- Definition 5, Liveness: eventually |cs| = min(|Ac|, |Ap|), stably ---------------------------------

    @property
    def expected_critical(self) -> int:
        """The stable number of critical agents required by liveness."""
        return min(self.consumers, self.producers)

    def is_live(self, configuration: Configuration) -> bool:
        return configuration.count(CRITICAL) == self.expected_critical

    # -- helpers -----------------------------------------------------------------------------------------------

    def initial_configuration(self) -> Configuration:
        """The canonical initial configuration (consumers first, then producers)."""
        return Configuration([CONSUMER] * self.consumers + [PRODUCER] * self.producers)

    @staticmethod
    def critical_count(configuration: Configuration) -> int:
        return configuration.count(CRITICAL)

    @staticmethod
    def spent_producers(configuration: Configuration) -> int:
        return configuration.count(BOTTOM)
