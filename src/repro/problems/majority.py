"""Exact majority as a problem specification."""

from __future__ import annotations

from typing import List, Optional

from repro.problems.base import Problem
from repro.protocols.catalog.majority import ExactMajorityProtocol
from repro.protocols.state import Configuration


class MajorityProblem(Problem):
    """Eventually every agent outputs the initial strict majority opinion."""

    name = "exact-majority"

    def __init__(self, count_a: int, count_b: int, protocol: Optional[ExactMajorityProtocol] = None) -> None:
        if count_a < 0 or count_b < 0:
            raise ValueError("opinion counts must be non-negative")
        if count_a == count_b:
            raise ValueError(
                "the exact-majority problem is specified for strict majorities; "
                "ties have no required output"
            )
        self.count_a = count_a
        self.count_b = count_b
        self.protocol = protocol or ExactMajorityProtocol()
        self.expected = self.protocol.majority_opinion(count_a, count_b)

    def check_configuration_safety(self, configuration: Configuration) -> List[str]:
        violations = []
        if len(configuration) != self.count_a + self.count_b:
            violations.append(
                f"population size changed: expected {self.count_a + self.count_b}, "
                f"found {len(configuration)}"
            )
        return violations

    def is_live(self, configuration: Configuration) -> bool:
        return all(self.protocol.output(state) == self.expected for state in configuration)

    def initial_configuration(self) -> Configuration:
        return self.protocol.initial_configuration(self.count_a, self.count_b)
