"""Leader election as a problem specification."""

from __future__ import annotations

from typing import List

from repro.problems.base import Problem
from repro.protocols.catalog.leader_election import FOLLOWER, LEADER
from repro.protocols.state import Configuration


class LeaderElectionProblem(Problem):
    """Eventually exactly one leader; the leader count never increases.

    The non-increase of the leader count is a safety property of the
    *protocol* (a follower can never become a leader again), checked here as
    an invariant: no configuration may contain more leaders than the initial
    population of candidates.
    """

    name = "leader-election"

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("population must contain at least one agent")
        self.n = n

    def check_configuration_safety(self, configuration: Configuration) -> List[str]:
        violations = []
        leaders = configuration.count(LEADER)
        if leaders > self.n:
            violations.append(f"{leaders} leaders but the population has {self.n} agents")
        if leaders == 0:
            violations.append("no leader remains (leader count can never reach zero)")
        return violations

    def is_live(self, configuration: Configuration) -> bool:
        return configuration.count(LEADER) == 1

    def initial_configuration(self) -> Configuration:
        return Configuration([LEADER] * self.n)
