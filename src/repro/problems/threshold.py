"""Threshold counting ("flock of birds") as a problem specification."""

from __future__ import annotations

from typing import List, Optional

from repro.problems.base import Problem
from repro.protocols.catalog.counting import ThresholdProtocol
from repro.protocols.state import Configuration


class ThresholdProblem(Problem):
    """Eventually every agent outputs whether at least ``threshold`` inputs were 1."""

    name = "threshold"

    def __init__(
        self,
        ones: int,
        zeros: int,
        threshold: int = 3,
        protocol: Optional[ThresholdProtocol] = None,
    ) -> None:
        if ones < 0 or zeros < 0:
            raise ValueError("input counts must be non-negative")
        self.ones = ones
        self.zeros = zeros
        self.protocol = protocol or ThresholdProtocol(threshold=threshold)
        self.expected = self.protocol.expected_output(ones)

    def check_configuration_safety(self, configuration: Configuration) -> List[str]:
        violations: List[str] = []
        # The total weight held by the population can never exceed the number
        # of 1-inputs (weight is conserved up to saturation at the threshold).
        total_weight = sum(weight for weight, _ in configuration.states)
        if total_weight > self.ones:
            violations.append(
                f"total weight {total_weight} exceeds the number of 1-inputs {self.ones}"
            )
        if not self.expected:
            # When the threshold is unreachable, no agent may ever claim it was reached.
            claimed = configuration.count_if(lambda state: self.protocol.output(state))
            if claimed > 0:
                violations.append(
                    f"{claimed} agents claim the threshold was reached, but only "
                    f"{self.ones} < {self.protocol.threshold} inputs are 1"
                )
        return violations

    def is_live(self, configuration: Configuration) -> bool:
        return all(self.protocol.output(state) == self.expected for state in configuration)

    def initial_configuration(self) -> Configuration:
        return self.protocol.initial_configuration(self.ones, self.zeros)
