"""Base classes for problem specifications."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from repro.protocols.state import Configuration, State


@dataclass
class ProblemReport:
    """Result of checking a problem specification against an execution.

    ``safety_violations`` and ``irrevocability_violations`` list
    human-readable descriptions of every violated invariant (empty lists mean
    the execution prefix is clean); ``live`` says whether the final
    configuration satisfies the liveness target (which a too-short prefix may
    legitimately fail to reach — callers decide how to treat that).
    """

    problem_name: str
    configurations_checked: int
    safety_violations: List[str] = field(default_factory=list)
    irrevocability_violations: List[str] = field(default_factory=list)
    live: bool = False

    @property
    def safe(self) -> bool:
        """No safety or irrevocability violation was observed."""
        return not self.safety_violations and not self.irrevocability_violations

    @property
    def ok(self) -> bool:
        """Safe and live."""
        return self.safe and self.live

    def summary(self) -> str:
        return (
            f"{self.problem_name}: configs={self.configurations_checked} "
            f"safety-violations={len(self.safety_violations)} "
            f"irrevocability-violations={len(self.irrevocability_violations)} "
            f"live={self.live}"
        )


class Problem:
    """A problem specification over (projected) configurations.

    Concrete problems override :meth:`check_configuration_safety`,
    :meth:`is_live` and, when relevant, :meth:`irrevocable_states`.
    """

    name: str = "problem"

    # -- per-configuration safety -----------------------------------------------------------------

    def check_configuration_safety(self, configuration: Configuration) -> List[str]:
        """Return a list of safety violations present in one configuration."""
        return []

    # -- liveness ------------------------------------------------------------------------------------

    def is_live(self, configuration: Configuration) -> bool:
        """Whether a configuration satisfies the problem's stabilisation target."""
        raise NotImplementedError

    # -- irrevocability ----------------------------------------------------------------------------------

    def irrevocable_states(self) -> frozenset:
        """States that, once entered by an agent, must never be left."""
        return frozenset()

    # -- trace-level checking ---------------------------------------------------------------------------

    def check(self, configurations: Iterable[Configuration]) -> ProblemReport:
        """Check safety and irrevocability over a configuration sequence.

        The sequence is typically ``trace.projected_configurations(sim.project)``
        for a simulator trace, or ``trace.configurations()`` for a plain
        two-way execution.  Liveness is evaluated on the last configuration.
        """
        irrevocable = self.irrevocable_states()
        report = ProblemReport(problem_name=self.name, configurations_checked=0)
        previous: Optional[Configuration] = None
        last: Optional[Configuration] = None

        for configuration in configurations:
            report.configurations_checked += 1
            report.safety_violations.extend(
                f"config {report.configurations_checked - 1}: {violation}"
                for violation in self.check_configuration_safety(configuration)
            )
            if previous is not None and irrevocable:
                for agent, (before, after) in enumerate(
                    zip(previous.states, configuration.states)
                ):
                    if before in irrevocable and after != before:
                        report.irrevocability_violations.append(
                            f"config {report.configurations_checked - 1}: agent {agent} "
                            f"left irrevocable state {before!r} for {after!r}"
                        )
            previous = configuration
            last = configuration

        if last is not None:
            report.live = self.is_live(last)
        return report
