"""Fairness diagnostics for finite execution prefixes.

Global fairness (Section 2.1) is a property of *infinite* executions, so it
cannot be checked on the finite prefixes an experiment actually runs.  What
can be measured — and what this module measures — are the statistics that
make a finite prefix "look like" the prefix of a globally fair run:

* every ordered pair of agents interacts (pair coverage);
* interaction counts per ordered pair are reasonably balanced;
* no agent is starved.

These diagnostics are used by the engine's experiment reports and by tests
that want to assert a scheduler behaves fairly enough for stabilisation
results to be meaningful.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from repro.scheduling.runs import Interaction, Run


@dataclass
class CoverageReport:
    """Summary statistics of how evenly a run covered the population."""

    n: int
    steps: int
    ordered_pairs_covered: int
    ordered_pairs_total: int
    min_pair_count: int
    max_pair_count: int
    min_agent_count: int
    max_agent_count: int
    omissions: int

    @property
    def full_pair_coverage(self) -> bool:
        """Whether every ordered pair of distinct agents interacted at least once."""
        return self.ordered_pairs_covered == self.ordered_pairs_total

    @property
    def pair_coverage_ratio(self) -> float:
        """Fraction of ordered pairs that interacted at least once."""
        if self.ordered_pairs_total == 0:
            return 1.0
        return self.ordered_pairs_covered / self.ordered_pairs_total

    @property
    def no_agent_starved(self) -> bool:
        """Whether every agent participated in at least one interaction."""
        return self.min_agent_count > 0

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"n={self.n} steps={self.steps} "
            f"pairs={self.ordered_pairs_covered}/{self.ordered_pairs_total} "
            f"pair-count=[{self.min_pair_count},{self.max_pair_count}] "
            f"agent-count=[{self.min_agent_count},{self.max_agent_count}] "
            f"omissions={self.omissions}"
        )


def interaction_counts(run: Iterable[Interaction]) -> Counter:
    """Count of each ordered (starter, reactor) pair in the run."""
    return Counter(interaction.pair for interaction in run)


def pair_coverage(run: Iterable[Interaction], n: int) -> float:
    """Fraction of the ``n*(n-1)`` ordered pairs that appear in the run."""
    if n < 2:
        return 1.0
    covered = {interaction.pair for interaction in run}
    return len(covered) / (n * (n - 1))


def fairness_report(run: Run, n: int) -> CoverageReport:
    """Compute coverage diagnostics for a finite run over ``n`` agents."""
    counts = interaction_counts(run)
    agent_counts = Counter()
    omissions = 0
    for interaction in run:
        agent_counts[interaction.starter] += 1
        agent_counts[interaction.reactor] += 1
        if interaction.is_omissive:
            omissions += 1
    total_pairs = n * (n - 1) if n >= 2 else 0
    pair_values = [counts.get((s, r), 0) for s in range(n) for r in range(n) if s != r]
    agent_values = [agent_counts.get(a, 0) for a in range(n)]
    return CoverageReport(
        n=n,
        steps=len(run),
        ordered_pairs_covered=sum(1 for v in pair_values if v > 0),
        ordered_pairs_total=total_pairs,
        min_pair_count=min(pair_values) if pair_values else 0,
        max_pair_count=max(pair_values) if pair_values else 0,
        min_agent_count=min(agent_values) if agent_values else 0,
        max_agent_count=max(agent_values) if agent_values else 0,
        omissions=omissions,
    )
