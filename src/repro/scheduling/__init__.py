"""Scheduling substrate: interactions, runs, schedulers and fairness diagnostics.

The PP model abstracts the passive mobility of the agents into an infinite
sequence of pairwise interactions (a *run*).  This subpackage provides the
datatypes for interactions and runs, several schedulers that generate them
(uniform random — globally fair with probability 1 —, scripted, weighted),
and statistical diagnostics approximating the global-fairness condition on
the finite prefixes that an experiment actually executes.
"""

from repro.scheduling.runs import Interaction, Run
from repro.scheduling.scheduler import (
    Scheduler,
    RandomScheduler,
    ScriptedScheduler,
    WeightedPairScheduler,
    RoundRobinScheduler,
    SchedulerExhausted,
)
from repro.scheduling.graph_scheduler import (
    GraphScheduler,
    InteractionGraphError,
    complete_graph_scheduler,
    ring_scheduler,
    star_scheduler,
    random_graph_scheduler,
    validate_interaction_graph,
)
from repro.scheduling.fairness import (
    CoverageReport,
    pair_coverage,
    interaction_counts,
    fairness_report,
)

__all__ = [
    "Interaction",
    "Run",
    "Scheduler",
    "RandomScheduler",
    "ScriptedScheduler",
    "WeightedPairScheduler",
    "RoundRobinScheduler",
    "SchedulerExhausted",
    "GraphScheduler",
    "InteractionGraphError",
    "complete_graph_scheduler",
    "ring_scheduler",
    "star_scheduler",
    "random_graph_scheduler",
    "validate_interaction_graph",
    "CoverageReport",
    "pair_coverage",
    "interaction_counts",
    "fairness_report",
]
