"""Interactions and runs (Section 2.1).

An interaction is an ordered pair ``(starter, reactor)`` of distinct agent
indices, optionally carrying an omission specification (Section 2.3).  A run
is a (conceptually infinite, here finite-prefix) sequence of interactions.
Runs are the common currency between schedulers, adversaries (which rewrite
runs by inserting omissive interactions) and the engine (which executes
them).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.interaction.omissions import NO_OMISSION, Omission


@dataclass(frozen=True)
class Interaction:
    """One ordered interaction ``(starter, reactor)`` with its omission status.

    Note: the batched draw of
    :meth:`repro.scheduling.scheduler.RandomScheduler.next_interactions`
    constructs instances by writing these three fields directly into
    ``__dict__`` (the scheduler guarantees the invariants checked by
    ``__post_init__``); keep the field set and storage (no ``__slots__``)
    in sync with that fast path.
    """

    starter: int
    reactor: int
    omission: Omission = NO_OMISSION

    def __post_init__(self) -> None:
        if self.starter < 0 or self.reactor < 0:
            raise ValueError("agent indices must be non-negative")
        if self.starter == self.reactor:
            raise ValueError("an agent cannot interact with itself")

    @property
    def is_omissive(self) -> bool:
        """Whether this interaction carries an omission."""
        return self.omission.is_omissive

    @property
    def pair(self) -> Tuple[int, int]:
        """The ordered (starter, reactor) pair."""
        return self.starter, self.reactor

    @property
    def unordered_pair(self) -> Tuple[int, int]:
        """The unordered pair of participants (smaller index first)."""
        return (self.starter, self.reactor) if self.starter < self.reactor else (self.reactor, self.starter)

    def involves(self, agent: int) -> bool:
        """Whether ``agent`` participates in this interaction."""
        return agent in (self.starter, self.reactor)

    def with_omission(self, omission: Omission) -> "Interaction":
        """A copy of this interaction with a different omission specification."""
        return replace(self, omission=omission)

    def relabel(self, mapping: dict) -> "Interaction":
        """A copy with agent indices remapped through ``mapping`` (identity if absent)."""
        return Interaction(
            starter=mapping.get(self.starter, self.starter),
            reactor=mapping.get(self.reactor, self.reactor),
            omission=self.omission,
        )

    def __str__(self) -> str:
        suffix = f" [{self.omission}]" if self.is_omissive else ""
        return f"({self.starter} -> {self.reactor}){suffix}"


class Run:
    """A finite prefix of a run: a sequence of interactions.

    Runs are immutable; all "editing" operations return new runs.  The
    adversaries of :mod:`repro.adversary` are functions from runs to runs
    (Definitions 1 and 2), and the scripted constructions of Lemma 1 /
    Theorem 3.2 are built directly as :class:`Run` values.
    """

    __slots__ = ("_interactions",)

    def __init__(self, interactions: Iterable[Interaction] = ()) -> None:
        self._interactions: Tuple[Interaction, ...] = tuple(interactions)

    # -- container protocol --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._interactions)

    def __iter__(self) -> Iterator[Interaction]:
        return iter(self._interactions)

    def __getitem__(self, index) -> "Run | Interaction":
        if isinstance(index, slice):
            return Run(self._interactions[index])
        return self._interactions[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, Run):
            return self._interactions == other._interactions
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._interactions)

    def __repr__(self) -> str:
        return f"Run(len={len(self)}, omissions={self.omission_count()})"

    # -- derived data ---------------------------------------------------------------------

    @property
    def interactions(self) -> Tuple[Interaction, ...]:
        """The underlying tuple of interactions."""
        return self._interactions

    def omission_count(self) -> int:
        """``O(I)``: the number of omissive interactions in the run."""
        return sum(1 for interaction in self._interactions if interaction.is_omissive)

    def agents(self) -> Tuple[int, ...]:
        """Sorted tuple of agent indices appearing in the run."""
        seen = set()
        for interaction in self._interactions:
            seen.add(interaction.starter)
            seen.add(interaction.reactor)
        return tuple(sorted(seen))

    def restricted_to(self, agents: Iterable[int]) -> "Run":
        """The sub-run of interactions whose participants are both in ``agents``."""
        allowed = set(agents)
        return Run(
            interaction
            for interaction in self._interactions
            if interaction.starter in allowed and interaction.reactor in allowed
        )

    def interactions_involving(self, agent: int) -> "Run":
        """The sub-run of interactions in which ``agent`` participates."""
        return Run(i for i in self._interactions if i.involves(agent))

    # -- editing ---------------------------------------------------------------------------

    def append(self, interaction: Interaction) -> "Run":
        """A new run with ``interaction`` appended."""
        return Run(self._interactions + (interaction,))

    def extend(self, interactions: Iterable[Interaction]) -> "Run":
        """A new run with ``interactions`` appended."""
        return Run(self._interactions + tuple(interactions))

    def concatenate(self, other: "Run") -> "Run":
        """The concatenation of two runs."""
        return Run(self._interactions + other._interactions)

    def insert(self, index: int, interactions: Iterable[Interaction]) -> "Run":
        """A new run with ``interactions`` inserted before position ``index``."""
        prefix = self._interactions[:index]
        suffix = self._interactions[index:]
        return Run(prefix + tuple(interactions) + suffix)

    def relabel(self, mapping: dict) -> "Run":
        """A new run with every interaction's agent indices remapped."""
        return Run(interaction.relabel(mapping) for interaction in self._interactions)

    def without_omissions(self) -> "Run":
        """A copy of the run with all omission flags cleared."""
        return Run(
            interaction.with_omission(NO_OMISSION) if interaction.is_omissive else interaction
            for interaction in self._interactions
        )

    # -- constructors -----------------------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[int, int]]) -> "Run":
        """Build a run from plain ``(starter, reactor)`` pairs (no omissions)."""
        return cls(Interaction(s, r) for s, r in pairs)
