"""Numpy draw kernels: whole-chunk scheduler draws for the array engine.

The batched protocol of :mod:`repro.scheduling.scheduler` amortizes Python
overhead but still builds one :class:`~repro.scheduling.runs.Interaction`
object per step.  The array engine (:mod:`repro.engine.backends.array_backend`)
never materialises interactions at all: it consumes *draw kernels*, which
return whole chunks of (starter, reactor) index arrays with one
``Generator.integers`` call per component.

Equivalence contract (the array side of the backend contract):

* **Own stream.** Kernels draw from a seeded ``PCG64`` generator, not from
  the scheduler's ``random.Random``.  Bitwise parity with the per-step
  scheduler stream is explicitly out of scope; the kernel draws from the
  *same distribution* (uniform ordered pairs, uniform oriented graph edges,
  the lexicographic round-robin cycle), which the equivalence suite checks
  distributionally.
* **Chunk-size independence.** Each drawn component (starter, reactor,
  edge, orientation) consumes its own generator, spawned deterministically
  from one ``SeedSequence(seed)``.  Because a bounded ``integers`` draw
  consumes its stream per element — independent of batch size — the
  concatenation of any chunking of draws is identical: a kernel's stream
  depends only on ``(seed, number of pairs drawn so far)``.
* **Determinism.** Same seed, same draw positions, same pairs; a ``None``
  seed draws fresh OS entropy, exactly like ``random.Random(None)``.

Deterministic schedulers (round-robin) are pure functions of the step index
and need no RNG; they are the anchor for the *exact* (not distributional)
backend-agreement tests.

:func:`compile_scheduler` maps a live scheduler instance to its kernel and
raises :class:`~repro.engine.backends.base.BackendCompileError` for families
without one (scripted and weighted schedulers, and any subclass that may
have overridden the draw law).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.engine.backends.base import BackendCompileError
from repro.scheduling.graph_scheduler import GraphScheduler
from repro.scheduling.scheduler import RandomScheduler, RoundRobinScheduler, Scheduler


def _spawn_generators(seed: Optional[int], count: int) -> "list[np.random.Generator]":
    """``count`` independent PCG64 generators, deterministic in ``seed``.

    Spawning children of one ``SeedSequence`` keeps the per-component
    streams independent of each other *and* of chunk boundaries — the
    chunk-size-independence leg of the kernel contract.
    """
    children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.Generator(np.random.PCG64(child)) for child in children]


class ArrayDrawKernel:
    """Base class: produces chunks of (starter, reactor) index arrays."""

    def draw(self, step: int, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """The pairs for steps ``step .. step + k - 1`` as two int arrays.

        ``step`` is the number of pairs drawn so far; random kernels ignore
        it (their position is carried by their generators), deterministic
        kernels are pure functions of it.  Kernels never exhaust.
        """
        raise NotImplementedError


class UniformPairKernel(ArrayDrawKernel):
    """Uniform ordered pairs of distinct agents (the ``RandomScheduler`` law).

    Starter uniform over ``0..n-1``; reactor uniform over the remaining
    ``n - 1`` slots, shifted past the starter — the same two-draw scheme as
    :meth:`RandomScheduler.next_interaction`, one ``integers`` call per
    component per chunk.
    """

    def __init__(self, n: int, seed: Optional[int]) -> None:
        if n < 2:
            raise ValueError("a population needs at least two agents to interact")
        self.n = n
        self._starter_rng, self._reactor_rng = _spawn_generators(seed, 2)

    def draw(self, step: int, k: int) -> Tuple[np.ndarray, np.ndarray]:
        starters = self._starter_rng.integers(0, self.n, size=k)
        reactors = self._reactor_rng.integers(0, self.n - 1, size=k)
        reactors += reactors >= starters
        return starters, reactors


class GraphPairKernel(ArrayDrawKernel):
    """Uniform edge, then uniform orientation (the ``GraphScheduler`` law)."""

    def __init__(self, edges, seed: Optional[int]) -> None:
        if not edges:
            raise ValueError("an interaction graph needs at least one edge")
        edge_array = np.asarray(edges, dtype=np.int64)
        self._first = edge_array[:, 0].copy()
        self._second = edge_array[:, 1].copy()
        self._edge_rng, self._orientation_rng = _spawn_generators(seed, 2)

    def draw(self, step: int, k: int) -> Tuple[np.ndarray, np.ndarray]:
        edges = self._edge_rng.integers(0, len(self._first), size=k)
        forward = self._orientation_rng.integers(0, 2, size=k).astype(bool)
        first = self._first[edges]
        second = self._second[edges]
        starters = np.where(forward, first, second)
        reactors = np.where(forward, second, first)
        return starters, reactors


class RoundRobinKernel(ArrayDrawKernel):
    """The lexicographic ordered-pair cycle, as a pure function of the step.

    Deterministic and identical to :class:`RoundRobinScheduler` pair for
    pair, so runs through this kernel are the *exact*-agreement anchor of
    the backend equivalence suite.
    """

    def __init__(self, pairs) -> None:
        pair_array = np.asarray(pairs, dtype=np.int64)
        self._starters = pair_array[:, 0].copy()
        self._seconds = pair_array[:, 1].copy()

    def draw(self, step: int, k: int) -> Tuple[np.ndarray, np.ndarray]:
        indices = np.arange(step, step + k, dtype=np.int64) % len(self._starters)
        return self._starters[indices], self._seconds[indices]


def compile_scheduler(scheduler: Scheduler) -> ArrayDrawKernel:
    """Compile a live scheduler into its numpy draw kernel.

    Dispatch is on the *exact* class: a subclass may have overridden the
    draw law, and silently compiling the base-class kernel would change the
    experiment.  Supported families: :class:`RandomScheduler`,
    :class:`GraphScheduler` (ring/star/complete/random-graph constructors
    all return it) and :class:`RoundRobinScheduler`.
    """
    kind = type(scheduler)
    if kind is RandomScheduler:
        return UniformPairKernel(scheduler.n, scheduler.seed)
    if kind is GraphScheduler:
        return GraphPairKernel(scheduler._edges, scheduler.seed)
    if kind is RoundRobinScheduler:
        return RoundRobinKernel(scheduler._pairs)
    raise BackendCompileError(
        f"scheduler {kind.__name__} has no array draw kernel; the array "
        "backend supports RandomScheduler, the GraphScheduler family and "
        "RoundRobinScheduler (run it with --engine-backend python otherwise)"
    )
