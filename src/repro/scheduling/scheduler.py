"""Schedulers: generators of interaction sequences.

The PP model leaves the interaction sequence to an external entity subject
only to the global-fairness condition.  The workhorse here is the uniform
random scheduler, which selects each ordered pair of distinct agents with
equal probability at every step; its infinite runs are globally fair with
probability 1, which is the standard way fair runs are realised in practice
(cf. reference [13] of the paper on probabilistic schedulers).

A scripted scheduler replays a fixed :class:`~repro.scheduling.runs.Run`
(used for the Lemma 1 / Theorem 3.2 attack constructions and for the FTT
search), a weighted scheduler biases pair selection (useful to stress
fairness-sensitive behaviour), and a round-robin scheduler provides a
deterministic fair-ish baseline.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.scheduling.runs import Interaction, Run


class SchedulerExhausted(Exception):
    """Raised by finite schedulers (e.g. scripted) when no interactions remain."""


class Scheduler:
    """Base class: produces the next ordered pair of distinct agent indices."""

    def next_interaction(self, step: int) -> Interaction:
        """Return the interaction to execute at ``step`` (0-based)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Reset any internal state so the scheduler can be reused from step 0."""

    def __iter__(self):
        step = 0
        while True:
            try:
                yield self.next_interaction(step)
            except SchedulerExhausted:
                return
            step += 1


class RandomScheduler(Scheduler):
    """Uniform random scheduler over ordered pairs of distinct agents.

    Globally fair with probability 1 over infinite runs: every finite
    interaction pattern enabled infinitely often occurs infinitely often
    almost surely.
    """

    def __init__(self, n: int, seed: Optional[int] = None):
        if n < 2:
            raise ValueError("a population needs at least two agents to interact")
        self.n = n
        self._seed = seed
        self._rng = random.Random(seed)
        # The scheduler draw is the hottest non-protocol code on the
        # counts-only fast path; binding randrange once avoids two
        # attribute lookups per interaction.  The draw order (starter,
        # then reactor over n-1 slots) is part of the seeded-stream
        # contract relied on by experiments, so it must not change.
        self._randrange = self._rng.randrange

    def next_interaction(self, step: int) -> Interaction:
        randrange = self._randrange
        starter = randrange(self.n)
        reactor = randrange(self.n - 1)
        if reactor >= starter:
            reactor += 1
        return Interaction(starter, reactor)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._randrange = self._rng.randrange


class ScriptedScheduler(Scheduler):
    """Replays a fixed run, then raises :class:`SchedulerExhausted`.

    Optionally falls back to another scheduler once the script is exhausted
    (used to extend a scripted attack prefix into a fair continuation, as
    Definition 4 requires of simulator executions).
    """

    def __init__(self, run: Run, continuation: Optional[Scheduler] = None):
        self.run = run
        self.continuation = continuation

    def next_interaction(self, step: int) -> Interaction:
        if step < len(self.run):
            return self.run[step]
        if self.continuation is not None:
            return self.continuation.next_interaction(step - len(self.run))
        raise SchedulerExhausted(
            f"scripted run of length {len(self.run)} exhausted at step {step}"
        )

    def reset(self) -> None:
        if self.continuation is not None:
            self.continuation.reset()


class WeightedPairScheduler(Scheduler):
    """Random scheduler with per-ordered-pair weights.

    Pairs with zero weight never occur; all pairs present in ``weights``
    must involve distinct agents.  This scheduler is *not* fair in general
    and is used to stress protocols and simulators under skewed interaction
    patterns.
    """

    def __init__(
        self,
        n: int,
        weights: Dict[Tuple[int, int], float],
        seed: Optional[int] = None,
    ):
        if n < 2:
            raise ValueError("a population needs at least two agents to interact")
        self.n = n
        cleaned = {}
        for (starter, reactor), weight in weights.items():
            if starter == reactor:
                raise ValueError("weights must be over pairs of distinct agents")
            if not (0 <= starter < n and 0 <= reactor < n):
                raise ValueError("pair indices out of range")
            if weight < 0:
                raise ValueError("weights must be non-negative")
            if weight > 0:
                cleaned[(starter, reactor)] = float(weight)
        if not cleaned:
            raise ValueError("at least one pair must have positive weight")
        self._pairs = list(cleaned.keys())
        self._weights = [cleaned[p] for p in self._pairs]
        self._seed = seed
        self._rng = random.Random(seed)

    def next_interaction(self, step: int) -> Interaction:
        starter, reactor = self._rng.choices(self._pairs, weights=self._weights, k=1)[0]
        return Interaction(starter, reactor)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class RoundRobinScheduler(Scheduler):
    """Deterministic scheduler cycling through all ordered pairs in lexicographic order.

    Every ordered pair occurs once every ``n*(n-1)`` steps, so every finite
    execution prefix of length at least ``n*(n-1)`` covers all pairs; this is
    a convenient deterministic stand-in for fairness in unit tests.
    """

    def __init__(self, n: int):
        if n < 2:
            raise ValueError("a population needs at least two agents to interact")
        self.n = n
        self._pairs = [
            (starter, reactor)
            for starter in range(n)
            for reactor in range(n)
            if starter != reactor
        ]

    def next_interaction(self, step: int) -> Interaction:
        starter, reactor = self._pairs[step % len(self._pairs)]
        return Interaction(starter, reactor)
