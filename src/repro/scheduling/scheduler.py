"""Schedulers: generators of interaction sequences.

The PP model leaves the interaction sequence to an external entity subject
only to the global-fairness condition.  The workhorse here is the uniform
random scheduler, which selects each ordered pair of distinct agents with
equal probability at every step; its infinite runs are globally fair with
probability 1, which is the standard way fair runs are realised in practice
(cf. reference [13] of the paper on probabilistic schedulers).

A scripted scheduler replays a fixed :class:`~repro.scheduling.runs.Run`
(used for the Lemma 1 / Theorem 3.2 attack constructions and for the FTT
search), a weighted scheduler biases pair selection (useful to stress
fairness-sensitive behaviour), and a round-robin scheduler provides a
deterministic fair-ish baseline.

Batched draws
-------------

Every scheduler supports two draw protocols:

* :meth:`Scheduler.next_interaction` — the per-step protocol: one
  interaction per call, :class:`SchedulerExhausted` when none remain.
* :meth:`Scheduler.next_interactions` — the batched protocol: up to ``k``
  interactions per call.  The batched stream is **bitwise identical** to the
  per-step stream for the same scheduler state (same seed, same position):
  drawing ``[next_interaction(step + i) for i in range(k)]`` and
  ``next_interactions(step, k)`` yields the same interactions and leaves the
  scheduler in the same state.  This contract is pinned by
  ``tests/test_batched_scheduling.py`` and is what allows the engine's
  fast path (:mod:`repro.engine.fastpath`) to consume draws in chunks
  without changing any seeded experiment.

Exhaustion semantics under batching: a batch *shorter than requested* means
the scheduler ran out mid-batch — the same terminal condition that
:meth:`next_interaction` reports by raising :class:`SchedulerExhausted`.
Exhaustion is terminal: once a scheduler has produced a short batch (or
raised), every later draw yields nothing.  Infinite schedulers (random,
weighted, round-robin, graph) always return exactly ``k`` interactions.

The base class provides a per-step fallback implementation of
:meth:`~Scheduler.next_interactions`, so subclasses only override it when a
vectorized draw is profitable (:class:`RandomScheduler`,
:class:`WeightedPairScheduler`,
:class:`~repro.scheduling.graph_scheduler.GraphScheduler`).
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.interaction.omissions import NO_OMISSION
from repro.scheduling.runs import Interaction, Run


class SchedulerExhausted(Exception):
    """Raised by finite schedulers (e.g. scripted) when no interactions remain.

    Exhaustion is terminal: after raising, a scheduler never produces
    further interactions (until :meth:`Scheduler.reset`).  Under the batched
    protocol the same condition surfaces as a batch shorter than requested
    instead of an exception.
    """


class Scheduler:
    """Base class: produces ordered pairs of distinct agent indices.

    Subclasses must implement :meth:`next_interaction`; they may override
    :meth:`next_interactions` with a vectorized draw provided the batched
    stream stays bitwise identical to the per-step stream.
    """

    @property
    def seed(self) -> Optional[int]:
        """The seed a randomized scheduler was built with.

        ``None`` for OS-entropy seeding *and* for deterministic schedulers
        (which have no ``_seed`` at all).  Exposed on the base class so the
        array engine can seed its own ``PCG64`` draw stream from the same
        value for any kernel-compilable family
        (:mod:`repro.scheduling.array_draws`).
        """
        return getattr(self, "_seed", None)

    def next_interaction(self, step: int) -> Interaction:
        """Return the interaction to execute at ``step`` (0-based).

        Raises :class:`SchedulerExhausted` when the schedule is over; the
        condition is terminal (see the class docstring).
        """
        raise NotImplementedError

    def next_interactions(self, step: int, k: int) -> List[Interaction]:
        """Return the interactions for steps ``step .. step + k - 1``.

        This is the batched counterpart of :meth:`next_interaction` and
        draws from the same stream: for any split of a run into batches, the
        concatenated batches equal the per-step sequence exactly (same RNG
        consumption, same interactions).

        A result shorter than ``k`` (possibly empty) signals exhaustion at
        step ``step + len(result)`` — the batched equivalent of
        :class:`SchedulerExhausted` — and is terminal.  ``k <= 0`` returns
        an empty list without touching the scheduler.

        The default implementation is the per-step fallback: it calls
        :meth:`next_interaction` ``k`` times and truncates at exhaustion,
        which is correct (if not vectorized) for every scheduler.
        """
        if k <= 0:
            return []
        out: List[Interaction] = []
        append = out.append
        next_interaction = self.next_interaction
        for offset in range(k):
            try:
                append(next_interaction(step + offset))
            except SchedulerExhausted:
                break
        return out

    def reset(self) -> None:
        """Reset any internal state so the scheduler can be reused from step 0."""

    def _drop_array_kernel(self) -> None:
        """Forget the cached array-engine draw kernel, if one was compiled.

        The array backend caches its draw kernel — which carries the
        stream position — on the scheduler instance; resettable randomized
        schedulers call this from :meth:`reset` so that, like the
        ``random.Random`` stream, the kernel stream replays from the seed
        after a reset.
        """
        self.__dict__.pop("_array_kernel", None)

    def __iter__(self) -> Iterator[Interaction]:
        """Iterate the per-step stream until exhaustion (forever when infinite)."""
        step = 0
        while True:
            try:
                yield self.next_interaction(step)
            except SchedulerExhausted:
                return
            step += 1


class RandomScheduler(Scheduler):
    """Uniform random scheduler over ordered pairs of distinct agents.

    Globally fair with probability 1 over infinite runs: every finite
    interaction pattern enabled infinitely often occurs infinitely often
    almost surely.

    The per-step draw order (starter via ``randrange(n)``, then reactor over
    the remaining ``n - 1`` slots) is part of the seeded-stream contract
    relied on by experiments and must not change.  The batched draw
    (:meth:`next_interactions`) consumes the identical RNG stream and is the
    fast path of the engine's counts-only loop.
    """

    def __init__(self, n: int, seed: Optional[int] = None) -> None:
        if n < 2:
            raise ValueError("a population needs at least two agents to interact")
        self.n = n
        self._seed = seed
        self._rng = random.Random(seed)
        # Accept-reject bit widths for the inlined batched draw (below):
        # randrange(m) draws getrandbits(m.bit_length()) until < m.
        self._starter_bits = n.bit_length()
        self._reactor_bits = (n - 1).bit_length()
        self._bind_rng()

    def _bind_rng(self) -> None:
        # The scheduler draw is the hottest non-protocol code on the
        # counts-only fast path; binding the RNG methods once avoids two
        # attribute lookups per interaction.
        self._randrange = self._rng.randrange
        self._getrandbits = self._rng.getrandbits

    def next_interaction(self, step: int) -> Interaction:
        """Draw one uniform ordered pair; never exhausts."""
        randrange = self._randrange
        starter = randrange(self.n)
        reactor = randrange(self.n - 1)
        if reactor >= starter:
            reactor += 1
        return Interaction(starter, reactor)

    def next_interactions(self, step: int, k: int) -> List[Interaction]:
        """Draw ``k`` uniform ordered pairs in one call (never short).

        Bitwise identical to ``k`` calls of :meth:`next_interaction`: the
        loop below inlines ``Random.randrange``'s accept-reject sampling
        (``getrandbits(bits)`` redrawn while ``>= bound``), so it consumes
        exactly the same underlying bit stream — pinned by the batched
        equivalence tests, which fail loudly if a Python release ever
        changes ``randrange``'s draw discipline.

        Interactions are built by writing the (already validated: distinct,
        in-range) fields straight into a fresh instance, bypassing the
        frozen-dataclass ``__setattr__`` machinery that dominates per-draw
        cost on the hot path.
        """
        if k <= 0:
            return []
        getrandbits = self._getrandbits
        n = self.n
        starter_bits = self._starter_bits
        reactor_bound = n - 1
        reactor_bits = self._reactor_bits
        new = Interaction.__new__
        no_omission = NO_OMISSION
        out: List[Interaction] = []
        append = out.append
        for _ in range(k):
            r = getrandbits(starter_bits)
            while r >= n:
                r = getrandbits(starter_bits)
            starter = r
            r = getrandbits(reactor_bits)
            while r >= reactor_bound:
                r = getrandbits(reactor_bits)
            if r >= starter:
                r += 1
            interaction = new(Interaction)
            d = interaction.__dict__
            d["starter"] = starter
            d["reactor"] = r
            d["omission"] = no_omission
            append(interaction)
        return out

    def reset(self) -> None:
        """Restore the seeded stream to step 0."""
        self._rng = random.Random(self._seed)
        self._bind_rng()
        self._drop_array_kernel()


class ScriptedScheduler(Scheduler):
    """Replays a fixed run, then raises :class:`SchedulerExhausted`.

    Optionally falls back to another scheduler once the script is exhausted
    (used to extend a scripted attack prefix into a fair continuation, as
    Definition 4 requires of simulator executions).

    Batched draws use the inherited per-step fallback: a batch that crosses
    the script/continuation boundary (or the end of the script) is simply
    shorter or assembled step by step, with the documented exhaustion
    semantics.
    """

    def __init__(self, run: Run, continuation: Optional[Scheduler] = None) -> None:
        self.run = run
        self.continuation = continuation

    def next_interaction(self, step: int) -> Interaction:
        """Replay step ``step`` of the script, then delegate to the continuation."""
        if step < len(self.run):
            return self.run[step]
        if self.continuation is not None:
            return self.continuation.next_interaction(step - len(self.run))
        raise SchedulerExhausted(
            f"scripted run of length {len(self.run)} exhausted at step {step}"
        )

    def reset(self) -> None:
        if self.continuation is not None:
            self.continuation.reset()


class WeightedPairScheduler(Scheduler):
    """Random scheduler with per-ordered-pair weights.

    Pairs with zero weight never occur; all pairs present in ``weights``
    must involve distinct agents.  This scheduler is *not* fair in general
    and is used to stress protocols and simulators under skewed interaction
    patterns.
    """

    def __init__(
        self,
        n: int,
        weights: Dict[Tuple[int, int], float],
        seed: Optional[int] = None,
    ) -> None:
        if n < 2:
            raise ValueError("a population needs at least two agents to interact")
        self.n = n
        cleaned = {}
        for (starter, reactor), weight in weights.items():
            if starter == reactor:
                raise ValueError("weights must be over pairs of distinct agents")
            if not (0 <= starter < n and 0 <= reactor < n):
                raise ValueError("pair indices out of range")
            if weight < 0:
                raise ValueError("weights must be non-negative")
            if weight > 0:
                cleaned[(starter, reactor)] = float(weight)
        if not cleaned:
            raise ValueError("at least one pair must have positive weight")
        self._pairs = list(cleaned.keys())
        self._weights = [cleaned[p] for p in self._pairs]
        self._seed = seed
        self._rng = random.Random(seed)

    def next_interaction(self, step: int) -> Interaction:
        """Draw one pair with probability proportional to its weight; never exhausts."""
        starter, reactor = self._rng.choices(self._pairs, weights=self._weights, k=1)[0]
        return Interaction(starter, reactor)

    def next_interactions(self, step: int, k: int) -> List[Interaction]:
        """Draw ``k`` weighted pairs in one call (never short).

        ``random.choices`` consumes one ``random()`` per drawn element
        regardless of ``k``, so a single ``k``-element call is bitwise
        identical to ``k`` single-element calls while amortizing the O(W)
        cumulative-weight construction over the whole batch.
        """
        if k <= 0:
            return []
        pairs = self._rng.choices(self._pairs, weights=self._weights, k=k)
        return [Interaction(starter, reactor) for starter, reactor in pairs]

    def reset(self) -> None:
        """Restore the seeded stream to step 0."""
        self._rng = random.Random(self._seed)


class RoundRobinScheduler(Scheduler):
    """Deterministic scheduler cycling through all ordered pairs in lexicographic order.

    Every ordered pair occurs once every ``n*(n-1)`` steps, so every finite
    execution prefix of length at least ``n*(n-1)`` covers all pairs; this is
    a convenient deterministic stand-in for fairness in unit tests.

    Draws are a pure function of ``step``, so the inherited per-step batched
    fallback is already exact; it never exhausts.
    """

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError("a population needs at least two agents to interact")
        self.n = n
        self._pairs = [
            (starter, reactor)
            for starter in range(n)
            for reactor in range(n)
            if starter != reactor
        ]

    def next_interaction(self, step: int) -> Interaction:
        """Return the ``step``-th pair of the lexicographic cycle; never exhausts."""
        starter, reactor = self._pairs[step % len(self._pairs)]
        return Interaction(starter, reactor)
