"""Interaction-graph-restricted scheduling.

The basic PP model assumes a complete interaction graph: any two agents may
meet.  A standard refinement (already present in the original population
protocol papers and in the mediated/graph-restricted variants cited by the
paper) restricts interactions to the edges of an *interaction graph* ``G``:
only adjacent agents can ever meet.  Global fairness is then relative to the
schedules admissible on ``G``, and stabilisation results require ``G`` to be
connected.

This module provides:

* :class:`GraphScheduler` — a uniform random scheduler over the ordered pairs
  induced by a ``networkx`` graph (each undirected edge yields both
  orientations);
* :func:`complete_graph_scheduler`, :func:`ring_scheduler`,
  :func:`star_scheduler`, :func:`random_graph_scheduler` — convenience
  constructors for common topologies used in experiments;
* :func:`validate_interaction_graph` — the sanity checks (simple, connected,
  at least two nodes, nodes labelled 0..n-1) that every topology must pass
  before being used for a population of ``n`` agents.

The simulators of :mod:`repro.core` are topology-agnostic: they only see a
stream of interactions, so they run unchanged on restricted topologies —
which is useful for studying how much slower ``SKnO``'s token dissemination
or ``SID``'s pairing become on sparse graphs.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import networkx as nx

from repro.interaction.omissions import NO_OMISSION
from repro.scheduling.runs import Interaction
from repro.scheduling.scheduler import Scheduler


class InteractionGraphError(Exception):
    """Raised when an interaction graph is unusable for a population."""


def validate_interaction_graph(graph: nx.Graph, n: int) -> None:
    """Check that ``graph`` is a valid interaction graph for ``n`` agents.

    Requirements: exactly the nodes ``0 .. n-1``, no self-loops, at least one
    edge, and connectivity (otherwise agents in different components can
    never exchange information and no protocol can stabilise globally).
    """
    if n < 2:
        raise InteractionGraphError("a population needs at least two agents")
    expected_nodes = set(range(n))
    if set(graph.nodes) != expected_nodes:
        raise InteractionGraphError(
            f"interaction graph must have exactly the nodes 0..{n - 1}")
    if any(graph.has_edge(node, node) for node in graph.nodes):
        raise InteractionGraphError("interaction graph must not contain self-loops")
    if graph.number_of_edges() == 0:
        raise InteractionGraphError("interaction graph must contain at least one edge")
    if not nx.is_connected(graph):
        raise InteractionGraphError(
            "interaction graph must be connected for global stabilisation to be possible")


class GraphScheduler(Scheduler):
    """Uniform random scheduler over the ordered pairs of an interaction graph.

    Each step draws an edge uniformly at random and then an orientation
    uniformly at random, so every admissible ordered pair has the same
    probability; over infinite runs this is globally fair *relative to the
    graph* with probability 1.

    Batched draws (:meth:`next_interactions`) are vectorized and bitwise
    identical to the per-step stream; the scheduler never exhausts.
    """

    def __init__(self, graph: nx.Graph, seed: Optional[int] = None) -> None:
        n = graph.number_of_nodes()
        validate_interaction_graph(graph, n)
        self.graph = graph
        self.n = n
        self._edges: List[Tuple[int, int]] = [tuple(sorted(edge)) for edge in graph.edges]
        # Accept-reject bit width for the inlined batched draw:
        # Random.choice(seq) draws getrandbits(len(seq).bit_length()) until
        # the result indexes the sequence.
        self._edge_bits = len(self._edges).bit_length()
        self._seed = seed
        self._rng = random.Random(seed)
        self._bind_rng()

    def _bind_rng(self) -> None:
        self._getrandbits = self._rng.getrandbits
        self._random = self._rng.random

    def next_interaction(self, step: int) -> Interaction:
        first, second = self._rng.choice(self._edges)
        if self._rng.random() < 0.5:
            return Interaction(first, second)
        return Interaction(second, first)

    def next_interactions(self, step: int, k: int) -> List[Interaction]:
        """Draw ``k`` graph-admissible ordered pairs in one call (never short).

        Bitwise identical to ``k`` calls of :meth:`next_interaction`: the
        loop inlines ``Random.choice``'s accept-reject index sampling
        (``getrandbits(bits)`` redrawn while it overshoots the edge list)
        followed by the orientation coin, consuming exactly the per-step
        RNG stream — pinned by the batched equivalence tests.  Instances
        are built by writing the (already graph-validated) fields straight
        into ``Interaction.__dict__``, as the other vectorized schedulers
        do, bypassing the frozen-dataclass machinery on the hot path.
        """
        if k <= 0:
            return []
        getrandbits = self._getrandbits
        rng_random = self._random
        edges = self._edges
        edge_count = len(edges)
        edge_bits = self._edge_bits
        new = Interaction.__new__
        no_omission = NO_OMISSION
        out: List[Interaction] = []
        append = out.append
        for _ in range(k):
            r = getrandbits(edge_bits)
            while r >= edge_count:
                r = getrandbits(edge_bits)
            first, second = edges[r]
            if rng_random() < 0.5:
                starter, reactor = first, second
            else:
                starter, reactor = second, first
            interaction = new(Interaction)
            d = interaction.__dict__
            d["starter"] = starter
            d["reactor"] = reactor
            d["omission"] = no_omission
            append(interaction)
        return out

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._bind_rng()
        self._drop_array_kernel()

    def ordered_pairs(self) -> List[Tuple[int, int]]:
        """All ordered pairs this scheduler can ever produce."""
        pairs = []
        for first, second in self._edges:
            pairs.append((first, second))
            pairs.append((second, first))
        return sorted(pairs)


def complete_graph_scheduler(n: int, seed: Optional[int] = None) -> GraphScheduler:
    """The unrestricted case: every pair of agents may interact."""
    return GraphScheduler(nx.complete_graph(n), seed=seed)


def ring_scheduler(n: int, seed: Optional[int] = None) -> GraphScheduler:
    """Agents arranged on a cycle; each agent meets only its two neighbours."""
    return GraphScheduler(nx.cycle_graph(n), seed=seed)


def star_scheduler(n: int, seed: Optional[int] = None) -> GraphScheduler:
    """A hub-and-spoke topology: agent 0 is adjacent to everyone else."""
    return GraphScheduler(nx.star_graph(n - 1), seed=seed)


def random_graph_scheduler(
    n: int, edge_probability: float = 0.5, seed: Optional[int] = None,
    max_attempts: int = 100,
) -> GraphScheduler:
    """A connected Erdős–Rényi interaction graph.

    Graphs are redrawn (up to ``max_attempts`` times) until a connected one is
    found; a :class:`InteractionGraphError` is raised otherwise.
    """
    if not 0.0 < edge_probability <= 1.0:
        raise InteractionGraphError("edge_probability must lie in (0, 1]")
    rng = random.Random(seed)
    for attempt in range(max_attempts):
        graph = nx.gnp_random_graph(n, edge_probability, seed=rng.randrange(2**31))
        if graph.number_of_edges() > 0 and nx.is_connected(graph):
            return GraphScheduler(graph, seed=seed)
    raise InteractionGraphError(
        f"could not draw a connected graph on {n} nodes with p={edge_probability} "
        f"after {max_attempts} attempts")
