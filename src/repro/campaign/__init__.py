"""Declarative, resumable parameter-sweep experiment campaigns.

The paper's headline artifact is a *map of results*: a grid of verdicts
over (interaction model × assumption × adversary budget).  This package is
the layer that produces such maps at scale — it orchestrates the
primitives built by the lower layers (the registry's picklable
:class:`~repro.protocols.registry.ExperimentSpec`, the thread/process
fan-out of :func:`~repro.engine.experiment.repeat_experiment`, the
pluggable execution backends) across whole parameter grids, persists every
finished cell, and renders Figure-4-style reports.

Pipeline (one module each)::

    spec      CampaignSpec          declarative grid (pure dict / JSON file)
    planner   CampaignPlan          grid expanded into content-addressed cells
    store     ResultStore           append-only JSONL, atomic per-cell writes
              SharedResultStore     one cell pool shared by many campaigns
              compact_store         canonical rewrite, atomic via rename
    runner    run_campaign          serial cell walk through repeat_experiment
    executor  run_campaign_parallel cell-level worker pool (``--cell-jobs``)
    queue     CampaignQueue         prioritised multi-campaign scheduler
    report    render_report         fold the store into verdict grids + tables

Resumability is the design center: every planned cell has a stable
content-addressed id (a hash of the resolved experiment spec plus its
seed block), the store streams finished cells with atomic appends, and
cells are deterministic functions of their spec — so ``repro campaign
resume`` skips completed cells and an interrupted campaign finishes to a
report byte-identical to an uninterrupted run.  Under parallel execution
records append in completion order, so the pin is *fold-equivalence*:
every fold (status, report) consumes the record set keyed by cell id and
is identical across executors, pool widths and interrupt points.

See ``docs/campaigns.md`` for the spec schema, the store format and the
resume semantics, and ``examples/figure4_omission_sweep.json`` for a
shipped campaign reproducing a Figure-4 omission-budget sweep slice.
"""

from repro.campaign.executor import run_campaign_parallel
from repro.campaign.planner import CampaignPlan, PlannedCell, plan_campaign
from repro.campaign.queue import CampaignQueue, QueuedCampaign
from repro.campaign.report import render_report
from repro.campaign.runner import CampaignRunStatus, campaign_status, run_campaign
from repro.campaign.spec import CampaignError, CampaignSpec
from repro.campaign.store import (
    CompactionStats,
    ResultStore,
    SharedResultStore,
    StoreError,
    compact_store,
    store_kind,
)

__all__ = [
    "CampaignError",
    "CampaignPlan",
    "CampaignQueue",
    "CampaignRunStatus",
    "CampaignSpec",
    "CompactionStats",
    "PlannedCell",
    "QueuedCampaign",
    "ResultStore",
    "SharedResultStore",
    "StoreError",
    "campaign_status",
    "compact_store",
    "plan_campaign",
    "render_report",
    "run_campaign",
    "run_campaign_parallel",
    "store_kind",
]
