"""Cell-level parallel campaign execution.

One campaign's cells are embarrassingly parallel by construction:
content-addressed specs plus per-cell seed blocks make every cell a pure
function of its own inputs, independent of every other cell.  This
module overlaps pending cells across a thread pool — each worker runs
one cell through :func:`~repro.campaign.runner.build_cell_record`, whose
cell-internal fan-out (``jobs``/``jobs_backend``/``run_chunk``/
``result_transport``, the thread/process machinery of
:mod:`repro.engine.experiment`) composes underneath, so ``--cell-jobs 4
--jobs 2 --backend process`` keeps four cells in flight with two worker
processes each — under the shm transport each cell's worker thread
ingests its own arenas and still hands the main thread a plain record.

Determinism under concurrency
-----------------------------

The executor preserves the serial walk's semantics in *set* terms, which
is all the folds consume:

* **Which cells run** is deterministic: the first ``max_cells`` pending
  cells in plan order (exactly the serial prefix), whatever the pool
  width.  ``--max-cells`` therefore still interrupts campaigns at a
  reproducible point.
* **What each cell produces** is deterministic: workers never share
  state — ``build_cell_record`` touches neither the store nor the other
  cells.
* **Append order is not** deterministic: records persist in completion
  order.  The store and report layers fold the record *set* (sorted by
  cell id), so the rendered report is byte-identical to the serial
  run's for every ``cell_jobs`` — the fold-equivalence contract pinned
  by ``tests/test_campaign_executor.py``.

The store stays **single-writer**: workers return records to the main
thread, which is the only appender — in-process concurrency never
interleaves file writes (cross-process appenders are serialised by the
store's ``O_APPEND`` single-``write`` discipline instead).

On ``KeyboardInterrupt``, queued cells are cancelled, in-flight cells
run to completion (they cannot be safely stopped mid-run), and every
finished record is persisted before returning — the store is always
resumable.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor, as_completed
from typing import Callable, Dict, Iterator, List, Optional

from repro.campaign.planner import CampaignPlan, PlannedCell
from repro.campaign.runner import (
    INTERRUPT_MESSAGE,
    CampaignRunStatus,
    _tally,
    build_cell_record,
    progress_line,
)
from repro.campaign.store import _BaseStore
from repro.obs.recorder import NULL_RECORDER, get_recorder


def _completed_in_order(futures: List[Future]) -> Iterator[Future]:
    """Yield cell futures as they complete — the one nondeterministic seam.

    Module-level so the concurrency tests can monkeypatch it with a
    deterministic permutation (wait for everything, yield in a fixed
    shuffled order) and prove the fold's order-independence is a
    property, not an accident of thread timing.
    """
    return as_completed(futures)


def run_campaign_parallel(
    plan: CampaignPlan,
    store: _BaseStore,
    *,
    cell_jobs: int = 1,
    jobs: int = 1,
    jobs_backend: str = "thread",
    run_chunk: int = 1,
    max_cells: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    result_transport: str = "pickle",
) -> CampaignRunStatus:
    """Execute pending cells of ``plan`` over a ``cell_jobs``-wide pool.

    Semantically the parallel twin of
    :func:`~repro.campaign.runner.run_campaign`: the same cell set runs
    (the first ``max_cells`` pending cells in plan order), every record
    is identical, and the resulting store folds to byte-identical
    reports — only wall-clock overlap and on-disk append order differ.
    """
    if cell_jobs < 1:
        raise ValueError("cell_jobs must be at least 1")
    if max_cells is not None and max_cells < 1:
        raise ValueError("max_cells must be at least 1")
    emit = progress if progress is not None else (lambda _message: None)
    status = CampaignRunStatus(total=plan.total)
    pending: List[PlannedCell] = []
    for cell in plan.cells:
        existing = store.record_for(cell.cell_id)
        if existing is not None:
            _tally(status, existing)
        else:
            pending.append(cell)
    selected = pending if max_cells is None else pending[:max_cells]
    if len(selected) < len(pending):
        status.interrupted = True

    def persist(future: Future, cell: PlannedCell) -> None:
        record = future.result()
        emit(progress_line(cell, plan.total, record))
        store.append_cell(record)
        status.executed_now += 1
        _tally(status, record)

    if selected:
        obs = get_recorder()
        if obs is not NULL_RECORDER:
            obs.gauge("campaign.pool_width", min(cell_jobs, len(selected)))
            obs.counter("campaign.cells.submitted", len(selected))
        futures: List[Future] = []
        cell_of: Dict[Future, PlannedCell] = {}
        try:
            with ThreadPoolExecutor(
                    max_workers=min(cell_jobs, len(selected))) as pool:
                for cell in selected:
                    future = pool.submit(
                        build_cell_record, cell, plan, jobs=jobs,
                        jobs_backend=jobs_backend, run_chunk=run_chunk,
                        result_transport=result_transport)
                    futures.append(future)
                    cell_of[future] = cell
                try:
                    for future in _completed_in_order(futures):
                        persist(future, cell_of[future])
                except KeyboardInterrupt:
                    # Queued cells are cancelled; the pool's shutdown (the
                    # with-block exit) waits for in-flight ones to finish.
                    for future in futures:
                        future.cancel()
                    raise
        except KeyboardInterrupt:
            status.interrupted = True
            status.keyboard_interrupt = True
            for future in futures:
                if future.done() and not future.cancelled() \
                        and future.exception() is None \
                        and store.record_for(cell_of[future].cell_id) is None:
                    persist(future, cell_of[future])
            emit(INTERRUPT_MESSAGE)
    status.pending_cells = [
        cell for cell in plan.cells if store.record_for(cell.cell_id) is None]
    return status
