"""Persistent campaign result stores: append-only JSONL, atomic appends.

Two store kinds share one primitive file format — newline-delimited JSON,
no third-party dependencies, greppable and diffable:

**Exclusive stores** (:class:`ResultStore`) hold one campaign's results.
Line 1 is the **campaign manifest**: ``{"kind": "campaign-manifest",
"version": 1, "campaign": <name>, "campaign_hash": <hash>}``.  The hash
fingerprints the expanded grid (see :mod:`repro.campaign.planner`), so
the store can only be appended to by the campaign that created it —
resuming with an edited spec fails loudly instead of mixing
incompatible cells.

**Shared stores** (:class:`SharedResultStore`) hold one *cell pool*
serving many campaigns.  Line 1 is ``{"kind": "shared-store-manifest",
"version": 1}``; the file then interleaves cell records with
**campaign registrations** — ``{"kind": "campaign", "campaign": <name>,
"campaign_hash": <hash>, "cells": [<sorted cell ids>]}`` — one per
campaign that has run against the pool (re-registering a name with a new
grid hash supersedes the old registration).  Because cell ids are
content addresses, a second campaign whose grid overlaps the pool finds
its shared cells already present and recomputes only the set
difference: cross-campaign dedup falls out of content addressing.

Either way, every cell line is one **cell record**: ``{"kind": "cell",
"cell_id": ..., "index": ..., "coordinates": {...}, "status":
"ok" | "na" | "error", ...}`` with the serialised
:class:`~repro.engine.experiment.ExperimentResult` under ``"result"``
for ``ok`` cells, the infeasibility reason under ``"reason"`` for
``na`` cells, and the failure message under ``"error"`` for ``error``
cells.

Atomicity and crash recovery
----------------------------

Appends are atomic at cell granularity: each record is written as a
single ``os.write`` of one complete line on an ``O_APPEND`` descriptor,
``fsync``-ed before the runner moves on.  ``O_APPEND`` plus
one-``write``-per-record is what makes **concurrent appenders** safe:
parallel cell executors in one process (serialised by the store's lock)
and independent processes sharing one pool file can interleave only at
line granularity, never inside a record.  A crash can lose at most the
record in flight — never corrupt a finished one.  If the process dies
mid-write, the file ends in a torn (unparseable or unterminated) tail
line; ``open`` detects it, truncates the store back to the last complete
record, and resumes from there.  Records are keyed by content-addressed
``cell_id``, so replaying a lost cell appends an identical record and
the folded view of the store is unchanged — which is what makes
interrupted-and-resumed campaigns render byte-identical reports.

Record order on disk is **not** part of the contract: a parallel
executor appends cells in completion order, which may differ run to run.
Every consumer folds the record *set* — ``cell_records`` returns records
keyed and ordered by sorted ``cell_id``, and reports look cells up by id
in plan order — so two stores holding the same records in any order are
equivalent (the fold-equivalence restatement of the resume pin, see
``docs/invariants.md``).

Compaction
----------

:func:`compact_store` rewrites a store in canonical order — manifest,
then (shared stores) the latest registration per campaign sorted by
name, then one record per live cell id sorted by id — dropping
duplicate records, superseded registrations, torn tails, and (shared
stores) orphaned cells no registered campaign references.  The rewrite
is crash-safe: the canonical bytes go to a temporary file in the same
directory, flushed and ``fsync``-ed, then ``os.replace``-d over the
store, so a crash leaves either the old file or the new one, never a
mix.  Compaction is idempotent (``compact(compact(s)) == compact(s)``
byte for byte) and invisible to folds: the record set is preserved, so
reports render byte-identically before and after.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

MANIFEST_KIND = "campaign-manifest"
SHARED_MANIFEST_KIND = "shared-store-manifest"
CAMPAIGN_KIND = "campaign"
CELL_KIND = "cell"
STORE_VERSION = 1

#: The byte prefixes a torn manifest line is recognised by (the
#: ``sort_keys`` JSON dumps of the two manifest kinds).  A torn first
#: line matching neither is a foreign file and is never overwritten.
_EXCLUSIVE_MANIFEST_PREFIX = b'{"campaign'
_SHARED_MANIFEST_PREFIX = b'{"kind": "shared-store-manifest"'


class StoreError(Exception):
    """The store file is missing, corrupt, or belongs to another campaign."""


def _read_lines(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Parse the store, tolerating a torn tail.

    Returns ``(records, good_size)`` where ``good_size`` is the byte offset
    just past the last complete record — the truncation point for recovery.
    A torn line anywhere but the tail is corruption and raises.
    """
    records: List[Dict[str, Any]] = []
    good_size = 0
    with open(path, "rb") as handle:
        data = handle.read()
    offset = 0
    for line in data.splitlines(keepends=True):
        end = offset + len(line)
        stripped = line.strip()
        if stripped:
            try:
                record = json.loads(stripped.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                if end != len(data):
                    raise StoreError(
                        f"store {path!r} is corrupt: unparseable record at byte "
                        f"{offset} is not the torn tail of an interrupted write")
                return records, good_size  # torn tail: recoverable
            if not line.endswith(b"\n") and end == len(data):
                # Complete JSON but no terminator: the write was cut exactly
                # at the payload boundary.  Treat as torn — the record will
                # be regenerated identically on resume.
                return records, good_size
            records.append(record)
            good_size = end
        offset = end
    return records, good_size


def _record_line(record: Dict[str, Any]) -> bytes:
    """The canonical serialised form of one record: one JSON line."""
    return (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")


def _append_line(path: str, data: bytes) -> None:
    """Append one complete record line: a single fsync'd ``os.write``.

    ``O_APPEND`` makes the kernel serialise concurrent appenders at write
    granularity, so two processes sharing a pool file can interleave only
    whole lines.  Going through ``os.write`` (rather than buffered file
    objects) keeps the write a single syscall — and gives the
    fault-injection tests a seam to tear it mid-record.
    """
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        while data:
            written = os.write(fd, data)
            data = data[written:]
        os.fsync(fd)
    finally:
        os.close(fd)


class _BaseStore:
    """State and record plumbing shared by the exclusive and shared stores."""

    def __init__(self, path: str, manifest: Dict[str, Any],
                 cell_records: Dict[str, Dict[str, Any]]) -> None:
        self.path = path
        self.manifest = manifest
        self._cells = cell_records
        #: Serialises in-process appenders (the parallel executor appends
        #: from one thread, but the queue and library callers need not).
        self._lock = threading.Lock()

    # -- reading ----------------------------------------------------------------

    def completed_ids(self) -> set:
        """Cell ids with a persisted record (any status)."""
        return set(self._cells)

    def record_for(self, cell_id: str) -> Optional[Dict[str, Any]]:
        return self._cells.get(cell_id)

    @property
    def cell_records(self) -> Dict[str, Dict[str, Any]]:
        """Records keyed by cell id, **ordered by sorted cell id**.

        Append order tracks execution order, which a parallel executor is
        allowed to permute — so the iteration order handed to folds is
        normalised here, making every downstream consumer independent of
        completion order by construction.
        """
        return {cell_id: self._cells[cell_id]
                for cell_id in sorted(self._cells)}

    # -- writing ----------------------------------------------------------------

    def append_cell(self, record: Dict[str, Any]) -> None:
        """Persist one finished cell: a single flushed, fsync-ed line."""
        if record.get("kind") != CELL_KIND or "cell_id" not in record:
            raise StoreError("cell records need kind='cell' and a cell_id")
        with self._lock:
            _append_line(self.path, _record_line(record))
            self._cells[record["cell_id"]] = record


class ResultStore(_BaseStore):
    """Append-only JSONL store bound to one campaign's grid."""

    # -- opening ----------------------------------------------------------------

    @classmethod
    def create(cls, path: str, campaign_name: str, campaign_hash: str) -> "ResultStore":
        """Create a fresh store (the file must not already hold records)."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "x", encoding="utf-8") as handle:
            manifest = cls._write_manifest(handle, campaign_name, campaign_hash)
        return cls(path, manifest, {})

    @staticmethod
    def _write_manifest(handle, campaign_name: str, campaign_hash: str) -> Dict[str, Any]:
        manifest = {
            "kind": MANIFEST_KIND,
            "version": STORE_VERSION,
            "campaign": campaign_name,
            "campaign_hash": campaign_hash,
        }
        handle.write(json.dumps(manifest, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
        return manifest

    @classmethod
    def open(cls, path: str, campaign_name: str, campaign_hash: str, *,
             recover: bool = True) -> "ResultStore":
        """Open an existing store, recover torn tails, verify the fingerprint.

        ``recover=False`` makes the open strictly read-only: torn tails are
        still tolerated (skipped) but nothing is written back — the mode
        for ``repro campaign status``/``report``, which must never claim or
        repair a file.  Recovery writes happen only on ``run``/``resume``
        opens.
        """
        if not os.path.exists(path):
            raise StoreError(f"no result store at {path!r}; run the campaign first")
        records, good_size = _read_lines(path)
        if not records:
            # No complete record at all: either an empty file or a manifest
            # line torn by a crash during create().  Nothing is lost (no
            # cell had been persisted), so re-initialise in place — but only
            # if the torn bytes are recognisably our own manifest; anything
            # else is not a campaign store and must not be overwritten.
            with open(path, "rb") as handle:
                leftover = handle.read()
            if not recover or (leftover and not leftover.startswith(
                    _EXCLUSIVE_MANIFEST_PREFIX)):
                raise StoreError(f"store {path!r} has no campaign manifest line")
            with open(path, "w", encoding="utf-8") as handle:
                manifest = cls._write_manifest(handle, campaign_name, campaign_hash)
            return cls(path, manifest, {})
        if records[0].get("kind") == SHARED_MANIFEST_KIND:
            raise StoreError(
                f"store {path!r} is a shared multi-campaign store; open it "
                "with SharedResultStore (the CLI auto-detects this)")
        if records[0].get("kind") != MANIFEST_KIND:
            raise StoreError(f"store {path!r} has no campaign manifest line")
        manifest = records[0]
        if manifest.get("version") != STORE_VERSION:
            raise StoreError(
                f"store {path!r} is version {manifest.get('version')!r}; "
                f"this build reads version {STORE_VERSION}")
        if manifest.get("campaign_hash") != campaign_hash:
            raise StoreError(
                f"store {path!r} belongs to campaign {manifest.get('campaign')!r} "
                f"with grid hash {manifest.get('campaign_hash')}, not to "
                f"{campaign_name!r} with grid hash {campaign_hash}; "
                "the campaign spec changed since this store was written")
        if recover and good_size < os.path.getsize(path):
            # Torn tail from an interrupted write: truncate back to the last
            # complete record so future appends start on a clean boundary.
            with open(path, "r+b") as handle:
                handle.truncate(good_size)
        cells: Dict[str, Dict[str, Any]] = {}
        for record in records[1:]:
            if record.get("kind") != CELL_KIND:
                raise StoreError(
                    f"store {path!r} holds an unknown record kind "
                    f"{record.get('kind')!r}")
            cells[record["cell_id"]] = record
        return cls(path, manifest, cells)

    @classmethod
    def open_or_create(cls, path: str, campaign_name: str,
                       campaign_hash: str) -> "ResultStore":
        if os.path.exists(path):
            return cls.open(path, campaign_name, campaign_hash)
        return cls.create(path, campaign_name, campaign_hash)


class SharedResultStore(_BaseStore):
    """One content-addressed cell pool serving many campaigns.

    The pool is **keyed by cell id only**: any campaign may append, and a
    campaign whose grid overlaps cells already in the pool (from an
    earlier campaign, another user, or itself) skips them instead of
    recomputing.  Per-campaign membership lives in registration records
    layered over the pool — the latest registration per campaign name
    wins, and compaction drops cells no registered campaign references.
    """

    def __init__(self, path: str, manifest: Dict[str, Any],
                 cell_records: Dict[str, Dict[str, Any]],
                 registrations: Dict[str, Dict[str, Any]]) -> None:
        super().__init__(path, manifest, cell_records)
        self._registrations = registrations

    # -- opening ----------------------------------------------------------------

    @classmethod
    def create(cls, path: str) -> "SharedResultStore":
        """Create a fresh shared pool (the file must not already exist)."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "x", encoding="utf-8") as handle:
            manifest = cls._write_manifest(handle)
        return cls(path, manifest, {}, {})

    @staticmethod
    def _write_manifest(handle) -> Dict[str, Any]:
        manifest = {"kind": SHARED_MANIFEST_KIND, "version": STORE_VERSION}
        handle.write(json.dumps(manifest, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
        return manifest

    @classmethod
    def open(cls, path: str, *, recover: bool = True) -> "SharedResultStore":
        """Open an existing pool; recover torn tails unless read-only."""
        if not os.path.exists(path):
            raise StoreError(f"no result store at {path!r}; run the campaign first")
        records, good_size = _read_lines(path)
        if not records:
            with open(path, "rb") as handle:
                leftover = handle.read()
            if not recover or (leftover and not leftover.startswith(
                    _SHARED_MANIFEST_PREFIX)):
                raise StoreError(f"store {path!r} has no campaign manifest line")
            with open(path, "w", encoding="utf-8") as handle:
                manifest = cls._write_manifest(handle)
            return cls(path, manifest, {}, {})
        if records[0].get("kind") == MANIFEST_KIND:
            raise StoreError(
                f"store {path!r} is an exclusive single-campaign store, not "
                "a shared pool; drop --shared or pick another --store path")
        if records[0].get("kind") != SHARED_MANIFEST_KIND:
            raise StoreError(f"store {path!r} has no campaign manifest line")
        manifest = records[0]
        if manifest.get("version") != STORE_VERSION:
            raise StoreError(
                f"store {path!r} is version {manifest.get('version')!r}; "
                f"this build reads version {STORE_VERSION}")
        if recover and good_size < os.path.getsize(path):
            with open(path, "r+b") as handle:
                handle.truncate(good_size)
        cells: Dict[str, Dict[str, Any]] = {}
        registrations: Dict[str, Dict[str, Any]] = {}
        for record in records[1:]:
            kind = record.get("kind")
            if kind == CELL_KIND:
                cells[record["cell_id"]] = record
            elif kind == CAMPAIGN_KIND:
                registrations[record["campaign"]] = record  # latest wins
            else:
                raise StoreError(
                    f"store {path!r} holds an unknown record kind {kind!r}")
        return cls(path, manifest, cells, registrations)

    @classmethod
    def open_or_create(cls, path: str) -> "SharedResultStore":
        if os.path.exists(path):
            return cls.open(path)
        return cls.create(path)

    # -- campaign registrations --------------------------------------------------

    @property
    def registrations(self) -> Dict[str, Dict[str, Any]]:
        """Latest registration per campaign name, ordered by sorted name."""
        return {name: self._registrations[name]
                for name in sorted(self._registrations)}

    def registration_for(self, campaign_name: str) -> Optional[Dict[str, Any]]:
        return self._registrations.get(campaign_name)

    def register_campaign(self, campaign_name: str, campaign_hash: str,
                          cell_ids: List[str]) -> bool:
        """Bind a campaign's membership (its sorted cell-id set) to the pool.

        Idempotent: re-registering an identical (name, hash, cells) triple
        appends nothing.  A changed grid under the same name appends a new
        registration that **supersedes** the old one — previous cells the
        new grid no longer references become orphans, reclaimed by
        :func:`compact_store`.  Returns ``True`` when a record was written.
        """
        record = {
            "kind": CAMPAIGN_KIND,
            "campaign": campaign_name,
            "campaign_hash": campaign_hash,
            "cells": sorted(cell_ids),
        }
        existing = self._registrations.get(campaign_name)
        if existing is not None \
                and existing.get("campaign_hash") == campaign_hash \
                and existing.get("cells") == record["cells"]:
            return False
        with self._lock:
            _append_line(self.path, _record_line(record))
            self._registrations[campaign_name] = record
        return True

    def referenced_ids(self) -> set:
        """Cell ids referenced by at least one registered campaign."""
        referenced = set()
        for name in sorted(self._registrations):
            referenced.update(self._registrations[name].get("cells", []))
        return referenced

    def orphaned_ids(self) -> set:
        """Persisted cells no registered campaign references."""
        return self.completed_ids() - self.referenced_ids()


def store_kind(path: str) -> str:
    """``"exclusive"`` or ``"shared"``, from an existing store's manifest.

    A store whose manifest line itself is torn is classified by its byte
    prefix (each kind's recovery path can then re-initialise it); a file
    that is neither raises, so foreign files are never claimed.
    """
    if not os.path.exists(path):
        raise StoreError(f"no result store at {path!r}; run the campaign first")
    records, _ = _read_lines(path)
    if records:
        kind = records[0].get("kind")
        if kind == MANIFEST_KIND:
            return "exclusive"
        if kind == SHARED_MANIFEST_KIND:
            return "shared"
        raise StoreError(f"store {path!r} has no campaign manifest line")
    with open(path, "rb") as handle:
        leftover = handle.read()
    if leftover.startswith(_SHARED_MANIFEST_PREFIX):
        return "shared"
    if not leftover or leftover.startswith(_EXCLUSIVE_MANIFEST_PREFIX):
        return "exclusive"
    raise StoreError(f"store {path!r} has no campaign manifest line")


@dataclass(frozen=True)
class CompactionStats:
    """What :func:`compact_store` kept and reclaimed."""

    kind: str
    cells_kept: int
    duplicates_dropped: int
    orphans_dropped: int
    registrations_dropped: int
    bytes_before: int
    bytes_after: int

    def summary(self) -> str:
        parts = [f"{self.cells_kept} cells kept"]
        if self.duplicates_dropped:
            parts.append(f"{self.duplicates_dropped} duplicate records dropped")
        if self.orphans_dropped:
            parts.append(f"{self.orphans_dropped} orphaned cells dropped")
        if self.registrations_dropped:
            parts.append(
                f"{self.registrations_dropped} superseded registrations dropped")
        parts.append(f"{self.bytes_before} -> {self.bytes_after} bytes")
        return ", ".join(parts)


def compact_store(path: str) -> CompactionStats:
    """Rewrite a store in canonical order, dropping dead records.

    Works on both store kinds (dispatching on the manifest): the output is
    the manifest line, then — for shared pools — the latest registration
    per campaign (sorted by name), then one record per live cell id
    (sorted by id).  Dropped: duplicate cell records (later appends win,
    as on load), superseded registrations, torn tails, and — shared pools
    only — orphaned cells referenced by no registered campaign.

    Crash-safe via write-temp-then-rename: the canonical bytes are written
    to ``<path>.compact.tmp`` in the same directory, flushed and fsync'd,
    then atomically ``os.replace``-d over the store.  Idempotent — the
    output is a pure function of the record set, so compacting twice
    yields byte-identical files — and fold-invisible: the record set (and
    hence every report) is unchanged.
    """
    kind = store_kind(path)
    records, _ = _read_lines(path)
    if not records:
        raise StoreError(
            f"store {path!r} has no complete manifest line; run the campaign "
            "(which recovers it) before compacting")
    manifest = records[0]

    cells: Dict[str, Dict[str, Any]] = {}
    registrations: Dict[str, Dict[str, Any]] = {}
    duplicates = 0
    superseded = 0
    for record in records[1:]:
        record_kind = record.get("kind")
        if record_kind == CELL_KIND:
            if record["cell_id"] in cells:
                duplicates += 1
            cells[record["cell_id"]] = record
        elif record_kind == CAMPAIGN_KIND and kind == "shared":
            if record["campaign"] in registrations:
                superseded += 1
            registrations[record["campaign"]] = record
        else:
            raise StoreError(
                f"store {path!r} holds an unknown record kind {record_kind!r}")

    orphans = 0
    if kind == "shared":
        referenced = set()
        for name in sorted(registrations):
            referenced.update(registrations[name].get("cells", []))
        live_ids = [cell_id for cell_id in sorted(cells)
                    if cell_id in referenced]
        orphans = len(cells) - len(live_ids)
    else:
        live_ids = sorted(cells)

    lines: List[bytes] = [_record_line(manifest)]
    lines.extend(_record_line(registrations[name])
                 for name in sorted(registrations))
    lines.extend(_record_line(cells[cell_id]) for cell_id in live_ids)

    bytes_before = os.path.getsize(path)
    temp_path = path + ".compact.tmp"
    with open(temp_path, "wb") as handle:
        handle.write(b"".join(lines))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, path)
    _fsync_directory(os.path.dirname(os.path.abspath(path)))
    return CompactionStats(
        kind=kind,
        cells_kept=len(live_ids),
        duplicates_dropped=duplicates,
        orphans_dropped=orphans,
        registrations_dropped=superseded,
        bytes_before=bytes_before,
        bytes_after=os.path.getsize(path),
    )


def _fsync_directory(directory: str) -> None:
    """Flush a rename to the directory entry (best effort; not all
    platforms allow fsync on directory descriptors)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
