"""The persistent campaign result store: append-only JSONL, atomic appends.

One store file holds the results of one campaign.  The format is
deliberately primitive — newline-delimited JSON, no third-party
dependencies, greppable and diffable:

* line 1 is the **manifest**: ``{"kind": "campaign-manifest", "version":
  1, "campaign": <name>, "campaign_hash": <hash>}``.  The hash fingerprints
  the expanded grid (see :mod:`repro.campaign.planner`), so a store can
  only be appended to by the campaign that created it — resuming with an
  edited spec fails loudly instead of mixing incompatible cells.
* every further line is one **cell record**: ``{"kind": "cell",
  "cell_id": ..., "index": ..., "coordinates": {...}, "status":
  "ok" | "na" | "error", ...}`` with the serialised
  :class:`~repro.engine.experiment.ExperimentResult` under ``"result"``
  for ``ok`` cells, the infeasibility reason under ``"reason"`` for
  ``na`` cells, and the failure message under ``"error"`` for ``error``
  cells.

Atomicity and crash recovery
----------------------------

Appends are atomic at cell granularity: each record is written as one
``write`` of a complete line, flushed and ``fsync``-ed before the runner
moves on, so a crash can lose at most the cell in flight — never corrupt
a finished one.  If the process dies mid-write, the file ends in a torn
(unparseable or unterminated) tail line; :meth:`ResultStore.open` detects
it, truncates the store back to the last complete record, and resumes
from there.  Records are keyed by content-addressed ``cell_id``, so
replaying a lost cell appends an identical record and the folded view of
the store is unchanged — which is what makes interrupted-and-resumed
campaigns render byte-identical reports.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

MANIFEST_KIND = "campaign-manifest"
CELL_KIND = "cell"
STORE_VERSION = 1


class StoreError(Exception):
    """The store file is missing, corrupt, or belongs to another campaign."""


def _read_lines(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Parse the store, tolerating a torn tail.

    Returns ``(records, good_size)`` where ``good_size`` is the byte offset
    just past the last complete record — the truncation point for recovery.
    A torn line anywhere but the tail is corruption and raises.
    """
    records: List[Dict[str, Any]] = []
    good_size = 0
    with open(path, "rb") as handle:
        data = handle.read()
    offset = 0
    for line in data.splitlines(keepends=True):
        end = offset + len(line)
        stripped = line.strip()
        if stripped:
            try:
                record = json.loads(stripped.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                if end != len(data):
                    raise StoreError(
                        f"store {path!r} is corrupt: unparseable record at byte "
                        f"{offset} is not the torn tail of an interrupted write")
                return records, good_size  # torn tail: recoverable
            if not line.endswith(b"\n") and end == len(data):
                # Complete JSON but no terminator: the write was cut exactly
                # at the payload boundary.  Treat as torn — the record will
                # be regenerated identically on resume.
                return records, good_size
            records.append(record)
            good_size = end
        offset = end
    return records, good_size


class ResultStore:
    """Append-only JSONL store bound to one campaign's grid."""

    def __init__(self, path: str, manifest: Dict[str, Any],
                 cell_records: Dict[str, Dict[str, Any]]) -> None:
        self.path = path
        self.manifest = manifest
        self._cells = cell_records

    # -- opening ----------------------------------------------------------------

    @classmethod
    def create(cls, path: str, campaign_name: str, campaign_hash: str) -> "ResultStore":
        """Create a fresh store (the file must not already hold records)."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "x", encoding="utf-8") as handle:
            manifest = cls._write_manifest(handle, campaign_name, campaign_hash)
        return cls(path, manifest, {})

    @staticmethod
    def _write_manifest(handle, campaign_name: str, campaign_hash: str) -> Dict[str, Any]:
        manifest = {
            "kind": MANIFEST_KIND,
            "version": STORE_VERSION,
            "campaign": campaign_name,
            "campaign_hash": campaign_hash,
        }
        handle.write(json.dumps(manifest, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
        return manifest

    @classmethod
    def open(cls, path: str, campaign_name: str, campaign_hash: str, *,
             recover: bool = True) -> "ResultStore":
        """Open an existing store, recover torn tails, verify the fingerprint.

        ``recover=False`` makes the open strictly read-only: torn tails are
        still tolerated (skipped) but nothing is written back — the mode
        for ``repro campaign status``/``report``, which must never claim or
        repair a file.  Recovery writes happen only on ``run``/``resume``
        opens.
        """
        if not os.path.exists(path):
            raise StoreError(f"no result store at {path!r}; run the campaign first")
        records, good_size = _read_lines(path)
        if not records:
            # No complete record at all: either an empty file or a manifest
            # line torn by a crash during create().  Nothing is lost (no
            # cell had been persisted), so re-initialise in place — but only
            # if the torn bytes are recognisably our own manifest (the
            # sort_keys dump starts with "campaign"); anything else is not a
            # campaign store and must not be silently overwritten.
            with open(path, "rb") as handle:
                leftover = handle.read()
            if not recover or (leftover
                               and not leftover.startswith(b'{"campaign')):
                raise StoreError(f"store {path!r} has no campaign manifest line")
            with open(path, "w", encoding="utf-8") as handle:
                manifest = cls._write_manifest(handle, campaign_name, campaign_hash)
            return cls(path, manifest, {})
        if records[0].get("kind") != MANIFEST_KIND:
            raise StoreError(f"store {path!r} has no campaign manifest line")
        manifest = records[0]
        if manifest.get("version") != STORE_VERSION:
            raise StoreError(
                f"store {path!r} is version {manifest.get('version')!r}; "
                f"this build reads version {STORE_VERSION}")
        if manifest.get("campaign_hash") != campaign_hash:
            raise StoreError(
                f"store {path!r} belongs to campaign {manifest.get('campaign')!r} "
                f"with grid hash {manifest.get('campaign_hash')}, not to "
                f"{campaign_name!r} with grid hash {campaign_hash}; "
                "the campaign spec changed since this store was written")
        if recover and good_size < os.path.getsize(path):
            # Torn tail from an interrupted write: truncate back to the last
            # complete record so future appends start on a clean boundary.
            with open(path, "r+b") as handle:
                handle.truncate(good_size)
        cells: Dict[str, Dict[str, Any]] = {}
        for record in records[1:]:
            if record.get("kind") != CELL_KIND:
                raise StoreError(
                    f"store {path!r} holds an unknown record kind "
                    f"{record.get('kind')!r}")
            cells[record["cell_id"]] = record
        return cls(path, manifest, cells)

    @classmethod
    def open_or_create(cls, path: str, campaign_name: str,
                       campaign_hash: str) -> "ResultStore":
        if os.path.exists(path):
            return cls.open(path, campaign_name, campaign_hash)
        return cls.create(path, campaign_name, campaign_hash)

    # -- reading ----------------------------------------------------------------

    def completed_ids(self) -> set:
        """Cell ids with a persisted record (any status)."""
        return set(self._cells)

    def record_for(self, cell_id: str) -> Optional[Dict[str, Any]]:
        return self._cells.get(cell_id)

    @property
    def cell_records(self) -> Dict[str, Dict[str, Any]]:
        return dict(self._cells)

    # -- writing ----------------------------------------------------------------

    def append_cell(self, record: Dict[str, Any]) -> None:
        """Persist one finished cell: a single flushed, fsync-ed line."""
        if record.get("kind") != CELL_KIND or "cell_id" not in record:
            raise StoreError("cell records need kind='cell' and a cell_id")
        line = json.dumps(record, sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        self._cells[record["cell_id"]] = record
