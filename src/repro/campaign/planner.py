"""Campaign planning: expand a grid into content-addressed cells.

The planner takes a validated :class:`~repro.campaign.spec.CampaignSpec`
and expands the cross product of its axes into an ordered list of
:class:`PlannedCell` values.  Each cell carries

* the resolved :class:`~repro.protocols.registry.ExperimentSpec` field
  dict (``base`` overlaid with every axis point's overrides, later axes
  winning),
* a **content-addressed id**: a SHA-256 over the canonical JSON of the
  resolved fields plus the seed block (``runs``/``base_seed``/
  ``max_steps``/``stability_window``).  The id depends only on *what the
  cell computes*, never on grid position or labels — re-ordering axes or
  renaming labels keeps finished results valid, while touching any field
  that could change outcomes changes the id and re-runs the cell,
* an optional ``skip_reason`` for cells that are structurally infeasible
  (``n/a`` in reports): omission budgets on non-omissive models, and the
  knowledge-of-``n`` simulator on sparse interaction graphs, where the
  ``Nn`` naming phase deadlocks (documented in
  ``benchmarks/bench_figure_4_results_map.py``),
* an optional ``backend_reason`` explaining why a cell that asked for the
  ``auto`` backend fell back to ``python``.

``backend="auto"`` cells are resolved **here, before cell hashing**
(:func:`repro.protocols.registry.resolve_backend`): the content address
covers the *concrete* backend the cell will run on, so a store produced
under ``auto`` is byte-identical to one produced under the equivalent
explicit backend, and resumes stay fold-equivalent across fan-out modes.
Resolution is deterministic in the resolved fields — it never consults
timings — and a probe failure downgrades the cell to ``python`` with the
compile error recorded as ``backend_reason``, never killing the plan.

The plan's ``campaign_hash`` fingerprints the whole grid; the result
store records it so a store can only ever be resumed against the campaign
that produced it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.spec import AxisPoint, CampaignError, CampaignSpec
from repro.engine.backends import BackendError
from repro.interaction.models import MODELS_BY_NAME
from repro.protocols.registry import (
    ADVERSARIES,
    PREDICATES,
    PROTOCOLS,
    SCHEDULERS,
    SIMULATORS,
    ExperimentSpec,
    resolve_backend,
)

#: Registry-key spec fields checked at plan time (``field -> registry``).
#: Key resolution otherwise only happens inside ``ExperimentSpec.build()``
#: mid-sweep; checking here fails the whole campaign before a single cell
#: runs.  The registries are module-level and identical in process-pool
#: workers, so a key valid here is valid everywhere.
_KEY_REGISTRIES = {
    "protocol": PROTOCOLS,
    "simulator": SIMULATORS,
    "predicate": PREDICATES,
    "scheduler": SCHEDULERS,
    "adversary": ADVERSARIES,
}

#: Graph schedulers too sparse for the knowledge-of-``n`` naming phase:
#: ``Nn`` assigns ids through same-id collisions, which assumes any two
#: agents can eventually meet; on these topologies it can deadlock.
SPARSE_GRAPH_SCHEDULERS: Tuple[str, ...] = ("ring-graph", "star-graph")

#: Every ExperimentSpec field with its default (``None`` for the required
#: fields) — the base layer cell identities resolve against, so explicitly
#: writing a default into a campaign spec is a hashing no-op.
_SPEC_FIELD_DEFAULTS: Dict[str, Any] = {
    spec_field.name: (None if spec_field.default is dataclasses.MISSING
                      else spec_field.default)
    for spec_field in dataclasses.fields(ExperimentSpec)
}

_KWARGS_FIELDS = ("protocol_kwargs", "scheduler_kwargs", "adversary_kwargs")


def _resolved_cell_fields(overlay: Dict[str, Any]) -> Dict[str, Any]:
    """The full ExperimentSpec field dict a cell computes with.

    Defaults are filled in and the kwargs mappings normalised to sorted
    pairs (mirroring the spec constructor), so the hash input depends only
    on the *resolved* experiment — never on which fields the campaign spec
    happened to spell out explicitly.
    """
    resolved = dict(_SPEC_FIELD_DEFAULTS)
    resolved.update(overlay)
    for name in _KWARGS_FIELDS:
        resolved[name] = sorted(
            [key, value] for key, value in dict(resolved[name] or {}).items())
    return resolved


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace — the hashing form."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def infeasible_reason(fields: Dict[str, Any]) -> Optional[str]:
    """Why a resolved cell is structurally infeasible (``None`` if it is not).

    These are the *known* ``n/a`` verdicts — cells the paper's constructions
    exclude by design, reported as such rather than run to certain failure.
    """
    simulator = fields.get("simulator", "none")
    scheduler = fields.get("scheduler", "random")
    if simulator == "known-n" and scheduler in SPARSE_GRAPH_SCHEDULERS:
        return (f"knowledge-of-n naming (Nn) deadlocks on sparse interaction "
                f"graphs ({scheduler}); complete graph only")
    omissions = fields.get("omissions", 0)
    model_name = str(fields.get("model", "TW")).upper()
    model = MODELS_BY_NAME.get(model_name)
    if omissions and model is not None and not model.allows_omissions:
        return f"model {model_name} does not admit omissions"
    return None


@dataclass(frozen=True)
class PlannedCell:
    """One cell of the expanded grid."""

    index: int
    cell_id: str
    #: ``axis name -> point label``, in axis order (report coordinates).
    coordinates: Tuple[Tuple[str, str], ...]
    #: Resolved ExperimentSpec fields (plain data).  ``backend`` is always
    #: concrete here: ``auto`` is resolved at plan time, before hashing.
    fields: Tuple[Tuple[str, Any], ...]
    skip_reason: Optional[str] = None
    #: Why an ``auto`` cell fell back to the python backend (``None`` when
    #: it resolved to ``array`` or never asked for ``auto``); surfaced by
    #: the CLI so slow-path cells are visible, not silent.
    backend_reason: Optional[str] = None

    @property
    def labels(self) -> Dict[str, str]:
        return dict(self.coordinates)

    def field_dict(self) -> Dict[str, Any]:
        return dict(self.fields)

    def build_spec(self) -> ExperimentSpec:
        """The picklable experiment spec this cell runs."""
        return ExperimentSpec(**self.field_dict())


@dataclass
class CampaignPlan:
    """The fully expanded campaign: ordered cells plus the grid fingerprint."""

    campaign: CampaignSpec
    cells: List[PlannedCell]
    campaign_hash: str

    @property
    def total(self) -> int:
        return len(self.cells)

    def by_id(self) -> Dict[str, PlannedCell]:
        return {cell.cell_id: cell for cell in self.cells}

    def cell_ids(self) -> List[str]:
        """Every cell's content-addressed id, sorted — the canonical form
        shared-store campaign registrations persist."""
        return sorted(cell.cell_id for cell in self.cells)


def _cell_identity(fields: Dict[str, Any], campaign: CampaignSpec) -> str:
    """The content-addressed cell id: resolved spec + seed block, hashed."""
    payload = {
        "fields": _resolved_cell_fields(fields),
        "runs": campaign.runs,
        "base_seed": campaign.base_seed,
        "max_steps": campaign.max_steps,
        "stability_window": campaign.stability_window,
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()[:16]


def _resolve_auto_backend(
    fields: Dict[str, Any], coordinates: Tuple[Tuple[str, str], ...]
) -> Optional[str]:
    """Pin a feasible ``backend="auto"`` cell to a concrete backend, in place.

    Returns the fallback reason (``None`` when the cell resolved to the
    array backend).  Resolution failures never abort planning: the cell is
    downgraded to the python backend — which supports everything — with the
    failure recorded as its reason.  Runs against the campaign runner's
    trace policy (``counts-only``), so what is probed is what will run.
    """
    spec = ExperimentSpec(**fields)
    try:
        resolution = resolve_backend(spec, trace_policy="counts-only")
    except (BackendError, KeyError, TypeError, ValueError) as error:
        # The probe builds the experiment, which can fail in ways planning
        # does not check (kwargs contents, protocol defaults); the python
        # backend will report the same failure as a per-cell error verdict.
        fields["backend"] = "python"
        return f"auto resolution failed for cell {dict(coordinates)}: {error}"
    fields["backend"] = resolution.backend
    return resolution.reason


def plan_campaign(campaign: CampaignSpec) -> CampaignPlan:
    """Expand the campaign grid into its ordered, content-addressed cells.

    Feasible cells are validated eagerly by constructing their
    :class:`ExperimentSpec` (bad populations, chunk sizes or backends fail
    at plan time, before anything runs); infeasible cells skip construction
    — their spec may be structurally invalid (e.g. an omission budget on a
    non-omissive model), which is exactly why they are ``n/a``.

    ``backend="auto"`` cells are pinned to a concrete backend here, before
    the cell id is computed, so content addresses depend only on what the
    cell will actually run (infeasible ``auto`` cells pin to ``python``
    without probing — they never execute, but their ids must still be
    machine-independent).
    """
    axis_names = campaign.axis_names
    point_lists: List[List[AxisPoint]] = [points for _, points in campaign.axes]
    cells: List[PlannedCell] = []
    seen: Dict[str, Tuple[str, ...]] = {}
    for index, combo in enumerate(itertools.product(*point_lists)):
        fields = dict(campaign.base)
        for point in combo:
            fields.update(point.as_dict())
        coordinates = tuple(zip(axis_names, (point.label for point in combo)))
        skip_reason = infeasible_reason(fields)
        backend_reason: Optional[str] = None
        if skip_reason is None:
            try:
                ExperimentSpec(**fields)
            except (TypeError, ValueError) as error:
                raise CampaignError(
                    f"cell {dict(coordinates)} has an invalid experiment spec: "
                    f"{error}") from None
            for field_name, registry in _KEY_REGISTRIES.items():
                key = fields.get(field_name)
                if key is not None and key not in registry:
                    known = ", ".join(sorted(registry))
                    raise CampaignError(
                        f"cell {dict(coordinates)}: unknown {field_name} "
                        f"{key!r}; known keys: {known}")
            model_name = str(fields.get(
                "model", _SPEC_FIELD_DEFAULTS["model"])).upper()
            if model_name not in MODELS_BY_NAME:
                known = ", ".join(sorted(MODELS_BY_NAME))
                raise CampaignError(
                    f"cell {dict(coordinates)}: unknown model "
                    f"{fields.get('model')!r}; known models: {known}")
            if fields.get("backend") == "auto":
                backend_reason = _resolve_auto_backend(fields, coordinates)
        elif fields.get("backend") == "auto":
            fields["backend"] = "python"
        cell_id = _cell_identity(fields, campaign)
        labels = tuple(label for _, label in coordinates)
        if cell_id in seen:
            raise CampaignError(
                f"cells {seen[cell_id]} and {labels} resolve to the same "
                "experiment; axes must distinguish every cell")
        seen[cell_id] = labels
        cells.append(PlannedCell(
            index=index,
            cell_id=cell_id,
            coordinates=coordinates,
            fields=tuple(sorted(fields.items())),
            skip_reason=skip_reason,
            backend_reason=backend_reason,
        ))

    # The *sorted* cell-id set: axis order determines walk order, never
    # content, so reordering axes keeps an existing store resumable.
    grid_payload = {
        "name": campaign.name,
        "cells": sorted(cell.cell_id for cell in cells),
    }
    campaign_hash = hashlib.sha256(
        canonical_json(grid_payload).encode("utf-8")).hexdigest()[:16]
    return CampaignPlan(campaign=campaign, cells=cells, campaign_hash=campaign_hash)
