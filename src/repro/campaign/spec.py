"""Campaign specifications: a declarative grid over experiment parameters.

A campaign spec is pure data — a dict (typically loaded from a JSON file)
with no third-party dependencies — declaring a *grid* of experiments:

``base``
    :class:`~repro.protocols.registry.ExperimentSpec` fields shared by
    every cell (e.g. ``protocol``, ``population``, ``predicate``).
``axes``
    An ordered mapping ``axis name -> list of points``.  The campaign is
    the full cross product of the axes.  A point is either a **scalar**
    (assigned to the spec field named like the axis: ``"omissions": [0, 1,
    2]`` sweeps the omission budget) or a **dict of field overrides**
    (several fields moving together as one logical point — e.g. an
    "assumption" axis whose points set ``simulator`` *and* ``model`` and
    carry a ``"label"`` used in reports).
``runs`` / ``base_seed`` / ``max_steps`` / ``stability_window``
    The per-cell seed block: every cell repeats its experiment with seeds
    ``base_seed .. base_seed + runs - 1`` under the same budget.  Being
    part of each cell's identity hash, changing any of these re-runs the
    grid rather than silently reusing stale results.
``report``
    Optional ``{"rows": <axis>, "cols": <axis>}`` choosing which two axes
    span the report's verdict grids (default: the first two).
``priority``
    Optional integer (default 0) ranking this campaign when several drain
    through one :class:`~repro.campaign.queue.CampaignQueue` — larger
    runs first.  Pure scheduling metadata: it is **not** part of any
    cell's identity hash, so re-prioritising never re-runs cells.

Example (the shipped Figure-4 omission sweep slice, abridged)::

    {
      "name": "figure4-omission-slice",
      "base": {"protocol": "pairing", "population": 6},
      "axes": {
        "assumption": [
          {"label": "knowledge-of-omissions", "simulator": "skno",
           "model": "I3", "omission_bound": 2},
          {"label": "knowledge-of-n", "simulator": "known-n", "model": "IO"}
        ],
        "topology": [
          {"label": "complete", "scheduler": "random"},
          {"label": "ring", "scheduler": "ring-graph"}
        ],
        "omissions": [0, 1, 2]
      },
      "runs": 4, "base_seed": 1, "max_steps": 150000,
      "stability_window": 200,
      "report": {"rows": "topology", "cols": "omissions"}
    }
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.protocols.registry import ExperimentSpec

#: ExperimentSpec field names a campaign may set (``base`` or axis points).
SPEC_FIELDS: Tuple[str, ...] = tuple(
    spec_field.name for spec_field in dataclasses.fields(ExperimentSpec))

#: Top-level campaign keys beyond ``base``/``axes``.
_TOP_LEVEL_KEYS = frozenset(
    {"name", "description", "base", "axes", "runs", "base_seed", "max_steps",
     "stability_window", "report", "priority"})


class CampaignError(Exception):
    """A campaign spec (or its store) is malformed or inconsistent."""


@dataclass(frozen=True)
class AxisPoint:
    """One point on one axis: a report label plus the spec fields it sets."""

    label: str
    overrides: Tuple[Tuple[str, Any], ...]

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.overrides)


@dataclass
class CampaignSpec:
    """A validated campaign: base fields, ordered axes, and the seed block."""

    name: str
    base: Dict[str, Any]
    axes: List[Tuple[str, List[AxisPoint]]]
    runs: int = 5
    base_seed: int = 0
    max_steps: int = 100_000
    stability_window: int = 0
    description: str = ""
    #: Queue scheduling rank (larger drains first); never hashed into cells.
    priority: int = 0
    report_rows: Optional[str] = None
    report_cols: Optional[str] = None
    #: The dict this spec was parsed from (kept for provenance; not hashed).
    source: Dict[str, Any] = field(default_factory=dict, repr=False)

    @property
    def axis_names(self) -> List[str]:
        return [name for name, _ in self.axes]

    def report_axes(self) -> Tuple[str, str]:
        """The (rows, cols) axes spanning each report grid.

        An unset side defaults to the first axis the other side does not
        already use, so a partially specified ``report`` section never
        collapses a two-axis campaign into a one-dimensional grid; rows ==
        cols only happens for single-axis campaigns or when both are set
        explicitly equal.
        """
        names = self.axis_names

        def first_other_than(taken: Optional[str]) -> str:
            for name in names:
                if name != taken:
                    return name
            return names[0]

        rows = self.report_rows if self.report_rows is not None \
            else first_other_than(self.report_cols)
        cols = self.report_cols if self.report_cols is not None \
            else first_other_than(rows)
        return rows, cols


def _parse_point(axis: str, raw: Any) -> AxisPoint:
    """Normalise one axis point (scalar or dict of overrides) to an AxisPoint."""
    if isinstance(raw, dict):
        overrides = {key: value for key, value in raw.items() if key != "label"}
        if not overrides:
            raise CampaignError(
                f"axis {axis!r}: a dict point must override at least one spec field")
        label = raw.get("label")
        if label is None:
            label = ",".join(f"{key}={value}" for key, value in sorted(overrides.items()))
        _check_fields(overrides, context=f"axis {axis!r} point {label!r}")
        return AxisPoint(label=str(label), overrides=tuple(sorted(overrides.items())))
    if isinstance(raw, (list, tuple)):
        raise CampaignError(
            f"axis {axis!r}: points must be scalars or dicts, got {type(raw).__name__}")
    _check_fields({axis: raw}, context=f"axis {axis!r}")
    return AxisPoint(label=str(raw), overrides=((axis, raw),))


def _check_fields(overrides: Dict[str, Any], context: str) -> None:
    unknown = sorted(set(overrides) - set(SPEC_FIELDS))
    if unknown:
        known = ", ".join(SPEC_FIELDS)
        raise CampaignError(
            f"{context}: unknown experiment field(s) {', '.join(map(repr, unknown))}; "
            f"ExperimentSpec fields are: {known}")


def campaign_from_dict(data: Dict[str, Any]) -> CampaignSpec:
    """Parse and validate a campaign spec from its dict form."""
    if not isinstance(data, dict):
        raise CampaignError(f"a campaign spec must be a dict, got {type(data).__name__}")
    unknown = sorted(set(data) - _TOP_LEVEL_KEYS)
    if unknown:
        raise CampaignError(
            f"unknown campaign key(s) {', '.join(map(repr, unknown))}; "
            f"expected a subset of: {', '.join(sorted(_TOP_LEVEL_KEYS))}")
    name = data.get("name")
    if not name or not isinstance(name, str):
        raise CampaignError("a campaign needs a non-empty string 'name'")
    base = data.get("base", {})
    if not isinstance(base, dict):
        raise CampaignError("'base' must be a dict of ExperimentSpec fields")
    _check_fields(base, context="'base'")

    raw_axes = data.get("axes", {})
    if not isinstance(raw_axes, dict) or not raw_axes:
        raise CampaignError("'axes' must be a non-empty dict of axis-name -> points")
    axes: List[Tuple[str, List[AxisPoint]]] = []
    for axis, points in raw_axes.items():
        if not isinstance(points, list) or not points:
            raise CampaignError(f"axis {axis!r} must list at least one point")
        parsed = [_parse_point(axis, point) for point in points]
        labels = [point.label for point in parsed]
        if len(set(labels)) != len(labels):
            raise CampaignError(f"axis {axis!r} has duplicate point labels: {labels}")
        axes.append((axis, parsed))

    runs = data.get("runs", 5)
    if not isinstance(runs, int) or runs < 1:
        raise CampaignError("'runs' must be a positive integer")
    max_steps = data.get("max_steps", 100_000)
    if not isinstance(max_steps, int) or max_steps < 1:
        raise CampaignError("'max_steps' must be a positive integer")
    stability_window = data.get("stability_window", 0)
    if not isinstance(stability_window, int) or stability_window < 0:
        raise CampaignError("'stability_window' must be a non-negative integer")
    base_seed = data.get("base_seed", 0)
    if not isinstance(base_seed, int):
        raise CampaignError("'base_seed' must be an integer")
    priority = data.get("priority", 0)
    if not isinstance(priority, int):
        raise CampaignError("'priority' must be an integer")

    report = data.get("report", {})
    if not isinstance(report, dict):
        raise CampaignError("'report' must be a dict with optional 'rows'/'cols'")
    axis_names = [axis for axis, _ in axes]
    for key in ("rows", "cols"):
        value = report.get(key)
        if value is not None and value not in axis_names:
            raise CampaignError(
                f"report {key}={value!r} is not an axis; axes are: {axis_names}")

    return CampaignSpec(
        name=name,
        base=dict(base),
        axes=axes,
        runs=runs,
        base_seed=base_seed,
        max_steps=max_steps,
        stability_window=stability_window,
        description=str(data.get("description", "")),
        priority=priority,
        report_rows=report.get("rows"),
        report_cols=report.get("cols"),
        source=data,
    )


def campaign_from_file(path: str) -> CampaignSpec:
    """Load a campaign spec from a JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise CampaignError(f"cannot read campaign spec {path!r}: {error}") from None
    except json.JSONDecodeError as error:
        raise CampaignError(f"campaign spec {path!r} is not valid JSON: {error}") from None
    return campaign_from_dict(data)
