"""Campaign reports: fold the result store into Figure-4-style grids.

A report is a **pure function of the plan and the store records** — no
timestamps, hostnames or execution order leak in — which is what makes
the acceptance property hold: an interrupted-and-resumed campaign, whose
store holds the same records in a different append order, renders a
report byte-identical to an uninterrupted run's.

With parallel executors the pin is stated as **fold-equivalence**:
``render_report(plan, records)`` consumes the record *set* — the
``records`` mapping is keyed by content-addressed cell id and every
lookup walks the plan's own cell order, so on-disk append order (which
is completion order under ``--cell-jobs > 1``) cannot reach the output.
One report per record set, whatever executor, pool width, interrupt
point or engine backend produced it; ``tests/test_campaign_executor.py``
pins this against injected completion-order permutations.

Layout: a header (campaign identity + completion summary), one verdict
grid per combination of the non-grid axes (rows/cols chosen by the
campaign's ``report`` section, rendered through the same
:func:`~repro.analysis.reporting.format_grid` that prints the paper's
Figure 4 map), and a per-cell detail table with convergence statistics.

Verdict labels::

    YES (4/4)   every run converged          NO (0/4)   none did
    p=0.50 (2/4) some did                    n/a        structurally infeasible
    ERR         the cell failed to run       ...        not yet run (pending)
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.reporting import format_grid, format_table
from repro.campaign.planner import CampaignPlan, PlannedCell
from repro.campaign.runner import status_of_records
from repro.engine.experiment import ExperimentResult

PENDING_LABEL = "..."
NA_LABEL = "n/a"
ERROR_LABEL = "ERR"


def _verdict(record: Optional[Dict[str, Any]]) -> str:
    if record is None:
        return PENDING_LABEL
    status = record.get("status")
    if status == "na":
        return NA_LABEL
    if status == "error":
        return ERROR_LABEL
    result = record["result"]
    runs, successes = result["runs"], result["successes"]
    if successes == runs:
        return f"YES ({successes}/{runs})"
    if successes == 0:
        return f"NO (0/{runs})"
    return f"p={successes / runs:.2f} ({successes}/{runs})"


def _steps_columns(record: Optional[Dict[str, Any]]) -> Tuple[str, str, str]:
    """(mean, median, max) interactions-to-stabilise, or dashes."""
    if record is None or record.get("status") != "ok":
        return "-", "-", "-"
    result = ExperimentResult.from_dict(record["result"])
    mean = result.mean_convergence_steps
    median = result.median_convergence_steps
    largest = result.max_convergence_steps
    return (
        f"{mean:.0f}" if mean is not None else "-",
        f"{median:.0f}" if median is not None else "-",
        str(largest) if largest is not None else "-",
    )


def render_report(plan: CampaignPlan,
                  records: Dict[str, Dict[str, Any]]) -> str:
    """Render the full campaign report as plain text."""
    campaign = plan.campaign
    lines: List[str] = []
    lines.append(f"campaign: {campaign.name} (grid hash {plan.campaign_hash})")
    if campaign.description:
        lines.append(campaign.description)

    status = status_of_records(plan, records)
    summary = f"cells: {status.done}/{plan.total} done"
    if status.na:
        summary += f", {status.na} n/a"
    if status.errors:
        summary += f", {status.errors} failed"
    if status.pending:
        summary += f", {status.pending} pending"
    lines.append(summary)

    lines.extend(_verdict_grids(plan, records))
    lines.append("")
    lines.append("per-cell details:")
    lines.append(_detail_table(plan, records))
    lines.append("")
    lines.append("YES/NO = all/none of the cell's runs converged, p=x.xx = the")
    lines.append("observed success fraction, n/a = structurally infeasible cell")
    lines.append("(see its reason column), ERR = failed to run, ... = pending.")
    return "\n".join(lines) + "\n"


def _verdict_grids(plan: CampaignPlan,
                   records: Dict[str, Dict[str, Any]]) -> List[str]:
    """One Figure-4-style grid per combination of the non-grid axes."""
    campaign = plan.campaign
    rows_axis, cols_axis = campaign.report_axes()
    axis_points = dict(campaign.axes)
    row_labels = [point.label for point in axis_points[rows_axis]]
    col_labels = [point.label for point in axis_points[cols_axis]]
    # A single-axis campaign (or report rows == cols) degrades to one
    # verdict column instead of fabricating an n x n cross product.
    one_dimensional = rows_axis == cols_axis
    other_axes = [name for name in campaign.axis_names
                  if name not in (rows_axis, cols_axis)]

    by_coordinates: Dict[Tuple[Tuple[str, str], ...], PlannedCell] = {
        cell.coordinates: cell for cell in plan.cells}

    def grid_for(fixed: Dict[str, str]) -> str:
        def verdict_at(coordinates: Dict[str, str]) -> str:
            key = tuple((axis, coordinates[axis]) for axis in campaign.axis_names)
            cell = by_coordinates.get(key)
            if cell is None:
                return PENDING_LABEL
            return _verdict(records.get(cell.cell_id))

        if one_dimensional:
            def cell_text(row_label: object, _col: object) -> str:
                return verdict_at({**fixed, rows_axis: str(row_label)})

            return format_grid(rows_axis, row_labels, ["verdict"], cell_text)

        def cell_text(row_label: object, col_label: object) -> str:
            return verdict_at({**fixed, rows_axis: str(row_label),
                               cols_axis: str(col_label)})

        return format_grid(f"{rows_axis} \\ {cols_axis}", row_labels, col_labels,
                           cell_text)

    lines: List[str] = []
    if not other_axes:
        lines.append("")
        lines.append(grid_for({}))
        return lines
    other_labels = [[point.label for point in axis_points[axis]]
                    for axis in other_axes]
    for combo in itertools.product(*other_labels):
        fixed = dict(zip(other_axes, combo))
        lines.append("")
        # Join over the (axis, label) pairs, not fixed.items(): header
        # bytes must depend on the spec's axis order alone (RPL006).
        lines.append("== " + " ".join(
            f"{axis}={label}" for axis, label in zip(other_axes, combo)) + " ==")
        lines.append(grid_for(fixed))
    return lines


def _detail_table(plan: CampaignPlan,
                  records: Dict[str, Dict[str, Any]]) -> str:
    campaign = plan.campaign
    headers = (["#", "cell"] + campaign.axis_names
               + ["verdict", "mean", "median", "max", "note"])
    rows = []
    for cell in plan.cells:
        record = records.get(cell.cell_id)
        mean, median, largest = _steps_columns(record)
        if record is None:
            note = "pending"
        elif record.get("status") == "na":
            note = record.get("reason", "")
        elif record.get("status") == "error":
            note = record.get("error", "")
        else:
            note = ""
        rows.append([cell.index, cell.cell_id[:8]]
                    + [label for _, label in cell.coordinates]
                    + [_verdict(record), mean, median, largest, note])
    return format_table(headers, rows)
