"""A prioritised in-process cell queue: many campaigns, one scheduler.

The campaign runner and parallel executor each drive *one* campaign.
This module is the multi-tenant layer above them: several pending
campaigns are submitted to one :class:`CampaignQueue`, their cells merge
into a single work list, and one ``drain`` call schedules everything
through one cell-level worker pool — higher-priority campaigns' cells
start first, ties broken by submission order then plan order, so the
schedule is deterministic even though completion order is not.

Content addressing makes the queue deduplicating for free:

* two submitted campaigns whose grids overlap share cell ids, so each
  distinct cell **executes once** — every subscriber campaign receives
  the result;
* a cell already persisted in *any* submitted campaign's store is never
  recomputed — the finished record is delivered to the other stores
  that want it (re-headed with each plan's own index/coordinates, so a
  store populated via the queue is record-identical to one populated by
  running its campaign in isolation).

Campaigns sharing one store must be submitted with the *same* store
object (the natural fit is a :class:`~repro.campaign.store.SharedResultStore`
pool); the queue then appends each shared cell exactly once.

Like the parallel executor, the queue keeps every store single-writer:
workers compute records, the draining thread appends them.  Statuses
mirror :class:`~repro.campaign.runner.CampaignRunStatus` semantics —
``executed_now`` counts cells this drain computed *fresh* for that
campaign; records satisfied from another campaign's cache are tallied
as done without counting as executed.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.planner import CampaignPlan, PlannedCell
from repro.campaign.runner import (
    CampaignRunStatus,
    _cell_record_header,
    _tally,
    build_cell_record,
)
from repro.campaign.store import _BaseStore
from repro.obs.recorder import NULL_RECORDER, get_recorder


@dataclass
class QueuedCampaign:
    """One submitted campaign: its plan, store, priority and fan-out knobs."""

    plan: CampaignPlan
    store: _BaseStore
    priority: int
    order: int
    jobs: int
    jobs_backend: str
    run_chunk: int
    status: CampaignRunStatus

    @property
    def name(self) -> str:
        return self.plan.campaign.name


@dataclass
class _WorkItem:
    """One distinct cell to produce, with every campaign that wants it."""

    cell_id: str
    #: ``(-priority, submission order, plan index)`` of the best subscriber
    #: — the deterministic schedule key (smaller starts first).
    sort_key: Tuple[int, int, int]
    #: ``(campaign, its planned cell)`` pairs, in submission order.
    subscribers: List[Tuple[QueuedCampaign, PlannedCell]] = field(
        default_factory=list)

    @property
    def owner(self) -> Tuple[QueuedCampaign, PlannedCell]:
        """The subscriber whose priority scheduled this item (executes it)."""
        return min(self.subscribers,
                   key=lambda pair: (-pair[0].priority, pair[0].order,
                                     pair[1].index))


def _reheaded(record: dict, cell: PlannedCell) -> dict:
    """``record``'s outcome under ``cell``'s own header fields.

    Cell records carry the owning plan's ``index``/``coordinates``; the
    outcome fields (``status``/``result``/``reason``/``error``) are pure
    functions of the content-addressed cell, so re-heading a record for
    another plan's view of the same cell reproduces exactly what that
    plan would have computed itself.
    """
    fresh = _cell_record_header(cell)
    for key, value in record.items():
        if key not in fresh:
            fresh[key] = value
    return fresh


class CampaignQueue:
    """Accumulate pending campaigns; drain them through one scheduler."""

    def __init__(self) -> None:
        self._entries: List[QueuedCampaign] = []

    @property
    def campaigns(self) -> List[QueuedCampaign]:
        return list(self._entries)

    def submit(self, plan: CampaignPlan, store: _BaseStore, *,
               priority: Optional[int] = None, jobs: int = 1,
               jobs_backend: str = "thread",
               run_chunk: int = 1) -> QueuedCampaign:
        """Enqueue a campaign.  ``priority`` defaults to the spec's own
        ``priority`` field; larger values drain first."""
        entry = QueuedCampaign(
            plan=plan,
            store=store,
            priority=plan.campaign.priority if priority is None else priority,
            order=len(self._entries),
            jobs=jobs,
            jobs_backend=jobs_backend,
            run_chunk=run_chunk,
            status=CampaignRunStatus(total=plan.total),
        )
        self._entries.append(entry)
        return entry

    def drain(self, *, cell_jobs: int = 1,
              progress: Optional[Callable[[str], None]] = None,
              ) -> List[CampaignRunStatus]:
        """Run every pending cell of every submitted campaign.

        Returns the per-campaign statuses in submission order.  Interrupting
        the drain (Ctrl-C) cancels queued cells, lets in-flight ones finish
        and persist, and leaves every store resumable — exactly the
        parallel executor's contract, across campaigns.
        """
        if cell_jobs < 1:
            raise ValueError("cell_jobs must be at least 1")
        emit = progress if progress is not None else (lambda _message: None)
        for entry in self._entries:
            entry.status = CampaignRunStatus(total=entry.plan.total)

        items = self._collect_items()
        queue = sorted(items.values(), key=lambda item: item.sort_key)
        obs = get_recorder()
        if obs is not NULL_RECORDER:
            obs.gauge("queue.campaigns", len(self._entries))
            obs.gauge("queue.depth", len(queue))

        # Satisfy from any submitted store's cache before computing anything:
        # a record persisted by one campaign serves every other subscriber.
        to_run: List[_WorkItem] = []
        for item in queue:
            cached = self._cached_record(item)
            if cached is not None:
                self._deliver(item, cached, emit, executed=False)
            else:
                to_run.append(item)
        if obs is not NULL_RECORDER:
            obs.counter("queue.cache_hits", len(queue) - len(to_run))
            obs.counter("queue.executed", len(to_run))

        if to_run:
            self._execute(to_run, cell_jobs, emit)
        for entry in self._entries:
            entry.status.pending_cells = [
                cell for cell in entry.plan.cells
                if entry.store.record_for(cell.cell_id) is None]
        return [entry.status for entry in self._entries]

    # -- drain internals --------------------------------------------------------

    def _collect_items(self) -> Dict[str, _WorkItem]:
        """Pending cells of every campaign, merged by content address."""
        items: Dict[str, _WorkItem] = {}
        for entry in self._entries:
            for cell in entry.plan.cells:
                existing = entry.store.record_for(cell.cell_id)
                if existing is not None:
                    _tally(entry.status, existing)
                    continue
                key = (-entry.priority, entry.order, cell.index)
                item = items.get(cell.cell_id)
                if item is None:
                    item = _WorkItem(cell_id=cell.cell_id, sort_key=key)
                    items[cell.cell_id] = item
                else:
                    item.sort_key = min(item.sort_key, key)
                item.subscribers.append((entry, cell))
        return items

    def _cached_record(self, item: _WorkItem) -> Optional[dict]:
        """A finished record for this cell in any submitted store, if one
        exists (scanned in submission order, so the source is deterministic)."""
        for entry in self._entries:
            record = entry.store.record_for(item.cell_id)
            if record is not None:
                return record
        return None

    def _deliver(self, item: _WorkItem, record: dict,
                 emit: Callable[[str], None], *, executed: bool) -> None:
        """Hand one finished record to every subscriber lacking it."""
        owner_entry, _ = item.owner
        for entry, cell in item.subscribers:
            if entry.store.record_for(cell.cell_id) is None:
                entry.store.append_cell(_reheaded(record, cell))
                # Per delivered record, not per step: the NullRecorder call
                # is a single no-op method dispatch when telemetry is off.
                get_recorder().counter("queue.delivered")
                if executed and entry is owner_entry:
                    entry.status.executed_now += 1
            _tally(entry.status, entry.store.record_for(cell.cell_id))
            emit(f"[{entry.name}] cell {cell.index + 1}/{entry.plan.total} "
                 f"{record['status']}")

    def _execute(self, to_run: List[_WorkItem], cell_jobs: int,
                 emit: Callable[[str], None]) -> None:
        """Compute the remaining items over the shared worker pool."""
        from repro.campaign.executor import _completed_in_order

        futures: List[Future] = []
        item_of: Dict[Future, _WorkItem] = {}
        try:
            with ThreadPoolExecutor(
                    max_workers=min(cell_jobs, len(to_run))) as pool:
                for item in to_run:
                    entry, cell = item.owner
                    future = pool.submit(
                        build_cell_record, cell, entry.plan, jobs=entry.jobs,
                        jobs_backend=entry.jobs_backend,
                        run_chunk=entry.run_chunk)
                    futures.append(future)
                    item_of[future] = item
                try:
                    for future in _completed_in_order(futures):
                        self._deliver(item_of[future], future.result(), emit,
                                      executed=True)
                except KeyboardInterrupt:
                    for future in futures:
                        future.cancel()
                    raise
        except KeyboardInterrupt:
            for future in futures:
                item = item_of[future]
                owner_entry, owner_cell = item.owner
                if future.done() and not future.cancelled() \
                        and future.exception() is None \
                        and owner_entry.store.record_for(
                            owner_cell.cell_id) is None:
                    self._deliver(item, future.result(), emit, executed=True)
            for entry in self._entries:
                entry.status.interrupted = True
                entry.status.keyboard_interrupt = True
            emit("interrupted — every finished cell is persisted; "
                 "drain again to continue")
