"""Campaign execution: dispatch planned cells and stream results to the store.

The runner walks the plan in cell order, skips every cell the store
already holds, and executes the rest through
:func:`~repro.engine.experiment.repeat_experiment` — each cell fans its
``runs`` seeds out over the existing sequential/thread/process backends
(``jobs``/``jobs_backend``/``run_chunk`` are forwarded untouched), so a
campaign inherits all the determinism guarantees those backends pin:
a cell's result is a pure function of its resolved spec and seed block,
whatever the fan-out.

Interruption is a first-class outcome, not an error: cells are persisted
one by one with atomic appends, so killing the runner between (or during)
cells loses at most the cell in flight.  ``max_cells`` bounds how many
*new* cells one invocation executes — the CI smoke and the resume tests
use it to interrupt campaigns at a deterministic prefix — and a
``KeyboardInterrupt`` mid-campaign is caught, reported, and leaves the
store resumable.  ``repro campaign resume`` is the same walk again: done
cells are skipped by content-addressed id, pending ones run, and the
finished store folds to a report byte-identical to an uninterrupted run.

``cell_jobs > 1`` hands the same walk to the cell-level parallel
executor (:mod:`repro.campaign.executor`): the *set* of cells executed
is identical — the first ``max_cells`` pending cells in plan order —
but they overlap across a worker pool and persist in completion order.
Folds are record-set functions (see :mod:`repro.campaign.store`), so
the serial walk remains the semantic reference the executor is pinned
against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.campaign.planner import CampaignPlan, PlannedCell
from repro.campaign.store import CELL_KIND, ResultStore
from repro.engine.backends import BackendError
from repro.engine.experiment import repeat_experiment
from repro.obs.recorder import NULL_RECORDER, Recorder, get_recorder


@dataclass
class CampaignRunStatus:
    """Where a campaign stands after a runner pass (or a status query)."""

    total: int
    done: int = 0
    na: int = 0
    errors: int = 0
    executed_now: int = 0
    interrupted: bool = False
    #: ``True`` only when a KeyboardInterrupt (not a ``max_cells`` cap)
    #: stopped the walk — the CLI maps it to the conventional exit code 130.
    keyboard_interrupt: bool = False
    pending_cells: List[PlannedCell] = field(default_factory=list)

    @property
    def pending(self) -> int:
        return len(self.pending_cells)

    @property
    def complete(self) -> bool:
        """Every cell is accounted for (result, ``n/a`` verdict, or error)."""
        return self.pending == 0

    def summary(self) -> str:
        parts = [f"{self.done}/{self.total} cells done"]
        if self.na:
            parts.append(f"{self.na} n/a")
        if self.errors:
            parts.append(f"{self.errors} failed")
        if self.pending:
            parts.append(f"{self.pending} pending")
        return ", ".join(parts)


def _tally(status: CampaignRunStatus, record: dict) -> None:
    cell_status = record.get("status")
    if cell_status == "na":
        status.na += 1
        status.done += 1
    elif cell_status == "error":
        status.errors += 1
        status.done += 1
    else:
        status.done += 1


def status_of_records(plan: CampaignPlan, records: dict) -> CampaignRunStatus:
    """Fold cell records (by cell id) against the plan — the one tally used
    by the runner, ``campaign status`` and the report header alike."""
    status = CampaignRunStatus(total=plan.total)
    for cell in plan.cells:
        record = records.get(cell.cell_id)
        if record is None:
            status.pending_cells.append(cell)
        else:
            _tally(status, record)
    return status


def campaign_status(plan: CampaignPlan, store: ResultStore) -> CampaignRunStatus:
    """Fold the store against the plan without executing anything."""
    return status_of_records(plan, store.cell_records)


#: Fallback reasons shown in full by :func:`backend_summary` before it
#: collapses the rest into a count (keeps the preamble bounded on big grids).
MAX_BACKEND_REASONS = 3


def _backend_resolution(plan: CampaignPlan) -> Tuple[dict, List[str]]:
    """Per-backend cell tally and distinct fallback reasons, in plan order."""
    counts: dict = {}
    reasons: List[str] = []
    seen_reasons: set = set()
    for cell in plan.cells:
        if cell.skip_reason is not None:
            continue
        backend = dict(cell.fields).get("backend", "python")
        counts[backend] = counts.get(backend, 0) + 1
        if cell.backend_reason and cell.backend_reason not in seen_reasons:
            seen_reasons.add(cell.backend_reason)
            reasons.append(cell.backend_reason)
    return counts, reasons


def backend_summary(plan: CampaignPlan) -> List[str]:
    """Human-readable lines describing the plan's backend resolution.

    One line tallying executable cells per concrete engine backend, then —
    when ``auto`` cells fell back to the python backend — the first few
    distinct reasons.  Empty when nothing resolved to the array backend and
    no fallback happened (an all-python campaign has no selection story to
    tell); the CLI prints these before running so slow-path cells are
    visible up front.
    """
    counts, reasons = _backend_resolution(plan)
    if not reasons and set(counts) <= {"python"}:
        return []
    tally = ", ".join(f"{count} on {backend}"
                      for backend, count in sorted(counts.items()))
    lines = [f"engine backends: {tally}"]
    for reason in reasons[:MAX_BACKEND_REASONS]:
        lines.append(f"  python fallback: {reason}")
    if len(reasons) > MAX_BACKEND_REASONS:
        lines.append(
            f"  ... and {len(reasons) - MAX_BACKEND_REASONS} more fallback reasons")
    return lines


def _cell_record_header(cell: PlannedCell) -> dict:
    """The fields every persisted cell record shares, whatever its status."""
    return {
        "kind": CELL_KIND,
        "cell_id": cell.cell_id,
        "index": cell.index,
        "coordinates": dict(cell.coordinates),
    }


def _execute_cell(cell: PlannedCell, plan: CampaignPlan, *, jobs: int,
                  jobs_backend: str, run_chunk: int,
                  result_transport: str) -> dict:
    """Run one feasible cell and shape its persistent record."""
    campaign = plan.campaign
    record = _cell_record_header(cell)
    try:
        spec = cell.build_spec()
        result = repeat_experiment(
            spec=spec,
            runs=campaign.runs,
            max_steps=campaign.max_steps,
            stability_window=campaign.stability_window,
            base_seed=campaign.base_seed,
            jobs=jobs,
            jobs_backend=jobs_backend,
            run_chunk=run_chunk,
            trace_policy="counts-only",
            result_transport=result_transport,
        )
    except (BackendError, KeyError, TypeError, ValueError) as error:
        # Per-cell verdicts, not campaign aborts: backend compilation /
        # availability failures, and registry keys or parameters that only
        # fail at build time (the planner validates what it can up front,
        # but e.g. kwargs contents and worker-side registries are only
        # checked by the factories themselves) — record and keep sweeping.
        # KeyError carries its message in args.
        message = error.args[0] if isinstance(error, KeyError) and error.args \
            else str(error)
        record["status"] = "error"
        record["error"] = str(message)
        return record
    record["status"] = "ok"
    record["result"] = result.to_dict()
    return record


def build_cell_record(cell: PlannedCell, plan: CampaignPlan, *, jobs: int = 1,
                      jobs_backend: str = "thread", run_chunk: int = 1,
                      result_transport: str = "pickle") -> dict:
    """The persistent record for one planned cell: ``n/a`` or executed.

    A pure function of (cell, seed block, fan-out knobs) with no store
    access — which is what lets the parallel executor and the cell queue
    call it from worker threads while a single writer owns the store.
    ``result_transport`` rides along with the other fan-out knobs
    (mechanism only — records are byte-identical for every transport);
    even under the shm transport the record returned here is plain data,
    so the main thread stays the store's only appender.

    This is also the one per-cell observability seam: every executor —
    the serial walk, the parallel pool, the multi-campaign queue — funnels
    through here, so per-cell wall time and verdicts are recorded exactly
    once per computed cell, whatever scheduled it.  Telemetry is
    write-only: the returned record never carries it.
    """
    obs = get_recorder()
    if obs is NULL_RECORDER:
        return _build_record(cell, plan, jobs, jobs_backend, run_chunk,
                             result_transport)
    begin = time.perf_counter()
    record = _build_record(cell, plan, jobs, jobs_backend, run_chunk,
                           result_transport)
    seconds = time.perf_counter() - begin
    status = record["status"]
    obs.counter(f"campaign.cells.{status}")
    obs.observe("campaign.cell_seconds", seconds)
    obs.event("campaign.cell", cell_id=cell.cell_id, index=cell.index,
              status=status, seconds=round(seconds, 6),
              backend=dict(cell.fields).get("backend", "python"))
    return record


def _build_record(cell: PlannedCell, plan: CampaignPlan, jobs: int,
                  jobs_backend: str, run_chunk: int,
                  result_transport: str) -> dict:
    """The uninstrumented record build behind :func:`build_cell_record`."""
    if cell.skip_reason is not None:
        record = _cell_record_header(cell)
        record["status"] = "na"
        record["reason"] = cell.skip_reason
        return record
    return _execute_cell(cell, plan, jobs=jobs, jobs_backend=jobs_backend,
                         run_chunk=run_chunk, result_transport=result_transport)


def progress_line(cell: PlannedCell, total: int, record: dict) -> str:
    """The one-line progress message for a finished cell (all executors)."""
    labels = " ".join(f"{axis}={label}" for axis, label in cell.coordinates)
    prefix = f"cell {cell.index + 1}/{total} [{labels}]"
    if record["status"] == "na":
        return f"{prefix} n/a: {record['reason']}"
    if record["status"] == "error":
        return f"{prefix} ERROR: {record['error']}"
    result = record["result"]
    return f"{prefix} {result['successes']}/{result['runs']} runs converged"


INTERRUPT_MESSAGE = ("interrupted — every finished cell is persisted; "
                     "run `repro campaign resume` to continue")


def run_campaign(
    plan: CampaignPlan,
    store: ResultStore,
    *,
    jobs: int = 1,
    jobs_backend: str = "thread",
    run_chunk: int = 1,
    max_cells: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    cell_jobs: int = 1,
    result_transport: str = "pickle",
) -> CampaignRunStatus:
    """Execute every pending cell of ``plan``, streaming records to ``store``.

    ``max_cells`` caps the number of cells *newly executed* by this call
    (``None`` = no cap); the return value reports ``interrupted=True`` when
    the cap stopped the walk early.  ``progress`` (e.g. ``print``) receives
    one line per cell.  ``cell_jobs > 1`` overlaps independent cells across
    a worker pool (:func:`repro.campaign.executor.run_campaign_parallel`);
    the executed cell *set* and the folded results are identical to this
    serial walk for every value.
    """
    if max_cells is not None and max_cells < 1:
        raise ValueError("max_cells must be at least 1")
    if cell_jobs < 1:
        raise ValueError("cell_jobs must be at least 1")
    obs = get_recorder()
    begin = 0.0 if obs is NULL_RECORDER else time.perf_counter()
    if obs is not NULL_RECORDER:
        record_campaign_planned(obs, plan)
    if cell_jobs > 1:
        from repro.campaign.executor import run_campaign_parallel
        status = run_campaign_parallel(
            plan, store, cell_jobs=cell_jobs, jobs=jobs,
            jobs_backend=jobs_backend, run_chunk=run_chunk,
            max_cells=max_cells, progress=progress,
            result_transport=result_transport)
    else:
        status = _run_campaign_serial(
            plan, store, jobs=jobs, jobs_backend=jobs_backend,
            run_chunk=run_chunk, max_cells=max_cells, progress=progress,
            result_transport=result_transport)
    if obs is not NULL_RECORDER:
        _record_campaign_done(obs, plan, status,
                              time.perf_counter() - begin)
    return status


def record_campaign_planned(obs: Recorder, plan: CampaignPlan) -> None:
    """Emit the campaign-start event plus the plan's backend resolution.

    The fallback reasons :func:`backend_summary` prints once also land in
    the event sink here (one structured event per distinct reason), so
    "why did these cells run on python?" survives past the terminal.
    """
    obs.event("campaign.start", name=plan.campaign.name, total=plan.total)
    counts, reasons = _backend_resolution(plan)
    if counts:
        obs.event("campaign.backends",
                  **{backend: count for backend, count in sorted(counts.items())})
    for reason in reasons:
        obs.event("campaign.backend_fallback", backend="python", reason=reason)


def _record_campaign_done(obs: Recorder, plan: CampaignPlan,
                          status: CampaignRunStatus, seconds: float) -> None:
    """Fold one runner pass's outcome into metrics plus the end event."""
    store_hits = status.done - status.executed_now
    obs.counter("campaign.cells.skipped", store_hits)
    obs.observe("campaign.seconds", seconds)
    if seconds > 0:
        obs.gauge("campaign.cells_per_s", status.executed_now / seconds)
    obs.event("campaign.end", name=plan.campaign.name, total=plan.total,
              done=status.done, executed=status.executed_now,
              skipped=store_hits, errors=status.errors, na=status.na,
              interrupted=status.interrupted, seconds=round(seconds, 6))


def _run_campaign_serial(
    plan: CampaignPlan,
    store: ResultStore,
    *,
    jobs: int,
    jobs_backend: str,
    run_chunk: int,
    max_cells: Optional[int],
    progress: Optional[Callable[[str], None]],
    result_transport: str,
) -> CampaignRunStatus:
    """The serial reference walk behind :func:`run_campaign`."""
    emit = progress if progress is not None else (lambda _message: None)
    status = CampaignRunStatus(total=plan.total)
    try:
        for cell in plan.cells:
            existing = store.record_for(cell.cell_id)
            if existing is not None:
                _tally(status, existing)
                continue
            if max_cells is not None and status.executed_now >= max_cells:
                status.interrupted = True
                break
            record = build_cell_record(
                cell, plan, jobs=jobs, jobs_backend=jobs_backend,
                run_chunk=run_chunk, result_transport=result_transport)
            emit(progress_line(cell, plan.total, record))
            store.append_cell(record)
            status.executed_now += 1
            _tally(status, record)
    except KeyboardInterrupt:
        status.interrupted = True
        status.keyboard_interrupt = True
        emit(INTERRUPT_MESSAGE)
    status.pending_cells = [
        cell for cell in plan.cells if store.record_for(cell.cell_id) is None]
    return status
