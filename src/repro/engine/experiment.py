"""Batch experiment runner.

Most of the benchmark harness follows the same pattern: run the same system
(program, model, adversary) with many random-scheduler seeds, check a
per-run success criterion, and aggregate convergence statistics.  This
module factors that pattern out so benchmarks and integration tests stay
declarative.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.engine.convergence import ConvergenceResult, run_until_stable
from repro.engine.engine import SimulationEngine
from repro.interaction.models import InteractionModel
from repro.protocols.state import Configuration
from repro.scheduling.scheduler import RandomScheduler


@dataclass
class ExperimentResult:
    """Aggregate outcome of repeated runs of the same system."""

    runs: int
    successes: int
    convergence_steps: List[int] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        """Fraction of runs that satisfied the success criterion."""
        if self.runs == 0:
            return 0.0
        return self.successes / self.runs

    @property
    def all_succeeded(self) -> bool:
        return self.runs > 0 and self.successes == self.runs

    @property
    def mean_convergence_steps(self) -> Optional[float]:
        """Mean number of interactions to convergence over successful runs."""
        if not self.convergence_steps:
            return None
        return statistics.fmean(self.convergence_steps)

    @property
    def median_convergence_steps(self) -> Optional[float]:
        if not self.convergence_steps:
            return None
        return statistics.median(self.convergence_steps)

    @property
    def max_convergence_steps(self) -> Optional[int]:
        if not self.convergence_steps:
            return None
        return max(self.convergence_steps)

    def summary(self) -> str:
        """One-line human-readable summary."""
        mean = self.mean_convergence_steps
        mean_text = f"{mean:.0f}" if mean is not None else "-"
        return (
            f"runs={self.runs} success={self.successes}/{self.runs} "
            f"mean-steps={mean_text}"
        )


def repeat_experiment(
    program: Any,
    model: InteractionModel,
    initial_configuration: Configuration,
    predicate: Callable[[Configuration], bool],
    runs: int = 10,
    max_steps: int = 100_000,
    stability_window: int = 0,
    base_seed: int = 0,
    adversary_factory: Optional[Callable[[int], Any]] = None,
    validate: Optional[Callable[[ConvergenceResult], Optional[str]]] = None,
) -> ExperimentResult:
    """Run the same system ``runs`` times with different scheduler seeds.

    Parameters
    ----------
    predicate:
        Convergence predicate on configurations; a run "succeeds" when the
        predicate stabilises within ``max_steps`` interactions.
    adversary_factory:
        Optional callable mapping the run index to a fresh adversary
        instance (adversaries are stateful, so each run needs its own).
    validate:
        Optional extra per-run validation executed on the
        :class:`ConvergenceResult`; it returns ``None`` when the run is
        acceptable, or an error string which marks the run as failed (used
        e.g. to verify the simulation matching on top of convergence).
    """
    result = ExperimentResult(runs=0, successes=0)
    n = len(initial_configuration)
    for run_index in range(runs):
        scheduler = RandomScheduler(n, seed=base_seed + run_index)
        adversary = adversary_factory(run_index) if adversary_factory else None
        engine = SimulationEngine(program, model, scheduler, adversary=adversary)
        outcome = run_until_stable(
            engine,
            initial_configuration,
            predicate,
            max_steps=max_steps,
            stability_window=stability_window,
        )
        result.runs += 1
        failure: Optional[str] = None
        if not outcome.converged:
            failure = f"run {run_index}: did not converge within {max_steps} steps"
        elif validate is not None:
            error = validate(outcome)
            if error is not None:
                failure = f"run {run_index}: {error}"
        if failure is None:
            result.successes += 1
            if outcome.steps_to_convergence is not None:
                result.convergence_steps.append(outcome.steps_to_convergence)
        else:
            result.failures.append(failure)
    return result
