"""Batch experiment runner.

Most of the benchmark harness follows the same pattern: run the same system
(program, model, adversary) with many random-scheduler seeds, check a
per-run success criterion, and aggregate convergence statistics.  This
module factors that pattern out so benchmarks and integration tests stay
declarative.

Two fan-out backends are available for ``runs > 1``:

``thread`` (default)
    A :class:`~concurrent.futures.ThreadPoolExecutor` sharing the live
    ``program``/``model`` objects.  Cheap to start and sufficient whenever
    runs spend their time outside the GIL — but pure-Python protocols are
    CPU-bound, so threads serialize on the interpreter lock.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` fed **registry keys
    and seeds instead of closures**: the experiment must be described by a
    picklable :class:`~repro.protocols.registry.ExperimentSpec`, which each
    worker resolves against its own imported registries
    (:mod:`repro.protocols.registry`).  This sidesteps the GIL for
    CPU-heavy protocols at the cost of per-run result pickling.

For short runs that pickling dominates: ``run_chunk=K`` ships seeds in
batches of ``K`` consecutive run indices per executor task
(:func:`run_spec_batch`), amortizing task submission and result transfer
over the whole batch — one future, one pickled list, instead of ``K`` of
each.  Batches are merged per-batch in submission order, so the aggregate
stays deterministic.

On top of chunking, ``result_transport`` selects *how* a batch's results
cross the process boundary: ``pickle`` (the seed path — one pickled
result list per batch) or ``shm`` (:mod:`repro.engine.transport` — the
batch's counts-only results come back as fixed-width int64 rows in a
shared-memory arena, with a pickle overflow lane for traces and ring
dumps), with ``auto`` picking shm exactly when the fan-out crosses
processes, the trace policy is counts-only and shared memory is usable.
Purely a mechanism knob: the merged aggregate is identical for every
transport.

Whatever the backend and chunking, results merge in run-index order, so
for a given spec and seed the aggregate :class:`ExperimentResult` is
identical across sequential, thread and process execution and across
every ``run_chunk``.
"""

from __future__ import annotations

import statistics
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.engine.convergence import ConvergenceResult, run_until_stable
from repro.engine.engine import SimulationEngine
from repro.engine.fastpath import IncrementalPredicate
from repro.engine.transport import (
    ShmBatch,
    decode_batch,
    dispose_batch,
    encode_batch,
    resolve_transport,
)
from repro.obs.recorder import NULL_RECORDER, Recorder, get_recorder
from repro.interaction.models import InteractionModel
from repro.protocols.registry import ExperimentSpec, build_cached, resolved_spec
from repro.protocols.state import Configuration
from repro.scheduling.scheduler import RandomScheduler

#: The selectable fan-out backends for ``repeat_experiment(jobs > 1)``.
JOBS_BACKENDS = ("thread", "process")


#: Trailing windows kept per aggregate result under the ``ring`` policy
#: (memory bound: windows are ring-size-bounded, but runs are not).
MAX_FAILURE_DUMPS = 3


@dataclass
class ExperimentResult:
    """Aggregate outcome of repeated runs of the same system."""

    runs: int
    successes: int
    convergence_steps: List[int] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    #: Under the ``ring`` trace policy: ``(run_index, last_steps)`` for the
    #: first :data:`MAX_FAILURE_DUMPS` failed runs, so callers (the CLI crash
    #: dump) can show what the run was doing when it failed to converge.
    failure_dumps: List[tuple] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        """Fraction of runs that satisfied the success criterion."""
        if self.runs == 0:
            return 0.0
        return self.successes / self.runs

    @property
    def all_succeeded(self) -> bool:
        return self.runs > 0 and self.successes == self.runs

    @property
    def mean_convergence_steps(self) -> Optional[float]:
        """Mean number of interactions to convergence over successful runs."""
        if not self.convergence_steps:
            return None
        return statistics.fmean(self.convergence_steps)

    @property
    def median_convergence_steps(self) -> Optional[float]:
        if not self.convergence_steps:
            return None
        return statistics.median(self.convergence_steps)

    @property
    def max_convergence_steps(self) -> Optional[int]:
        if not self.convergence_steps:
            return None
        return max(self.convergence_steps)

    def summary(self) -> str:
        """One-line human-readable summary."""
        mean = self.mean_convergence_steps
        mean_text = f"{mean:.0f}" if mean is not None else "-"
        return (
            f"runs={self.runs} success={self.successes}/{self.runs} "
            f"mean-steps={mean_text}"
        )

    def to_dict(self) -> dict:
        """Plain-data form for persistence (the campaign result store).

        ``failure_dumps`` is deliberately dropped: trailing
        :class:`~repro.engine.trace.TraceStep` windows are live objects, and
        stores hold only JSON-serialisable data.
        """
        return {
            "runs": self.runs,
            "successes": self.successes,
            "convergence_steps": list(self.convergence_steps),
            "failures": list(self.failures),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        """Rebuild a result persisted by :meth:`to_dict`."""
        return cls(
            runs=data["runs"],
            successes=data["successes"],
            convergence_steps=list(data.get("convergence_steps", ())),
            failures=list(data.get("failures", ())),
        )


def run_spec(
    spec: ExperimentSpec,
    run_index: int,
    base_seed: int,
    max_steps: int,
    stability_window: int,
    trace_policy: str,
    ring_size: Optional[int] = None,
    materialize_final: bool = True,
) -> ConvergenceResult:
    """Execute one seeded run of ``spec`` (the process-pool worker function).

    Top-level by design: process backends ship this function by qualified
    name plus its picklable arguments.  The spec build (protocol, simulator,
    initial configuration) is memoised per process, so a worker executing
    many runs of the same spec pays for it once.

    The scheduler, adversary and predicate, by contrast, are built fresh
    here for *every* run.  For the adversary this is load-bearing, not just
    hygiene: a stop condition ending a run mid-chunk leaves the adversary's
    internal state (RNG position, omission-budget counters) planned up to
    one chunk ahead of the last executed interaction (see
    :mod:`repro.engine.fastpath`), so an instance carried over from such a
    run would start the next run from a drifted position.  Pinned by
    ``tests/test_experiment_fresh_state.py``.

    A spec still carrying ``backend="auto"`` is resolved here as a last
    line of defence (the CLI and campaign planner resolve earlier, before
    any hashing); resolution is deterministic in the spec and trace policy,
    so every worker pins the same concrete backend.
    """
    spec, _ = resolved_spec(spec, trace_policy)
    built = build_cached(spec)
    seed = base_seed + run_index
    engine = SimulationEngine(
        built.program,
        built.model,
        built.make_scheduler(seed),
        adversary=built.make_adversary(seed),
        backend=spec.backend,
    )
    return run_until_stable(
        engine,
        built.initial_configuration,
        built.make_predicate(),
        max_steps=max_steps,
        stability_window=stability_window,
        trace_policy=trace_policy,
        ring_size=ring_size,
        chunk_size=spec.chunk_size,
        materialize_final=materialize_final,
    )


def run_spec_batch(
    spec: ExperimentSpec,
    start_index: int,
    count: int,
    base_seed: int,
    max_steps: int,
    stability_window: int,
    trace_policy: str,
    ring_size: Optional[int] = None,
    materialize_final: bool = True,
) -> List[ConvergenceResult]:
    """Execute ``count`` consecutive seeded runs of ``spec`` in one worker task.

    The chunked-fan-out worker (``run_chunk > 1``): one submitted task —
    and, on the process backend, one pickled argument tuple and one
    pickled result list — covers run indices ``start_index ..
    start_index + count - 1``, amortizing the per-run dispatch overhead
    that dominates short runs.  Results come back in run-index order.
    """
    return [
        run_spec(
            spec, start_index + offset, base_seed, max_steps, stability_window,
            trace_policy, ring_size, materialize_final)
        for offset in range(count)
    ]


def run_spec_batch_shm(
    spec: ExperimentSpec,
    start_index: int,
    count: int,
    base_seed: int,
    max_steps: int,
    stability_window: int,
    trace_policy: str,
    ring_size: Optional[int] = None,
) -> ShmBatch:
    """:func:`run_spec_batch` through the shared-memory encoder.

    The shm-transport worker function: the batch's columnar-eligible
    results come back as one shared-memory arena named by the returned
    descriptor, everything else on the descriptor's pickle overflow lane.
    The arena's ownership passes to the parent with the descriptor
    (:func:`~repro.engine.transport.decode_batch` unlinks it); a worker
    failing mid-encode unlinks before propagating, so crashes leak
    nothing.

    When the run configuration guarantees every result is columnar-eligible
    (``counts-only`` policy, no ring buffer — so no traces, no failure
    dumps), the runs skip materialising ``result.final`` entirely
    (``materialize_final=False``): backends with a counts export then never
    decode the final configuration into python objects, which is the
    "columnar export without the python-object detour" half of the
    transport's win.
    """
    materialize_final = not (trace_policy == "counts-only" and ring_size is None)
    return encode_batch(run_spec_batch(
        spec, start_index, count, base_seed, max_steps, stability_window,
        trace_policy, ring_size, materialize_final))


def repeat_experiment(
    program: Any = None,
    model: Optional[InteractionModel] = None,
    initial_configuration: Optional[Configuration] = None,
    predicate: Any = None,
    runs: int = 10,
    max_steps: int = 100_000,
    stability_window: int = 0,
    base_seed: int = 0,
    adversary_factory: Optional[Callable[[int], Any]] = None,
    validate: Optional[Callable[[ConvergenceResult], Optional[str]]] = None,
    jobs: int = 1,
    trace_policy: Optional[str] = None,
    predicate_factory: Optional[Callable[[int], Any]] = None,
    jobs_backend: str = "thread",
    spec: Optional[ExperimentSpec] = None,
    ring_size: Optional[int] = None,
    run_chunk: int = 1,
    result_transport: str = "pickle",
) -> ExperimentResult:
    """Run the same system ``runs`` times with different scheduler seeds.

    The system is described either by live objects (``program``, ``model``,
    ``initial_configuration``, ``predicate``/``predicate_factory``,
    ``adversary_factory`` — the original API, thread/sequential backends
    only) or by a picklable ``spec`` (required for the process backend,
    accepted by every backend; the live-object parameters must then be
    omitted).

    Parameters
    ----------
    predicate:
        Convergence predicate on configurations (plain callable or
        :class:`~repro.engine.fastpath.IncrementalPredicate`); a run
        "succeeds" when the predicate stabilises within ``max_steps``
        interactions.
    adversary_factory:
        Optional callable mapping the run index to a fresh adversary
        instance (adversaries are stateful, so each run needs its own).
    validate:
        Optional extra per-run validation executed on the
        :class:`ConvergenceResult`; it returns ``None`` when the run is
        acceptable, or an error string which marks the run as failed (used
        e.g. to verify the simulation matching on top of convergence).
        Always runs in the parent process, whatever the backend.
    jobs:
        Number of workers for the per-seed fan-out.  Runs are dispatched to
        the selected backend and merged back in run-index order, so the
        aggregate result is deterministic and identical to the sequential
        one.  On the thread backend, ``program`` and ``model`` are shared
        across workers and must be stateless (all catalog protocols and
        simulators are); schedulers and adversaries are per-run.
    jobs_backend:
        ``"thread"`` (default) or ``"process"``.  The process backend
        requires ``spec``: workers receive only the spec and seeds —
        registry keys instead of closures — and return picklable
        :class:`ConvergenceResult` values.
    trace_policy:
        Trace policy forwarded to :func:`run_until_stable`.  Defaults to
        ``"counts-only"`` (the fast path — the aggregate only needs counts)
        unless ``validate`` is given, in which case the full trace is
        recorded so validators can inspect it.
    predicate_factory:
        Optional callable mapping the run index to a fresh predicate;
        required instead of ``predicate`` when using a *stateful*
        incremental predicate with ``jobs > 1``.
    spec:
        Picklable :class:`~repro.protocols.registry.ExperimentSpec`
        describing the whole system; mutually exclusive with the
        live-object parameters.  Every run builds fresh predicates and
        adversaries from the spec's registry keys, so stateful incremental
        predicates need no ``predicate_factory`` here.
    ring_size:
        Window size forwarded to :func:`run_until_stable` under the
        ``ring`` trace policy; the trailing windows of the first few
        failed runs surface on ``ExperimentResult.failure_dumps``.
    run_chunk:
        Consecutive run indices shipped per executor task (default 1).
        Larger chunks amortize per-run task submission — and, on the
        process backend, per-run argument/result pickling, which
        dominates short runs — at the cost of coarser load balancing.
        Purely a throughput knob: results are identical for every value.
    result_transport:
        How process-backend batches ship results back: ``"pickle"``
        (default — one pickled result list per batch), ``"shm"`` (the
        zero-copy shared-memory transport of
        :mod:`repro.engine.transport`; requires
        ``jobs_backend="process"`` and raises
        :class:`~repro.engine.transport.TransportError` when shared
        memory is unusable), or ``"auto"`` (shm exactly when the process
        fan-out runs under a counts-only policy and shared memory works,
        warning and falling back to pickle otherwise).  Like
        ``run_chunk``, purely a mechanism knob: the merged aggregate is
        identical for every transport.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if run_chunk < 1:
        raise ValueError("run_chunk must be at least 1")
    if jobs_backend not in JOBS_BACKENDS:
        raise ValueError(
            f"unknown jobs_backend {jobs_backend!r}; expected one of {JOBS_BACKENDS}")
    if spec is not None:
        conflicting = [
            name for name, value in (
                ("program", program),
                ("model", model),
                ("initial_configuration", initial_configuration),
                ("predicate", predicate),
                ("predicate_factory", predicate_factory),
                ("adversary_factory", adversary_factory),
            ) if value is not None
        ]
        if conflicting:
            raise ValueError(
                "spec fully describes the system; do not also pass "
                + ", ".join(conflicting))
    elif jobs_backend == "process":
        raise ValueError(
            "the process backend ships registry keys, not closures; "
            "describe the experiment with an ExperimentSpec (spec=...)")
    if jobs > 1 and predicate_factory is None and isinstance(predicate, IncrementalPredicate):
        raise ValueError(
            "incremental predicates are stateful; pass predicate_factory "
            "instead of a shared predicate when jobs > 1"
        )
    if validate is not None and trace_policy not in (None, "full"):
        raise ValueError(
            "validate inspects the full trace; it cannot be combined with "
            f"trace_policy={trace_policy!r}"
        )
    policy = trace_policy if trace_policy is not None else (
        "full" if validate is not None else "counts-only"
    )
    transport = resolve_transport(
        result_transport, jobs_backend=jobs_backend, trace_policy=policy,
        process_fanout=(jobs > 1 and runs > 1 and jobs_backend == "process"))

    if spec is not None and spec.backend == "auto":
        # Resolve once up front (against the run's actual trace policy) so
        # every fan-out mode — sequential, thread, process, any run_chunk —
        # executes the same concrete backend.
        spec, _ = resolved_spec(spec, policy)

    if spec is not None:
        def execute_run(run_index: int) -> ConvergenceResult:
            return run_spec(
                spec, run_index, base_seed, max_steps, stability_window, policy,
                ring_size)
    else:
        n = len(initial_configuration)

        def execute_run(run_index: int) -> ConvergenceResult:
            scheduler = RandomScheduler(n, seed=base_seed + run_index)
            adversary = adversary_factory(run_index) if adversary_factory else None
            engine = SimulationEngine(program, model, scheduler, adversary=adversary)
            run_predicate = (
                predicate_factory(run_index) if predicate_factory is not None else predicate
            )
            return run_until_stable(
                engine,
                initial_configuration,
                run_predicate,
                max_steps=max_steps,
                stability_window=stability_window,
                trace_policy=policy,
                ring_size=ring_size,
            )

    result = ExperimentResult(runs=0, successes=0)

    def merge(run_index: int, outcome: ConvergenceResult) -> None:
        result.runs += 1
        failure: Optional[str] = None
        if not outcome.converged:
            failure = f"run {run_index}: did not converge within {max_steps} steps"
        elif validate is not None:
            error = validate(outcome)
            if error is not None:
                failure = f"run {run_index}: {error}"
        if failure is None:
            result.successes += 1
            if outcome.steps_to_convergence is not None:
                result.convergence_steps.append(outcome.steps_to_convergence)
        else:
            result.failures.append(failure)
            if outcome.last_steps and len(result.failure_dumps) < MAX_FAILURE_DUMPS:
                result.failure_dumps.append((run_index, outcome.last_steps))

    obs = get_recorder()
    if jobs > 1 and runs > 1:
        workers = min(jobs, runs)
        if obs is not NULL_RECORDER:
            obs.counter(f"fanout.backend.{jobs_backend}")
            obs.counter(f"fanout.transport.{transport}")
            obs.gauge("fanout.workers", workers)
        if jobs_backend == "process":
            if transport == "shm":
                worker, receive, dispose = \
                    run_spec_batch_shm, decode_batch, dispose_batch
            else:
                worker, receive, dispose = run_spec_batch, None, None
            with ProcessPoolExecutor(max_workers=workers) as executor:
                submit = lambda start, count: executor.submit(  # noqa: E731
                    worker, spec, start, count, base_seed, max_steps,
                    stability_window, policy, ring_size)
                if obs is not NULL_RECORDER:
                    # Worker processes start with the NullRecorder, so
                    # engine counters stay parent-side; what the parent can
                    # see — batch latency and the transport lane each batch
                    # actually rode — is recorded here.
                    submit = _timed_submit(obs, submit)
                    receive = _counted_receive(obs, receive)
                _merge_windowed(submit, runs, run_chunk, workers, merge,
                                receive=receive, dispose=dispose)
        else:
            def execute_batch(start: int, count: int) -> List[ConvergenceResult]:
                return [execute_run(start + offset) for offset in range(count)]

            with ThreadPoolExecutor(max_workers=workers) as executor:
                submit = lambda start, count: executor.submit(  # noqa: E731
                    execute_batch, start, count)
                if obs is not NULL_RECORDER:
                    submit = _timed_submit(obs, submit)
                _merge_windowed(submit, runs, run_chunk, workers, merge)
    else:
        if obs is not NULL_RECORDER:
            obs.counter("fanout.backend.sequential")
        for run_index in range(runs):
            merge(run_index, execute_run(run_index))
    return result


def _timed_submit(obs: Recorder, submit: Callable) -> Callable:
    """Wrap a batch ``submit`` to observe submit-to-completion latency.

    The sample covers queue wait plus worker execution (what a batch
    actually costs the fan-out); the done-callback runs on executor
    threads, which the metric recorders are safe against.
    """
    def timed(start: int, count: int) -> Any:
        begin = time.perf_counter()
        future = submit(start, count)
        future.add_done_callback(
            lambda _future: obs.observe(
                "fanout.batch_seconds", time.perf_counter() - begin))
        return future
    return timed


def _counted_receive(obs: Recorder, receive: Optional[Callable]) -> Callable:
    """Wrap the fan-out ``receive`` hook to count transport lane usage.

    Shm batches record their columnar row count, arena bytes and pickle
    overflow; plain pickled batches record batch/result counts — so a
    sink shows exactly how results crossed the process boundary.
    """
    def counted(payload: Any) -> List[ConvergenceResult]:
        results = receive(payload) if receive is not None else payload
        if isinstance(payload, ShmBatch):
            columnar = payload.count - len(payload.overflow)
            obs.counter("transport.shm.batches")
            obs.counter("transport.shm.rows", columnar)
            obs.counter("transport.shm.overflow_results", len(payload.overflow))
            obs.counter("transport.shm.bytes",
                        columnar * (4 + len(payload.states)) * 8)
        else:
            obs.counter("transport.pickle.batches")
            obs.counter("transport.pickle.results", len(results))
        return results
    return counted


def _merge_windowed(submit, runs: int, run_chunk: int, workers: int, merge,
                    receive=None, dispose=None) -> None:
    """Submit batch futures, merging in submission order as they stream in.

    ``submit(start, count)`` must return a future resolving to the batch
    payload for run indices ``start .. start + count - 1``; runs are
    carved into batches of ``run_chunk`` consecutive indices.  Keeps at
    most ``2 * workers`` batches outstanding: with full traces,
    materialising every result (or letting completed futures pile up
    behind a slow early batch) would hold up to ``runs x max_steps``
    steps in memory.  Merging strictly in submission order is what makes
    the fan-out deterministic for every backend and chunking.

    ``receive`` maps a future's payload to its
    :class:`ConvergenceResult` list (the shm transport's
    decode-and-unlink hook; identity when ``None`` — the payload already
    is the list).  ``dispose`` releases a payload that will never be
    received: when a worker or the merge raises mid-stream, the cleanup
    path cancels what it can, waits out the batches already in flight,
    and disposes each delivered payload — so no shared-memory arena
    outlives a failed or interrupted fan-out.
    """
    window = 2 * workers
    pending: deque = deque()
    merged = 0

    def drain_one() -> None:
        nonlocal merged
        payload = pending.popleft().result()
        for outcome in (receive(payload) if receive is not None else payload):
            merge(merged, outcome)
            merged += 1

    completed = False
    try:
        for start in range(0, runs, run_chunk):
            pending.append(submit(start, min(run_chunk, runs - start)))
            if len(pending) >= window:
                drain_one()
        while pending:
            drain_one()
        completed = True
    finally:
        if not completed and dispose is not None:
            for future in pending:
                future.cancel()
            for future in pending:
                # exception() waits for in-flight batches (they cannot be
                # stopped mid-run) and returns rather than raises, so one
                # crashed worker cannot mask the disposal of the others.
                if not future.cancelled() and future.exception() is None:
                    dispose(future.result())
