"""Batch experiment runner.

Most of the benchmark harness follows the same pattern: run the same system
(program, model, adversary) with many random-scheduler seeds, check a
per-run success criterion, and aggregate convergence statistics.  This
module factors that pattern out so benchmarks and integration tests stay
declarative.
"""

from __future__ import annotations

import statistics
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.engine.convergence import ConvergenceResult, run_until_stable
from repro.engine.engine import SimulationEngine
from repro.engine.fastpath import IncrementalPredicate
from repro.interaction.models import InteractionModel
from repro.protocols.state import Configuration
from repro.scheduling.scheduler import RandomScheduler


@dataclass
class ExperimentResult:
    """Aggregate outcome of repeated runs of the same system."""

    runs: int
    successes: int
    convergence_steps: List[int] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        """Fraction of runs that satisfied the success criterion."""
        if self.runs == 0:
            return 0.0
        return self.successes / self.runs

    @property
    def all_succeeded(self) -> bool:
        return self.runs > 0 and self.successes == self.runs

    @property
    def mean_convergence_steps(self) -> Optional[float]:
        """Mean number of interactions to convergence over successful runs."""
        if not self.convergence_steps:
            return None
        return statistics.fmean(self.convergence_steps)

    @property
    def median_convergence_steps(self) -> Optional[float]:
        if not self.convergence_steps:
            return None
        return statistics.median(self.convergence_steps)

    @property
    def max_convergence_steps(self) -> Optional[int]:
        if not self.convergence_steps:
            return None
        return max(self.convergence_steps)

    def summary(self) -> str:
        """One-line human-readable summary."""
        mean = self.mean_convergence_steps
        mean_text = f"{mean:.0f}" if mean is not None else "-"
        return (
            f"runs={self.runs} success={self.successes}/{self.runs} "
            f"mean-steps={mean_text}"
        )


def repeat_experiment(
    program: Any,
    model: InteractionModel,
    initial_configuration: Configuration,
    predicate: Any,
    runs: int = 10,
    max_steps: int = 100_000,
    stability_window: int = 0,
    base_seed: int = 0,
    adversary_factory: Optional[Callable[[int], Any]] = None,
    validate: Optional[Callable[[ConvergenceResult], Optional[str]]] = None,
    jobs: int = 1,
    trace_policy: Optional[str] = None,
    predicate_factory: Optional[Callable[[int], Any]] = None,
) -> ExperimentResult:
    """Run the same system ``runs`` times with different scheduler seeds.

    Parameters
    ----------
    predicate:
        Convergence predicate on configurations (plain callable or
        :class:`~repro.engine.fastpath.IncrementalPredicate`); a run
        "succeeds" when the predicate stabilises within ``max_steps``
        interactions.
    adversary_factory:
        Optional callable mapping the run index to a fresh adversary
        instance (adversaries are stateful, so each run needs its own).
    validate:
        Optional extra per-run validation executed on the
        :class:`ConvergenceResult`; it returns ``None`` when the run is
        acceptable, or an error string which marks the run as failed (used
        e.g. to verify the simulation matching on top of convergence).
    jobs:
        Number of worker threads for the per-seed fan-out.  Runs are
        dispatched via :class:`concurrent.futures.ThreadPoolExecutor` and
        merged back in run-index order, so the aggregate result is
        deterministic and identical to the sequential one.  ``program`` and
        ``model`` are shared across workers and must be stateless (all
        catalog protocols and simulators are); schedulers and adversaries
        are per-run.
    trace_policy:
        Trace policy forwarded to :func:`run_until_stable`.  Defaults to
        ``"counts-only"`` (the fast path — the aggregate only needs counts)
        unless ``validate`` is given, in which case the full trace is
        recorded so validators can inspect it.
    predicate_factory:
        Optional callable mapping the run index to a fresh predicate;
        required instead of ``predicate`` when using a *stateful*
        incremental predicate with ``jobs > 1``.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if jobs > 1 and predicate_factory is None and isinstance(predicate, IncrementalPredicate):
        raise ValueError(
            "incremental predicates are stateful; pass predicate_factory "
            "instead of a shared predicate when jobs > 1"
        )
    if validate is not None and trace_policy not in (None, "full"):
        raise ValueError(
            "validate inspects the full trace; it cannot be combined with "
            f"trace_policy={trace_policy!r}"
        )
    policy = trace_policy if trace_policy is not None else (
        "full" if validate is not None else "counts-only"
    )
    n = len(initial_configuration)

    def execute_run(run_index: int) -> ConvergenceResult:
        scheduler = RandomScheduler(n, seed=base_seed + run_index)
        adversary = adversary_factory(run_index) if adversary_factory else None
        engine = SimulationEngine(program, model, scheduler, adversary=adversary)
        run_predicate = (
            predicate_factory(run_index) if predicate_factory is not None else predicate
        )
        return run_until_stable(
            engine,
            initial_configuration,
            run_predicate,
            max_steps=max_steps,
            stability_window=stability_window,
            trace_policy=policy,
        )

    result = ExperimentResult(runs=0, successes=0)

    def merge(run_index: int, outcome: ConvergenceResult) -> None:
        result.runs += 1
        failure: Optional[str] = None
        if not outcome.converged:
            failure = f"run {run_index}: did not converge within {max_steps} steps"
        elif validate is not None:
            error = validate(outcome)
            if error is not None:
                failure = f"run {run_index}: {error}"
        if failure is None:
            result.successes += 1
            if outcome.steps_to_convergence is not None:
                result.convergence_steps.append(outcome.steps_to_convergence)
        else:
            result.failures.append(failure)

    # Merge outcomes in submission order as they stream in, keeping at most
    # a small window of runs outstanding: with full traces, materialising
    # every ConvergenceResult (or letting completed futures pile up behind a
    # slow early run) would hold up to runs x max_steps steps in memory.
    if jobs > 1 and runs > 1:
        workers = min(jobs, runs)
        window = 2 * workers
        with ThreadPoolExecutor(max_workers=workers) as executor:
            pending: deque = deque()
            merged = 0
            for run_index in range(runs):
                pending.append(executor.submit(execute_run, run_index))
                if len(pending) >= window:
                    merge(merged, pending.popleft().result())
                    merged += 1
            while pending:
                merge(merged, pending.popleft().result())
                merged += 1
    else:
        for run_index in range(runs):
            merge(run_index, execute_run(run_index))
    return result
