"""Discrete-event execution engine for population protocols.

The engine ties together a *program* (a two-way protocol, a one-way
protocol, or a simulator from :mod:`repro.core`), an *interaction model*
(from :mod:`repro.interaction`), a *scheduler* (from
:mod:`repro.scheduling`) and optionally an *omission adversary* (from
:mod:`repro.adversary`), and produces an execution :class:`Trace` that
records every interaction together with the state changes it caused.

All entry points (:meth:`SimulationEngine.run`,
:meth:`SimulationEngine.replay`, :func:`run_until_stable`) are thin
wrappers over the shared fast-path step loop in
:mod:`repro.engine.fastpath`, which mutates an array-backed run buffer in
place and supports selectable trace policies (``full``, ``counts-only``,
``ring``) plus incremental convergence predicates.

Traces are the raw material of all analyses in the library: simulation
verification (events / matchings / derived runs), problem checkers
(safety/liveness), fairness diagnostics and the benchmark harness.
"""

from repro.engine.trace import Trace, TraceStep
from repro.engine.engine import SimulationEngine, EngineError
from repro.engine.fastpath import (
    TRACE_POLICIES,
    AgentCountPredicate,
    CountsOnlyRecorder,
    FullRecorder,
    IncrementalPredicate,
    PredicateAdapter,
    RingRecorder,
    RunResult,
    as_incremental,
    incremental_stable_output,
    make_recorder,
    run_core,
)
from repro.engine.convergence import (
    ConvergenceResult,
    run_until_stable,
    stable_output_condition,
)
from repro.engine.experiment import ExperimentResult, repeat_experiment

__all__ = [
    "Trace",
    "TraceStep",
    "SimulationEngine",
    "EngineError",
    "TRACE_POLICIES",
    "AgentCountPredicate",
    "CountsOnlyRecorder",
    "FullRecorder",
    "IncrementalPredicate",
    "PredicateAdapter",
    "RingRecorder",
    "RunResult",
    "as_incremental",
    "incremental_stable_output",
    "make_recorder",
    "run_core",
    "ConvergenceResult",
    "run_until_stable",
    "stable_output_condition",
    "ExperimentResult",
    "repeat_experiment",
]
