"""The simulation engine.

:class:`SimulationEngine` executes a program under an interaction model,
drawing interactions from a scheduler and (optionally) letting an omission
adversary inject omissive interactions between scheduled ones, exactly as
the adversaries of Definitions 1 and 2 rewrite runs.

The engine is deliberately small: all protocol semantics live in the
interaction model (:mod:`repro.interaction.models`), all policy lives in
the scheduler/adversary, and the step loop itself lives in the shared
fast-path core (:mod:`repro.engine.fastpath`).  :meth:`SimulationEngine.run`
and :meth:`SimulationEngine.replay` are thin wrappers over that core, as is
:func:`repro.engine.convergence.run_until_stable`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.engine.fastpath import DEFAULT_CHUNK_SIZE, RunResult, make_recorder, run_core
from repro.engine.trace import Trace
from repro.interaction.models import InteractionModel
from repro.protocols.state import Configuration, MutableConfiguration
from repro.scheduling.runs import Interaction, Run
from repro.scheduling.scheduler import Scheduler, ScriptedScheduler


class EngineError(Exception):
    """Raised on invalid engine configuration or execution errors."""


class SimulationEngine:
    """Executes a program on a population under a given interaction model.

    Parameters
    ----------
    program:
        The protocol to execute: a two-way protocol for two-way models, a
        one-way protocol or simulator for one-way models.
    model:
        The interaction model (one of the ten models of Figure 1).
    scheduler:
        Source of the scheduled (non-omissive) interactions.
    adversary:
        Optional omission adversary; consulted before every scheduled
        interaction and allowed to inject omissive interactions
        (Definitions 1 and 2).  ``None`` means no omissions beyond those
        already carried by the scheduled interactions themselves.
    """

    def __init__(
        self,
        program: Any,
        model: InteractionModel,
        scheduler: Scheduler,
        adversary: Optional[Any] = None,
    ):
        self.program = program
        self.model = model
        self.scheduler = scheduler
        self.adversary = adversary

    # -- single-interaction execution -------------------------------------------------------

    def execute_interaction(
        self, configuration: Configuration, interaction: Interaction
    ) -> Configuration:
        """Apply one interaction to a configuration and return the new configuration."""
        n = len(configuration)
        if interaction.starter >= n or interaction.reactor >= n:
            raise EngineError(
                f"interaction {interaction} references agents outside the population "
                f"of size {n}"
            )
        starter_pre = configuration[interaction.starter]
        reactor_pre = configuration[interaction.reactor]
        starter_post, reactor_post = self.model.apply(
            self.program, starter_pre, reactor_pre, interaction.omission
        )
        return configuration.apply_interaction(
            interaction.starter, interaction.reactor, starter_post, reactor_post
        )

    # -- full runs ----------------------------------------------------------------------------

    def execute(
        self,
        initial_configuration: Configuration,
        max_steps: int,
        stop_condition: Optional[Callable[[Any], bool]] = None,
        *,
        trace_policy: str = "full",
        ring_size: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> RunResult:
        """Execute up to ``max_steps`` interactions under a selectable trace policy.

        This is the general fast-path entry point; :meth:`run` is the
        backwards-compatible wrapper that always records a full trace.

        ``stop_condition`` is evaluated on the live run buffer (a
        :class:`~repro.protocols.state.MutableConfiguration` mirroring the
        :class:`Configuration` read API — it is not hashable and is aliased
        across steps, so freeze it before storing) after every executed
        interaction; when it returns ``True`` the run stops early.  Every
        executed interaction (scheduled or adversary-injected) counts
        towards ``max_steps``.

        Budget semantics: a scheduled interaction is consumed only while
        budget remains and, once consumed, always executes; adversary
        injections that would leave it no budget are discarded (still
        charging the adversary's own omission budget).  A stop condition
        firing mid-batch skips the rest of that batch.

        Every run consumes the scheduler in chunks of up to ``chunk_size``
        batched draws (default
        :data:`~repro.engine.fastpath.DEFAULT_CHUNK_SIZE`); with an
        adversary, each chunk goes through the budget-aware batched
        injection protocol
        (:meth:`~repro.adversary.omission.OmissionAdversary.plan_interactions`).
        Batched draws and chunk plans are bitwise identical to their
        per-step counterparts, so the result is independent of
        ``chunk_size`` (``1`` reproduces the per-step loop).  See
        :mod:`repro.engine.fastpath` for the full contract.
        """
        if max_steps < 0:
            raise EngineError("max_steps must be non-negative")
        if len(initial_configuration) < 2 and max_steps > 0:
            raise EngineError("a population of fewer than two agents cannot interact")

        recorder = make_recorder(trace_policy, ring_size)
        buffer = MutableConfiguration(initial_configuration)
        on_step = None
        if stop_condition is not None:
            on_step = lambda *_step: stop_condition(buffer)  # noqa: E731

        executed, stopped = run_core(
            self.program,
            self.model,
            self.scheduler,
            self.adversary,
            buffer,
            recorder,
            max_steps,
            on_step=on_step,
            chunk_size=chunk_size if chunk_size is not None else DEFAULT_CHUNK_SIZE,
        )
        final = buffer.freeze()
        return RunResult(
            policy=recorder.policy,
            steps=executed,
            omissions=recorder.omissions,
            final_configuration=final,
            trace=recorder.build_trace(initial_configuration, final),
            last_steps=recorder.last_steps(),
            stopped=stopped,
        )

    def run(
        self,
        initial_configuration: Configuration,
        max_steps: int,
        stop_condition: Optional[Callable[[Any], bool]] = None,
    ) -> Trace:
        """Execute up to ``max_steps`` interactions and return the full trace.

        Equivalent to ``execute(..., trace_policy="full").trace``; see
        :meth:`execute` for the stop-condition and budget semantics.  Note
        that ``stop_condition`` receives the *live run buffer* (a
        :class:`~repro.protocols.state.MutableConfiguration` mirroring the
        ``Configuration`` read API), valid only for the duration of the
        call — freeze it before storing.
        """
        return self.execute(
            initial_configuration, max_steps, stop_condition, trace_policy="full"
        ).trace

    def replay(self, initial_configuration: Configuration, run: Iterable[Interaction]) -> Trace:
        """Execute an explicit run (sequence of interactions) and return the trace.

        The scheduler and adversary are bypassed: the given interactions,
        including their omission flags, are executed verbatim.  This is how
        the scripted attack constructions of Section 3 are evaluated.
        """
        interactions = run if isinstance(run, Run) else Run(run)
        recorder = make_recorder("full")
        buffer = MutableConfiguration(initial_configuration)
        run_core(
            self.program,
            self.model,
            ScriptedScheduler(interactions),
            None,
            buffer,
            recorder,
            max_steps=len(interactions),
        )
        return recorder.build_trace(initial_configuration, buffer.freeze())
