"""The simulation engine.

:class:`SimulationEngine` executes a program under an interaction model,
drawing interactions from a scheduler and (optionally) letting an omission
adversary inject omissive interactions between scheduled ones, exactly as
the adversaries of Definitions 1 and 2 rewrite runs.

The engine is deliberately small: all protocol semantics live in the
interaction model (:mod:`repro.interaction.models`) and all policy lives in
the scheduler/adversary, so the engine itself is just the loop that threads
a configuration through a sequence of interactions while recording a trace.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.interaction.models import InteractionModel, ModelError
from repro.interaction.omissions import NO_OMISSION
from repro.protocols.state import Configuration
from repro.scheduling.runs import Interaction
from repro.scheduling.scheduler import Scheduler, SchedulerExhausted
from repro.engine.trace import Trace


class EngineError(Exception):
    """Raised on invalid engine configuration or execution errors."""


class SimulationEngine:
    """Executes a program on a population under a given interaction model.

    Parameters
    ----------
    program:
        The protocol to execute: a two-way protocol for two-way models, a
        one-way protocol or simulator for one-way models.
    model:
        The interaction model (one of the ten models of Figure 1).
    scheduler:
        Source of the scheduled (non-omissive) interactions.
    adversary:
        Optional omission adversary; consulted before every scheduled
        interaction and allowed to inject omissive interactions
        (Definitions 1 and 2).  ``None`` means no omissions beyond those
        already carried by the scheduled interactions themselves.
    """

    def __init__(
        self,
        program: Any,
        model: InteractionModel,
        scheduler: Scheduler,
        adversary: Optional[Any] = None,
    ):
        self.program = program
        self.model = model
        self.scheduler = scheduler
        self.adversary = adversary

    # -- single-interaction execution -------------------------------------------------------

    def execute_interaction(
        self, configuration: Configuration, interaction: Interaction
    ) -> Configuration:
        """Apply one interaction to a configuration and return the new configuration."""
        n = len(configuration)
        if interaction.starter >= n or interaction.reactor >= n:
            raise EngineError(
                f"interaction {interaction} references agents outside the population "
                f"of size {n}"
            )
        starter_pre = configuration[interaction.starter]
        reactor_pre = configuration[interaction.reactor]
        starter_post, reactor_post = self.model.apply(
            self.program, starter_pre, reactor_pre, interaction.omission
        )
        return configuration.apply_interaction(
            interaction.starter, interaction.reactor, starter_post, reactor_post
        )

    # -- full runs ----------------------------------------------------------------------------

    def run(
        self,
        initial_configuration: Configuration,
        max_steps: int,
        stop_condition: Optional[Callable[[Configuration], bool]] = None,
    ) -> Trace:
        """Execute up to ``max_steps`` interactions and return the trace.

        ``stop_condition`` is evaluated on the configuration after every
        executed interaction; when it returns ``True`` the run stops early.
        Every executed interaction (scheduled or adversary-injected) counts
        towards ``max_steps``.
        """
        if max_steps < 0:
            raise EngineError("max_steps must be non-negative")
        if len(initial_configuration) < 2 and max_steps > 0:
            raise EngineError("a population of fewer than two agents cannot interact")

        trace = Trace(initial_configuration)
        configuration = initial_configuration
        scheduler_step = 0
        executed = 0

        while executed < max_steps:
            try:
                scheduled = self.scheduler.next_interaction(scheduler_step)
            except SchedulerExhausted:
                break
            scheduler_step += 1

            to_execute = []
            if self.adversary is not None:
                injected = self.adversary.interactions_before(
                    step=scheduler_step - 1,
                    scheduled=scheduled,
                    n=len(configuration),
                )
                to_execute.extend(injected)
            to_execute.append(scheduled)

            stop = False
            for interaction in to_execute:
                if executed >= max_steps:
                    break
                starter_pre = configuration[interaction.starter]
                reactor_pre = configuration[interaction.reactor]
                starter_post, reactor_post = self.model.apply(
                    self.program, starter_pre, reactor_pre, interaction.omission
                )
                trace.record(interaction, starter_post, reactor_post)
                configuration = trace.final_configuration
                executed += 1
                if stop_condition is not None and stop_condition(configuration):
                    stop = True
                    break
            if stop:
                break

        return trace

    def replay(self, initial_configuration: Configuration, run) -> Trace:
        """Execute an explicit run (sequence of interactions) and return the trace.

        The scheduler and adversary are bypassed: the given interactions,
        including their omission flags, are executed verbatim.  This is how
        the scripted attack constructions of Section 3 are evaluated.
        """
        trace = Trace(initial_configuration)
        configuration = initial_configuration
        for interaction in run:
            starter_pre = configuration[interaction.starter]
            reactor_pre = configuration[interaction.reactor]
            starter_post, reactor_post = self.model.apply(
                self.program, starter_pre, reactor_pre, interaction.omission
            )
            trace.record(interaction, starter_post, reactor_post)
            configuration = trace.final_configuration
        return trace
