"""The simulation engine.

:class:`SimulationEngine` executes a program under an interaction model,
drawing interactions from a scheduler and (optionally) letting an omission
adversary inject omissive interactions between scheduled ones, exactly as
the adversaries of Definitions 1 and 2 rewrite runs.

The engine is deliberately small: all protocol semantics live in the
interaction model (:mod:`repro.interaction.models`), all policy lives in
the scheduler/adversary, and the step loop itself lives in the selected
execution backend (:mod:`repro.engine.backends`) — by default the shared
fast-path core (:mod:`repro.engine.fastpath`), or the columnar numpy
array engine for huge populations of small-finite-state protocols.
:meth:`SimulationEngine.run` and :meth:`SimulationEngine.replay` are thin
wrappers, as is :func:`repro.engine.convergence.run_until_stable`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.engine.backends import get_backend, validate_backend
from repro.engine.fastpath import RunResult, make_recorder, run_core
from repro.engine.trace import Trace
from repro.interaction.models import InteractionModel
from repro.protocols.state import Configuration, MutableConfiguration
from repro.scheduling.runs import Interaction, Run
from repro.scheduling.scheduler import Scheduler, ScriptedScheduler


class EngineError(Exception):
    """Raised on invalid engine configuration or execution errors."""


class SimulationEngine:
    """Executes a program on a population under a given interaction model.

    Parameters
    ----------
    program:
        The protocol to execute: a two-way protocol for two-way models, a
        one-way protocol or simulator for one-way models.
    model:
        The interaction model (one of the ten models of Figure 1).
    scheduler:
        Source of the scheduled (non-omissive) interactions.
    adversary:
        Optional omission adversary; consulted before every scheduled
        interaction and allowed to inject omissive interactions
        (Definitions 1 and 2).  ``None`` means no omissions beyond those
        already carried by the scheduled interactions themselves.
    backend:
        Execution backend name (:data:`repro.engine.backends.ENGINE_BACKENDS`).
        ``"python"`` (default) runs the interpreted fast path and supports
        everything; ``"array"`` opts into columnar numpy execution for
        programs with small finite state spaces (requires the
        ``repro[fast]`` extra) and raises
        :class:`~repro.engine.backends.base.BackendCompileError` for
        ingredients it cannot compile.  The name is validated here; the
        backend itself (and its numpy dependency) is resolved per run.
        The pseudo-backend ``"auto"`` is rejected: the engine cannot know
        the run's trace policy or predicate up front, so ``"auto"`` must be
        resolved to a concrete backend first
        (:func:`repro.protocols.registry.resolve_backend`).
    """

    def __init__(
        self,
        program: Any,
        model: InteractionModel,
        scheduler: Scheduler,
        adversary: Optional[Any] = None,
        backend: str = "python",
    ) -> None:
        self.program = program
        self.model = model
        self.scheduler = scheduler
        self.adversary = adversary
        if backend == "auto":
            raise EngineError(
                "SimulationEngine does not accept backend='auto': resolution "
                "depends on the run's trace policy and predicate, which the "
                "engine cannot know at construction time; resolve the spec "
                "first with repro.protocols.registry.resolve_backend (the "
                "CLI and campaign planner do this automatically)"
            )
        self.backend = validate_backend(backend)

    # -- single-interaction execution -------------------------------------------------------

    def execute_interaction(
        self, configuration: Configuration, interaction: Interaction
    ) -> Configuration:
        """Apply one interaction to a configuration and return the new configuration."""
        n = len(configuration)
        if interaction.starter >= n or interaction.reactor >= n:
            raise EngineError(
                f"interaction {interaction} references agents outside the population "
                f"of size {n}"
            )
        starter_pre = configuration[interaction.starter]
        reactor_pre = configuration[interaction.reactor]
        starter_post, reactor_post = self.model.apply(
            self.program, starter_pre, reactor_pre, interaction.omission
        )
        return configuration.apply_interaction(
            interaction.starter, interaction.reactor, starter_post, reactor_post
        )

    # -- full runs ----------------------------------------------------------------------------

    def execute(
        self,
        initial_configuration: Configuration,
        max_steps: int,
        stop_condition: Optional[Callable[[Any], bool]] = None,
        *,
        trace_policy: str = "full",
        ring_size: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> RunResult:
        """Execute up to ``max_steps`` interactions under a selectable trace policy.

        This is the general fast-path entry point; :meth:`run` is the
        backwards-compatible wrapper that always records a full trace.

        ``stop_condition`` is evaluated on the live run buffer (a
        :class:`~repro.protocols.state.MutableConfiguration` mirroring the
        :class:`Configuration` read API — it is not hashable and is aliased
        across steps, so freeze it before storing) after every executed
        interaction; when it returns ``True`` the run stops early.  Every
        executed interaction (scheduled or adversary-injected) counts
        towards ``max_steps``.

        Budget semantics: a scheduled interaction is consumed only while
        budget remains and, once consumed, always executes; adversary
        injections that would leave it no budget are discarded (still
        charging the adversary's own omission budget).  A stop condition
        firing mid-batch skips the rest of that batch.

        Every run consumes the scheduler in chunks of up to ``chunk_size``
        batched draws (default
        :data:`~repro.engine.fastpath.DEFAULT_CHUNK_SIZE`); with an
        adversary, each chunk goes through the budget-aware batched
        injection protocol
        (:meth:`~repro.adversary.omission.OmissionAdversary.plan_interactions`).
        Batched draws and chunk plans are bitwise identical to their
        per-step counterparts, so the result is independent of
        ``chunk_size`` (``1`` reproduces the per-step loop).  See
        :mod:`repro.engine.fastpath` for the full contract.

        The run executes on the engine's configured backend; on the
        ``array`` backend only the compilable subset is accepted (catalog
        adversaries compile via injection schedules, ``counts-only`` and
        ``ring`` trace policies are supported, stop conditions must be
        count-expressible predicates) and anything else raises
        :class:`~repro.engine.backends.base.BackendCompileError`.
        """
        if max_steps < 0:
            raise EngineError("max_steps must be non-negative")
        if len(initial_configuration) < 2 and max_steps > 0:
            raise EngineError("a population of fewer than two agents cannot interact")

        return get_backend(self.backend).execute(
            self.program,
            self.model,
            self.scheduler,
            self.adversary,
            initial_configuration,
            max_steps,
            stop_condition,
            trace_policy=trace_policy,
            ring_size=ring_size,
            chunk_size=chunk_size,
        )

    def run(
        self,
        initial_configuration: Configuration,
        max_steps: int,
        stop_condition: Optional[Callable[[Any], bool]] = None,
    ) -> Trace:
        """Execute up to ``max_steps`` interactions and return the full trace.

        Equivalent to ``execute(..., trace_policy="full").trace``; see
        :meth:`execute` for the stop-condition and budget semantics.  Note
        that ``stop_condition`` receives the *live run buffer* (a
        :class:`~repro.protocols.state.MutableConfiguration` mirroring the
        ``Configuration`` read API), valid only for the duration of the
        call — freeze it before storing.
        """
        return self.execute(
            initial_configuration, max_steps, stop_condition, trace_policy="full"
        ).trace

    def replay(self, initial_configuration: Configuration, run: Iterable[Interaction]) -> Trace:
        """Execute an explicit run (sequence of interactions) and return the trace.

        The scheduler and adversary are bypassed: the given interactions,
        including their omission flags, are executed verbatim.  This is how
        the scripted attack constructions of Section 3 are evaluated.
        Replays always run on the python fast path, whatever the engine's
        backend: scripted runs carry per-interaction omission flags, which
        the compiled tables of the array backend do not model.
        """
        interactions = run if isinstance(run, Run) else Run(run)
        recorder = make_recorder("full")
        buffer = MutableConfiguration(initial_configuration)
        run_core(
            self.program,
            self.model,
            ScriptedScheduler(interactions),
            None,
            buffer,
            recorder,
            max_steps=len(interactions),
        )
        return recorder.build_trace(initial_configuration, buffer.freeze())
