"""The fast-path execution core shared by every engine entry point.

The seed engine threaded an immutable :class:`~repro.protocols.state.Configuration`
through the run — an O(n) tuple copy per interaction — and
``run_until_stable`` carried a hand-copied duplicate of the step loop that
had already drifted from :meth:`SimulationEngine.run`.  This module is now
the single implementation of the loop

    scheduler draw -> adversary injection -> model apply -> budget accounting

operating on an O(1) in-place :class:`~repro.protocols.state.MutableConfiguration`
buffer.  :meth:`SimulationEngine.run`, :meth:`SimulationEngine.replay` and
:func:`repro.engine.convergence.run_until_stable` are thin wrappers over
:func:`run_core`.

Since the execution-backend split (:mod:`repro.engine.backends`) this loop
is, precisely, the **python backend**: the reference implementation of the
run semantics every other backend (currently the columnar numpy array
engine) must reproduce.  The budget/stop/truncation contract below is
therefore backend-independent; only the data representation and the RNG
streams differ across backends.

Three trace policies control what the run records:

``full``
    Every executed interaction becomes a :class:`TraceStep`; the result
    carries a complete :class:`Trace` (the seed behaviour, but without the
    per-step configuration copies).
``counts-only``
    No per-step allocation at all: only the step count, the omission count
    and the frozen final configuration survive.  This is the benchmark
    fast path.
``ring``
    Only the last ``ring_size`` steps are kept (a crash-dump style window);
    counts and the final configuration are exact.

Budget semantics (the seed had two subtly different accountings):

* a scheduled interaction is drawn from the scheduler only while at least
  one step of budget remains, and a drawn scheduled interaction is always
  executed — the scheduler never advances past an interaction that is then
  silently dropped;
* adversary injections execute *before* their scheduled interaction and
  count towards the budget; injections that would leave no budget for the
  scheduled interaction are discarded (the adversary's own omission budget
  is still consumed, exactly as a finite execution prefix truncates the
  rewritten run of Definitions 1 and 2);
* a stop condition may end the run mid-batch, in which case the remaining
  interactions of the batch (possibly including the scheduled one) are not
  executed.

Batched draws — one chunked loop for every run:

All runs consume the scheduler through the batched protocol
(:meth:`~repro.scheduling.scheduler.Scheduler.next_interactions`), drawing
up to :data:`DEFAULT_CHUNK_SIZE` interactions per call.  Because batched
draws are bitwise identical to per-step draws (the scheduler contract),
chunking changes no executed interaction, count or final configuration —
only the Python-level overhead per step.

Runs with an adversary feed each drawn chunk, together with the remaining
step budget, to the adversary's budget-aware batched protocol
(:meth:`~repro.adversary.omission.OmissionAdversary.plan_interactions`):
the adversary returns the chunk's exact execution order — injections
interleaved before their scheduled interaction, already truncated to the
budget, with discarded injections still charged against the adversary's
own omission budget — provably identical to consulting the per-step
:meth:`~repro.adversary.omission.OmissionAdversary.interactions_before`
at every scheduled draw (the contract pinned by
``tests/test_adversary_batching.py``).  Duck-typed adversaries that only
implement ``interactions_before`` are wrapped in the reference walk
(:func:`~repro.adversary.omission.plan_interactions_per_step`)
automatically.

Chunks are clipped to the remaining budget (one scheduled draw consumes at
least one unit), so an adversary-free run that exhausts its budget never
over-draws.  Two events can end a run mid-chunk and leave the scheduler
advanced to the end of the current chunk: a *stop condition* firing, and
adversary injections consuming the budget before the chunk's last
scheduled interaction (the per-step loop would not have drawn those last
interactions at all).  Results — executed interactions, counts, traces,
final configurations — are unaffected in both cases because abandoned
draws and planned-but-unexecuted injections never execute.  On *budget
exhaustion* the adversary's plan walk stops consuming exactly where the
per-step loop would, so its end state is chunking-independent too.  On a
*stop condition*, however, the chunk was already planned when the stop
fired, so the adversary — like the scheduler — may have advanced its
internal state (RNG position, omission-budget counters such as
``total_injected``) up to the end of the current chunk.  That lookahead
is faithful to the paper's model — the run rewriters of Definitions 1
and 2 rewrite the run ahead of wherever a finite execution prefix stops —
and is observable only by inspecting or reusing (without ``reset()``) an
adversary object after an early-stopped run, which nothing in this
repository does: ``repeat_experiment``, the CLI and the registry's
``make_adversary`` all build fresh adversaries per run.  The contract is
pinned by ``tests/test_adversary_batching.py``
(``test_stop_mid_chunk_adversary_lookahead_is_chunk_bounded``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

from repro.engine.trace import Trace, TraceStep
from repro.interaction.models import InteractionModel
from repro.protocols.state import Configuration, MutableConfiguration, State
from repro.scheduling.runs import Interaction
from repro.scheduling.scheduler import Scheduler

if TYPE_CHECKING:  # the adversary layer sits above the engine; import for types only
    from repro.adversary.omission import ChunkPlan

#: The selectable trace policies, in decreasing order of detail.
TRACE_POLICIES = ("full", "counts-only", "ring")

#: Scheduled interactions drawn per batched scheduler call on adversary-free
#: runs.  Large enough to amortize the per-chunk call overhead, small enough
#: that a chunk of pending :class:`Interaction` objects stays cache-friendly.
DEFAULT_CHUNK_SIZE = 256

#: Deltas handed to incremental predicates: ``(agent, old_state, new_state)``
#: for every agent whose state actually changed at the step (0, 1 or 2 items).
StepDeltas = Tuple[Tuple[int, State, State], ...]

#: Step callback: ``(interaction, starter_pre, starter_post, reactor_pre,
#: reactor_post) -> stop?``.  Returning ``True`` ends the run.
StepCallback = Callable[[Interaction, State, State, State, State], bool]


# ---------------------------------------------------------------------------
# trace recorders
# ---------------------------------------------------------------------------


class FullRecorder:
    """Records every step; builds a complete :class:`Trace` at freeze time."""

    policy = "full"
    __slots__ = ("steps", "omissions")

    def __init__(self) -> None:
        self.steps: List[TraceStep] = []
        self.omissions = 0

    def record(
        self,
        interaction: Interaction,
        starter_pre: State,
        starter_post: State,
        reactor_pre: State,
        reactor_post: State,
    ) -> None:
        # interaction.omission.is_omissive, not the is_omissive property:
        # record() runs once per step and the descriptor call is measurable.
        if interaction.omission.is_omissive:
            self.omissions += 1
        self.steps.append(
            TraceStep(
                index=len(self.steps),
                interaction=interaction,
                starter_pre=starter_pre,
                starter_post=starter_post,
                reactor_pre=reactor_pre,
                reactor_post=reactor_post,
            )
        )

    def build_trace(self, initial: Configuration, final: Configuration) -> Optional[Trace]:
        return Trace.from_steps(initial, self.steps, final)

    def last_steps(self) -> Tuple[TraceStep, ...]:
        # The full step list is already reachable through the built trace;
        # duplicating it here would be an O(T) copy nobody consumes.
        return ()


class CountsOnlyRecorder:
    """Tracks only the omission count; allocates nothing per step."""

    policy = "counts-only"
    __slots__ = ("omissions",)

    def __init__(self) -> None:
        self.omissions = 0

    def record(self, interaction, starter_pre, starter_post, reactor_pre, reactor_post) -> None:
        if interaction.omission.is_omissive:
            self.omissions += 1

    def build_trace(self, initial: Configuration, final: Configuration) -> Optional[Trace]:
        return None

    def last_steps(self) -> Tuple[TraceStep, ...]:
        return ()


class RingRecorder:
    """Keeps the last ``ring_size`` steps; counts stay exact for the whole run.

    ``TraceStep.index`` is the global step index, so the window reports where
    in the run its steps occurred even after older steps were evicted.
    """

    policy = "ring"
    __slots__ = ("omissions", "_ring", "_count")

    def __init__(self, ring_size: int) -> None:
        if ring_size < 1:
            raise ValueError("ring_size must be at least 1")
        self.omissions = 0
        self._ring: deque = deque(maxlen=ring_size)
        self._count = 0

    def record(self, interaction, starter_pre, starter_post, reactor_pre, reactor_post) -> None:
        if interaction.omission.is_omissive:
            self.omissions += 1
        self._ring.append(
            TraceStep(
                index=self._count,
                interaction=interaction,
                starter_pre=starter_pre,
                starter_post=starter_post,
                reactor_pre=reactor_pre,
                reactor_post=reactor_post,
            )
        )
        self._count += 1

    def build_trace(self, initial: Configuration, final: Configuration) -> Optional[Trace]:
        return None  # the evicted prefix cannot be reconstructed

    def last_steps(self) -> Tuple[TraceStep, ...]:
        return tuple(self._ring)


def make_recorder(trace_policy: str, ring_size: Optional[int] = None) -> "FullRecorder | CountsOnlyRecorder | RingRecorder":
    """Build the recorder for ``trace_policy`` (one of :data:`TRACE_POLICIES`)."""
    if trace_policy == "full":
        return FullRecorder()
    if trace_policy == "counts-only":
        return CountsOnlyRecorder()
    if trace_policy == "ring":
        return RingRecorder(ring_size if ring_size is not None else 64)
    raise ValueError(
        f"unknown trace policy {trace_policy!r}; expected one of {TRACE_POLICIES}"
    )


# ---------------------------------------------------------------------------
# run result
# ---------------------------------------------------------------------------


@dataclass
class RunResult:
    """Outcome of a fast-path run under any trace policy."""

    policy: str
    steps: int
    omissions: int
    final_configuration: Configuration
    trace: Optional[Trace] = None
    last_steps: Tuple[TraceStep, ...] = ()
    stopped: bool = False


# ---------------------------------------------------------------------------
# incremental convergence predicates
# ---------------------------------------------------------------------------


class IncrementalPredicate:
    """A convergence predicate that consumes per-step deltas.

    A plain configuration predicate forces the convergence loop to rescan
    all n agents after every interaction, turning convergence detection into
    an O(n·T) scan.  Implementations of this protocol are primed once with
    the full initial configuration (:meth:`reset`) and then fold each step's
    ``(agent, old_state, new_state)`` deltas into their internal summary
    (:meth:`update`), making the per-step predicate check O(1).

    Both methods return whether the predicate currently holds.
    """

    #: Whether :meth:`update` actually reads its deltas.  The convergence
    #: loop skips building the delta tuple for implementations that set this
    #: to ``False`` (e.g. :class:`PredicateAdapter`, which rescans the live
    #: buffer instead), saving per-step allocations on the hot path.
    consumes_deltas = True

    def reset(self, configuration: Any) -> bool:
        """Prime the predicate from a full configuration (buffer or frozen)."""
        raise NotImplementedError

    def update(self, deltas: StepDeltas) -> bool:
        """Fold one step's state changes; called once per executed interaction."""
        raise NotImplementedError

    def as_state_count(self) -> Optional[Tuple[Callable[[State], bool], Optional[int]]]:
        """The predicate as a ``(satisfies, target)`` state-count shape, if any.

        Predicates of the form "the number of agents whose state satisfies
        ``satisfies`` equals ``target`` (``None``: all agents)" are
        *compilable*: the array backend
        (:mod:`repro.engine.backends.array_backend`) evaluates ``satisfies``
        once per interned state and tracks the count columnarly.  Returning
        ``None`` (the default) marks the predicate as non-compilable; such
        predicates run only on the python backend.
        """
        return None


class AgentCountPredicate(IncrementalPredicate):
    """Holds when the number of agents satisfying ``satisfies`` equals ``target``.

    ``target=None`` means "all agents" (the usual stabilisation criterion:
    every agent outputs the expected value).  The per-agent test is
    evaluated n times at :meth:`reset` and then at most twice per step.
    """

    def __init__(self, satisfies: Callable[[State], bool], target: Optional[int] = None) -> None:
        self._satisfies = satisfies
        self._target = target
        self._count = 0
        self._n = 0

    def reset(self, configuration: Any) -> bool:
        satisfies = self._satisfies
        self._n = len(configuration)
        self._count = sum(1 for state in configuration if satisfies(state))
        return self._holds()

    def update(self, deltas: StepDeltas) -> bool:
        satisfies = self._satisfies
        for _agent, old_state, new_state in deltas:
            self._count += satisfies(new_state) - satisfies(old_state)
        return self._holds()

    def as_state_count(self) -> Optional[Tuple[Callable[[State], bool], Optional[int]]]:
        """State-count predicates are compilable by construction."""
        return self._satisfies, self._target

    def _holds(self) -> bool:
        target = self._n if self._target is None else self._target
        return self._count == target


def incremental_stable_output(
    program: Any, expected_output: Any, projection: Optional[Callable] = None
) -> AgentCountPredicate:
    """Incremental counterpart of :func:`repro.engine.convergence.stable_output_condition`.

    Holds when every agent's (optionally projected) output equals
    ``expected_output``, tracked as a running count instead of a full rescan.
    """
    output = program.output
    if projection is None:
        return AgentCountPredicate(lambda state: output(state) == expected_output)
    return AgentCountPredicate(
        lambda state: output(projection(state)) == expected_output
    )


class PredicateAdapter(IncrementalPredicate):
    """Wraps a plain configuration predicate in the incremental protocol.

    The wrapped predicate is re-evaluated against the live run buffer on
    every step, preserving the semantics (and the O(n) per-step cost) of
    predicates written against full configurations.
    """

    consumes_deltas = False

    def __init__(self, predicate: Callable[[Any], bool]) -> None:
        self._predicate = predicate
        self._view: Any = None

    def reset(self, configuration: Any) -> bool:
        self._view = configuration
        return self._predicate(configuration)

    def update(self, deltas: StepDeltas) -> bool:
        return self._predicate(self._view)


def as_incremental(predicate: Any) -> IncrementalPredicate:
    """Coerce a predicate to the incremental protocol (no-op when it already is)."""
    if isinstance(predicate, IncrementalPredicate):
        return predicate
    return PredicateAdapter(predicate)


# ---------------------------------------------------------------------------
# the shared step loop
# ---------------------------------------------------------------------------


def run_core(
    program: Any,
    model: InteractionModel,
    scheduler: Scheduler,
    adversary: Optional[Any],
    buffer: MutableConfiguration,
    recorder: Any,
    max_steps: float,
    on_step: Optional[StepCallback] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Tuple[int, bool]:
    """Execute up to ``max_steps`` interactions against ``buffer`` in place.

    This is the single step loop behind every public entry point: one
    chunked loop for adversary-present and adversary-free runs alike.
    Scheduled interactions are drawn in chunks of up to ``chunk_size``
    through the batched scheduler protocol; with an ``adversary``, each
    chunk (plus the remaining budget) goes through the budget-aware
    injection protocol, which returns the chunk's exact execution order —
    injections before their scheduled interaction, budget truncation
    already applied.  Every executed interaction is applied through
    ``model`` with two O(1) buffer writes, its deltas are fed to
    ``recorder``, and ``on_step`` (when given) may end the run by
    returning ``True``.  Chunking never changes results — batched draws
    and chunk plans are bitwise identical to their per-step counterparts —
    so ``chunk_size`` is purely a performance knob (``1`` reproduces the
    per-step loop exactly, including scheduler and adversary advancement
    on early stops; after a stop-condition end at larger chunk sizes, the
    scheduler's and adversary's *internal* positions may sit past the
    last executed interaction).  See the module docstring for the exact
    budget, batching, stop and exhaustion semantics.

    Returns ``(executed, stopped)``: the number of executed interactions and
    whether ``on_step`` requested the stop.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    executed = 0
    scheduler_step = 0
    model_apply = model.apply
    record = recorder.record
    # The raw list behind the buffer: indexing MutableConfiguration goes
    # through Python-level dunders, four calls per step that this loop is
    # hot enough to care about.  Predicates holding a reference to `buffer`
    # still observe every write (same list).
    states = buffer._states
    n = len(states)
    next_interactions = scheduler.next_interactions

    plan_chunk = None
    if adversary is not None:
        plan_chunk = getattr(adversary, "plan_interactions", None)
        if plan_chunk is None:
            # Duck-typed adversary speaking only the per-step protocol:
            # wrap it in the reference walk.  Imported lazily because the
            # adversary package sits above the engine in the layer map
            # (its constructions import engine.py).
            from repro.adversary.omission import plan_interactions_per_step

            def plan_chunk(step, chunk, n, budget, _adversary=adversary) -> "ChunkPlan":
                return plan_interactions_per_step(_adversary, step, chunk, n, budget)

    infinite = max_steps == float("inf")
    while executed < max_steps:
        budget = max_steps - executed
        k = chunk_size if budget > chunk_size else int(budget)
        chunk = next_interactions(scheduler_step, k)
        if plan_chunk is None:
            plan = chunk
        else:
            plan, _consumed, _discarded = plan_chunk(
                scheduler_step, chunk, n, None if infinite else int(budget)
            )
        scheduler_step += len(chunk)
        if on_step is None:
            for interaction in plan:
                starter = interaction.starter
                reactor = interaction.reactor
                starter_pre = states[starter]
                reactor_pre = states[reactor]
                starter_post, reactor_post = model_apply(
                    program, starter_pre, reactor_pre, interaction.omission
                )
                states[starter] = starter_post
                states[reactor] = reactor_post
                record(interaction, starter_pre, starter_post, reactor_pre, reactor_post)
            executed += len(plan)
        else:
            for interaction in plan:
                starter = interaction.starter
                reactor = interaction.reactor
                starter_pre = states[starter]
                reactor_pre = states[reactor]
                starter_post, reactor_post = model_apply(
                    program, starter_pre, reactor_pre, interaction.omission
                )
                states[starter] = starter_post
                states[reactor] = reactor_post
                record(interaction, starter_pre, starter_post, reactor_pre, reactor_post)
                executed += 1
                if on_step(
                    interaction, starter_pre, starter_post, reactor_pre, reactor_post
                ):
                    return executed, True
        if len(chunk) < k:
            break  # exhausted mid-chunk; terminal by the scheduler contract
    return executed, False
