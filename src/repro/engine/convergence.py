"""Convergence / stabilisation detection.

Population protocols compute by *stabilisation*: the outputs of all agents
eventually stop changing and agree with the value being computed.  Because
our executions are finite prefixes, convergence is detected empirically: we
run the engine in chunks and declare convergence once a user-supplied
predicate has held over a sliding window of consecutive configurations (the
window guards against predicates that hold transiently on the way to the
true fixed point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.engine.engine import SimulationEngine
from repro.engine.trace import Trace
from repro.protocols.state import Configuration


@dataclass
class ConvergenceResult:
    """Outcome of a :func:`run_until_stable` experiment."""

    converged: bool
    steps_executed: int
    steps_to_convergence: Optional[int]
    trace: Trace

    @property
    def final_configuration(self) -> Configuration:
        return self.trace.final_configuration


def stable_output_condition(
    program: Any, expected_output: Any, projection: Optional[Callable] = None
) -> Callable[[Configuration], bool]:
    """Build a predicate: "every agent currently outputs ``expected_output``".

    ``program`` must expose ``output(state)``.  When ``projection`` is given
    (e.g. a simulator's ``project``), states are projected before the output
    map is applied — this is how simulated protocols' outputs are read out of
    simulator configurations.
    """

    def predicate(configuration: Configuration) -> bool:
        for state in configuration:
            value = state if projection is None else projection(state)
            if program.output(value) != expected_output:
                return False
        return True

    return predicate


def run_until_stable(
    engine: SimulationEngine,
    initial_configuration: Configuration,
    predicate: Callable[[Configuration], bool],
    max_steps: int = 100_000,
    stability_window: int = 0,
) -> ConvergenceResult:
    """Run until ``predicate`` holds for ``stability_window + 1`` consecutive configurations.

    Parameters
    ----------
    predicate:
        Evaluated after every executed interaction.
    max_steps:
        Hard cap on the number of executed interactions.
    stability_window:
        Number of *additional* consecutive configurations (beyond the first
        satisfying one) for which the predicate must keep holding.  A window
        of 0 stops at the first satisfying configuration; protocols whose
        predicate can hold transiently should use a window of a few hundred
        interactions.

    Notes
    -----
    The returned trace covers the whole execution, including the stability
    window, so ``steps_to_convergence`` (the index of the first
    configuration of the final stable streak) can be smaller than
    ``steps_executed``.
    """
    consecutive = 0
    first_of_streak: Optional[int] = None

    if predicate(initial_configuration):
        consecutive = 1
        first_of_streak = 0

    # We drive the engine one interaction at a time through stop conditions
    # so the predicate sees every intermediate configuration.
    steps_done = 0
    trace = Trace(initial_configuration)

    scheduler_step = 0
    configuration = initial_configuration
    while steps_done < max_steps:
        if consecutive >= stability_window + 1:
            return ConvergenceResult(
                converged=True,
                steps_executed=steps_done,
                steps_to_convergence=first_of_streak,
                trace=trace,
            )
        try:
            scheduled = engine.scheduler.next_interaction(scheduler_step)
        except Exception as exc:  # SchedulerExhausted is the only expected case
            from repro.scheduling.scheduler import SchedulerExhausted

            if isinstance(exc, SchedulerExhausted):
                break
            raise
        scheduler_step += 1

        interactions = []
        if engine.adversary is not None:
            interactions.extend(
                engine.adversary.interactions_before(
                    step=scheduler_step - 1, scheduled=scheduled, n=len(configuration)
                )
            )
        interactions.append(scheduled)

        for interaction in interactions:
            if steps_done >= max_steps:
                break
            starter_pre = configuration[interaction.starter]
            reactor_pre = configuration[interaction.reactor]
            starter_post, reactor_post = engine.model.apply(
                engine.program, starter_pre, reactor_pre, interaction.omission
            )
            trace.record(interaction, starter_post, reactor_post)
            configuration = trace.final_configuration
            steps_done += 1
            if predicate(configuration):
                if consecutive == 0:
                    first_of_streak = steps_done
                consecutive += 1
                if consecutive >= stability_window + 1:
                    break
            else:
                consecutive = 0
                first_of_streak = None

    converged = consecutive >= stability_window + 1
    return ConvergenceResult(
        converged=converged,
        steps_executed=steps_done,
        steps_to_convergence=first_of_streak if converged else None,
        trace=trace,
    )
