"""Convergence / stabilisation detection.

Population protocols compute by *stabilisation*: the outputs of all agents
eventually stop changing and agree with the value being computed.  Because
our executions are finite prefixes, convergence is detected empirically: we
drive the shared fast-path step loop (:mod:`repro.engine.fastpath`) and
declare convergence once a predicate has held over a sliding window of
consecutive configurations (the window guards against predicates that hold
transiently on the way to the true fixed point).

Predicates come in two flavours:

* a plain callable on configurations (the seed API) — re-evaluated against
  the live run buffer after every interaction, an O(n) rescan per step;
* an :class:`~repro.engine.fastpath.IncrementalPredicate` — primed once on
  the initial configuration and then fed per-step
  ``(agent, old_state, new_state)`` deltas, an O(1) check per step.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

from repro.engine.fastpath import DEFAULT_CHUNK_SIZE, as_incremental, make_recorder, run_core
from repro.engine.trace import Trace, TraceStep
from repro.obs.recorder import NULL_RECORDER, Recorder, get_recorder
from repro.protocols.state import Configuration, MutableConfiguration, State


@dataclass
class ConvergenceResult:
    """Outcome of a :func:`run_until_stable` experiment."""

    converged: bool
    steps_executed: int
    steps_to_convergence: Optional[int]
    trace: Optional[Trace]
    final: Optional[Configuration] = None
    omissions: int = 0
    #: Trailing window of steps under the ``ring`` trace policy (empty otherwise;
    #: under ``full`` the complete step list lives on ``trace``).
    last_steps: Tuple[TraceStep, ...] = field(default=())
    #: Anonymous multiset view of the final configuration as ``(state, count)``
    #: pairs (zero counts dropped).  Set by the array backend's columnar count
    #: export and by the shared-memory result transport's decoded fast lane —
    #: whose results carry ``final=None``, which is sound because the
    #: aggregate/merge layer never consumes ``final``.  ``None`` means "not
    #: exported", not "empty".
    final_counts: Optional[Tuple[Tuple[State, int], ...]] = None

    def __post_init__(self) -> None:
        if self.final is None and self.trace is not None:
            self.final = self.trace.final_configuration

    @property
    def final_configuration(self) -> Configuration:
        return self.final


def stable_output_condition(
    program: Any, expected_output: Any, projection: Optional[Callable] = None
) -> Callable[[Configuration], bool]:
    """Build a predicate: "every agent currently outputs ``expected_output``".

    ``program`` must expose ``output(state)``.  When ``projection`` is given
    (e.g. a simulator's ``project``), states are projected before the output
    map is applied — this is how simulated protocols' outputs are read out of
    simulator configurations.

    For long runs prefer the delta-driven equivalent,
    :func:`repro.engine.fastpath.incremental_stable_output`, which avoids
    rescanning all n agents on every interaction.
    """

    def predicate(configuration: Configuration) -> bool:
        for state in configuration:
            value = state if projection is None else projection(state)
            if program.output(value) != expected_output:
                return False
        return True

    return predicate


def run_until_stable(
    engine: Any,
    initial_configuration: Configuration,
    predicate: Any,
    max_steps: int = 100_000,
    stability_window: int = 0,
    *,
    trace_policy: str = "full",
    ring_size: Optional[int] = None,
    chunk_size: Optional[int] = None,
    materialize_final: bool = True,
) -> ConvergenceResult:
    """Run until ``predicate`` holds for ``stability_window + 1`` consecutive configurations.

    Parameters
    ----------
    predicate:
        Either a plain callable on configurations (evaluated against the
        live run buffer after every executed interaction) or an
        :class:`~repro.engine.fastpath.IncrementalPredicate` consuming
        per-step deltas.
    max_steps:
        Hard cap on the number of executed interactions.
    stability_window:
        Number of *additional* consecutive configurations (beyond the first
        satisfying one) for which the predicate must keep holding.  A window
        of 0 stops at the first satisfying configuration; protocols whose
        predicate can hold transiently should use a window of a few hundred
        interactions.
    trace_policy:
        ``"full"`` (default) records every step and returns a complete
        :class:`Trace`; ``"counts-only"`` records nothing per step (the
        result's ``trace`` is ``None``) and is the fast path for large
        populations; ``"ring"`` keeps only the last ``ring_size`` steps.
    chunk_size:
        Scheduled draws per batched scheduler call, forwarded to
        :func:`~repro.engine.fastpath.run_core` (default
        :data:`~repro.engine.fastpath.DEFAULT_CHUNK_SIZE`).  Purely a
        performance knob: results are chunking-independent.
    materialize_final:
        Advisory hint (see
        :meth:`~repro.engine.backends.base.ExecutionBackend.run_until_stable`):
        ``False`` tells a backend with a ``final_counts`` export that the
        caller will not read ``result.final``, letting it skip the O(n)
        python-object decode of the final configuration.  The python
        backend ignores the hint.

    Notes
    -----
    The returned trace covers the whole execution, including the stability
    window, so ``steps_to_convergence`` (the index of the first
    configuration of the final stable streak) can be smaller than
    ``steps_executed``.

    Every run consumes the scheduler through batched draws (bitwise
    identical to per-step draws, with adversary injections planned through
    the budget-aware batched protocol, so results are unchanged); when
    convergence stops the run mid-chunk, the scheduler — and the internal
    state of an attached adversary, which planned the chunk before the
    stop fired — may have been advanced past the last executed
    interaction (see :mod:`repro.engine.fastpath`; build a fresh
    adversary per run rather than reusing one across runs).

    Dispatch
    --------
    The run executes on the engine's execution backend
    (:mod:`repro.engine.backends`): the default ``python`` backend is the
    loop below; an engine built with ``backend="array"`` routes through the
    columnar numpy core instead (same semantics for everything it can
    compile, :class:`~repro.engine.backends.base.BackendCompileError`
    otherwise).
    """
    backend = getattr(engine, "backend", "python")
    # The per-run observability seam: one global read and one identity
    # check when telemetry is off (the NullRecorder guarantee); metrics
    # are per run, never per step, so the hot loops stay untouched.
    obs = get_recorder()
    begin = 0.0 if obs is NULL_RECORDER else time.perf_counter()
    if backend != "python":
        from repro.engine.backends import get_backend  # lazy: avoids an import cycle

        result = get_backend(backend).run_until_stable(
            engine.program,
            engine.model,
            engine.scheduler,
            engine.adversary,
            initial_configuration,
            predicate,
            max_steps=max_steps,
            stability_window=stability_window,
            trace_policy=trace_policy,
            ring_size=ring_size,
            chunk_size=chunk_size,
            materialize_final=materialize_final,
        )
    else:
        result = run_until_stable_core(
            engine.program,
            engine.model,
            engine.scheduler,
            engine.adversary,
            initial_configuration,
            predicate,
            max_steps=max_steps,
            stability_window=stability_window,
            trace_policy=trace_policy,
            ring_size=ring_size,
            chunk_size=chunk_size,
        )
    if obs is not NULL_RECORDER:
        _record_run(obs, backend, result, time.perf_counter() - begin,
                    chunk_size if chunk_size is not None else DEFAULT_CHUNK_SIZE)
    return result


def _record_run(obs: Recorder, backend: str, result: ConvergenceResult,
                seconds: float, chunk_size: int) -> None:
    """Record one engine run's counters and wall time (obs enabled only).

    ``engine.chunks`` is exact without touching the step loops: every
    outer chunk iteration except possibly the one a stop fires in is
    full, so the iteration count is ``ceil(steps_executed / chunk_size)``.
    """
    obs.counter("engine.runs")
    obs.counter("engine.steps", result.steps_executed)
    obs.counter("engine.chunks",
                -(-result.steps_executed // chunk_size) if chunk_size else 0)
    obs.counter("engine.omissions", result.omissions)
    obs.counter("engine.converged" if result.converged else "engine.diverged")
    obs.counter(f"engine.backend.{backend}")
    obs.observe("engine.run_seconds", seconds)


def run_until_stable_core(
    program: Any,
    model: Any,
    scheduler: Any,
    adversary: Optional[Any],
    initial_configuration: Configuration,
    predicate: Any,
    max_steps: int = 100_000,
    stability_window: int = 0,
    *,
    trace_policy: str = "full",
    ring_size: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> ConvergenceResult:
    """The python-backend convergence loop, over explicit run ingredients.

    :func:`run_until_stable` is the engine-facing wrapper; this function is
    the implementation the ``python`` backend object delegates to (backends
    receive ingredients, not engines, so they never import the engine
    layer).  Semantics are exactly those documented on
    :func:`run_until_stable`.
    """
    recorder = make_recorder(trace_policy, ring_size)
    buffer = MutableConfiguration(initial_configuration)
    incremental = as_incremental(predicate)

    consecutive = 1 if incremental.reset(buffer) else 0
    first_of_streak: Optional[int] = 0 if consecutive else None
    target = stability_window + 1

    if consecutive >= target:
        return ConvergenceResult(
            converged=True,
            steps_executed=0,
            steps_to_convergence=first_of_streak,
            trace=recorder.build_trace(initial_configuration, initial_configuration),
            final=initial_configuration,
            omissions=0,
            last_steps=recorder.last_steps(),
        )

    progress = {"consecutive": consecutive, "first": first_of_streak, "steps": 0}
    wants_deltas = getattr(incremental, "consumes_deltas", True)

    def on_step(interaction, starter_pre, starter_post, reactor_pre, reactor_post) -> bool:
        progress["steps"] += 1
        deltas = ()
        if wants_deltas:
            if starter_pre != starter_post:
                deltas = ((interaction.starter, starter_pre, starter_post),)
            if reactor_pre != reactor_post:
                deltas += ((interaction.reactor, reactor_pre, reactor_post),)
        if incremental.update(deltas):
            if progress["consecutive"] == 0:
                progress["first"] = progress["steps"]
            progress["consecutive"] += 1
        else:
            progress["consecutive"] = 0
            progress["first"] = None
        return progress["consecutive"] >= target

    steps_done, _stopped = run_core(
        program,
        model,
        scheduler,
        adversary,
        buffer,
        recorder,
        max_steps,
        on_step=on_step,
        chunk_size=chunk_size if chunk_size is not None else DEFAULT_CHUNK_SIZE,
    )

    final = buffer.freeze()
    converged = progress["consecutive"] >= target
    return ConvergenceResult(
        converged=converged,
        steps_executed=steps_done,
        steps_to_convergence=progress["first"] if converged else None,
        trace=recorder.build_trace(initial_configuration, final),
        final=final,
        omissions=recorder.omissions,
        last_steps=recorder.last_steps(),
    )
