"""Execution traces.

A :class:`Trace` records an execution ``Gamma_I(C0)`` of a program under an
interaction model: the initial configuration plus, for every executed
interaction, the pre- and post-states of the two participants.  Storing
per-step deltas (rather than full configurations) keeps memory linear in the
number of steps and independent of the population size, while still allowing
full configurations to be reconstructed on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

from repro.protocols.state import Configuration, State
from repro.scheduling.runs import Interaction, Run


@dataclass(frozen=True)
class TraceStep:
    """One executed interaction and the state changes it caused."""

    index: int
    interaction: Interaction
    starter_pre: State
    starter_post: State
    reactor_pre: State
    reactor_post: State

    @property
    def changed_agents(self) -> tuple:
        """Indices of the agents whose state actually changed at this step."""
        changed = []
        if self.starter_pre != self.starter_post:
            changed.append(self.interaction.starter)
        if self.reactor_pre != self.reactor_post:
            changed.append(self.interaction.reactor)
        return tuple(changed)

    @property
    def is_silent(self) -> bool:
        """Whether the interaction left both agents unchanged."""
        return not self.changed_agents


class Trace:
    """The execution of a program: initial configuration plus per-step deltas."""

    def __init__(self, initial: Configuration) -> None:
        self._initial = initial
        self._steps: List[TraceStep] = []
        self._current = initial

    @classmethod
    def from_steps(
        cls,
        initial: Configuration,
        steps: Sequence[TraceStep],
        final: Configuration,
    ) -> "Trace":
        """Build a trace from already-recorded steps without replaying them.

        This is the freeze boundary of the fast-path execution core
        (:mod:`repro.engine.fastpath`): the core records
        :class:`TraceStep` deltas while mutating an array-backed buffer in
        place, then hands the step list and the frozen final configuration
        over in one O(T) call instead of paying an O(n) configuration copy
        per recorded step.  ``final`` must be the configuration reached by
        applying ``steps`` to ``initial`` in order.
        """
        trace = cls(initial)
        trace._steps = list(steps)
        trace._current = final
        return trace

    # -- construction (used by the engine) ----------------------------------------------

    def record(
        self,
        interaction: Interaction,
        starter_post: State,
        reactor_post: State,
    ) -> TraceStep:
        """Record one executed interaction; returns the recorded step."""
        starter_pre = self._current[interaction.starter]
        reactor_pre = self._current[interaction.reactor]
        step = TraceStep(
            index=len(self._steps),
            interaction=interaction,
            starter_pre=starter_pre,
            starter_post=starter_post,
            reactor_pre=reactor_pre,
            reactor_post=reactor_post,
        )
        self._steps.append(step)
        self._current = self._current.apply_interaction(
            interaction.starter, interaction.reactor, starter_post, reactor_post
        )
        return step

    # -- basic accessors -------------------------------------------------------------------

    @property
    def initial_configuration(self) -> Configuration:
        """The configuration ``C0`` the execution started from."""
        return self._initial

    @property
    def final_configuration(self) -> Configuration:
        """The configuration after the last recorded step."""
        return self._current

    @property
    def steps(self) -> Sequence[TraceStep]:
        """All recorded steps, in execution order."""
        return tuple(self._steps)

    @property
    def n(self) -> int:
        """Population size."""
        return len(self._initial)

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self) -> Iterator[TraceStep]:
        return iter(self._steps)

    def __getitem__(self, index: int) -> TraceStep:
        return self._steps[index]

    # -- derived data ------------------------------------------------------------------------

    def run(self) -> Run:
        """The run (sequence of interactions) that produced this trace."""
        return Run(step.interaction for step in self._steps)

    def omission_count(self) -> int:
        """``O(I)``: number of omissive interactions executed."""
        return sum(1 for step in self._steps if step.interaction.is_omissive)

    def configurations(self) -> Iterator[Configuration]:
        """Yield the configuration sequence ``C0, C1, ..., C_T`` (T+1 items)."""
        config = self._initial
        yield config
        for step in self._steps:
            config = config.apply_interaction(
                step.interaction.starter,
                step.interaction.reactor,
                step.starter_post,
                step.reactor_post,
            )
            yield config

    def configuration_at(self, index: int) -> Configuration:
        """The configuration reached after ``index`` steps (``index = 0`` is ``C0``)."""
        if index < 0 or index > len(self._steps):
            raise IndexError(f"configuration index {index} out of range")
        config = self._initial
        for step in self._steps[:index]:
            config = config.apply_interaction(
                step.interaction.starter,
                step.interaction.reactor,
                step.starter_post,
                step.reactor_post,
            )
        return config

    def projected_configurations(
        self, projection: Callable[[State], State]
    ) -> Iterator[Configuration]:
        """Yield ``pi(C0), pi(C1), ...`` for a state projection ``pi`` (e.g. ``pi_P``)."""
        for config in self.configurations():
            yield config.project(projection)

    def final_projected(self, projection: Callable[[State], State]) -> Configuration:
        """The projection of the final configuration."""
        return self._current.project(projection)

    def non_silent_steps(self) -> List[TraceStep]:
        """All steps that changed at least one agent's state."""
        return [step for step in self._steps if not step.is_silent]

    def steps_involving(self, agent: int) -> List[TraceStep]:
        """All steps in which ``agent`` participated."""
        return [step for step in self._steps if step.interaction.involves(agent)]

    def __repr__(self) -> str:
        return (
            f"Trace(n={self.n}, steps={len(self._steps)}, "
            f"omissions={self.omission_count()})"
        )
