"""Zero-copy shared-memory result transport for the process fan-out.

The process backend's remaining hot-path tax is serialization: every
:class:`~repro.engine.convergence.ConvergenceResult` coming back from a
worker is pickled — and under ``counts-only`` the dominant payload is the
``final`` configuration, one python object per agent, so the cost grows
with the population even though the aggregate layer only ever consumes a
handful of scalars per run.  This module replaces that channel with a
**columnar fast lane**: workers encode a batch's results as fixed-width
int64 rows inside one :mod:`multiprocessing.shared_memory` arena, and the
parent reads scalars straight out of the mapped buffer — no pickling, no
intermediate copies, and a per-batch payload of ``O(states)`` instead of
``O(population)``.

Two lanes, one contract
-----------------------

* **Columnar lane.**  A result is columnar-eligible when it carries no
  per-step payload (``trace is None``, no ``last_steps`` ring dump) and
  its final configuration is expressible as state counts — every
  ``counts-only`` run, on both engine backends.  Eligible results become
  rows ``[converged, steps_executed, steps_to_convergence + 1 (0 encodes
  None), omissions, count_0 .. count_{k-1}]`` over the batch's state
  column set; decoded results carry the counts on
  :attr:`~repro.engine.convergence.ConvergenceResult.final_counts` and
  ``final=None`` (the aggregate layer never consumes ``final``, so the
  merge-identity contract is unaffected).
* **Overflow lane.**  Everything else — full traces, ring failure dumps,
  results without a counts export — rides the descriptor's ordinary
  pickle channel untouched, so the fast path is allocation-free on
  receive and the slow path is never wrong.

Arena lifecycle
---------------

Workers create, write and close an arena per encoded batch; ownership
passes to the parent with the returned :class:`ShmBatch` descriptor, and
:func:`decode_batch` unlinks the arena the moment its rows are read.  An
encoding failure unlinks before propagating
(:func:`encode_batch`); a batch that will never be decoded — a worker or
merge error mid-stream, an interrupt — is released via
:func:`dispose_batch` by the fan-out's cleanup path
(:func:`repro.engine.experiment._merge_windowed`).  Both sides register
with the stdlib resource tracker, so even a crashed parent cannot leak a
segment past process exit.

This module deliberately holds **no store write path**: transports hand
decoded results back to the experiment merge, and campaign records reach
disk only through the sanctioned single-writer appenders in
:mod:`repro.campaign.store` (lint rule RPL004 scopes this module in).
"""

from __future__ import annotations

import warnings
from array import array
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

from repro.engine.convergence import ConvergenceResult
from repro.obs.recorder import get_recorder
from repro.protocols.state import State

#: The selectable result transports for ``repeat_experiment``.  ``pickle``
#: is the chunked-pickle seed path; ``shm`` is the shared-memory columnar
#: transport (process fan-out only); ``auto`` picks ``shm`` exactly when
#: the fan-out crosses processes, the trace policy is ``counts-only``
#: (every result fits the columnar lane) and shared memory is usable.
RESULT_TRANSPORTS = ("pickle", "shm", "auto")

#: int64 header columns preceding the per-state count columns of each row:
#: converged flag, steps_executed, steps_to_convergence + 1 (0 = None),
#: omissions.
_HEADER_WIDTH = 4

#: Bytes per int64 cell.
_CELL_BYTES = 8


class TransportError(RuntimeError):
    """The shm transport was explicitly requested but cannot be used."""


@dataclass(frozen=True)
class ShmBatch:
    """Picklable descriptor of one encoded result batch.

    ``name`` is the shared-memory arena holding the columnar rows
    (``None`` when every result overflowed); ``states`` is the batch's
    count-column order; ``overflow`` maps run offsets to the results that
    ride the pickle lane.  Offsets not in ``overflow`` are columnar, in
    arena row order.
    """

    count: int
    name: Optional[str]
    states: Tuple[State, ...]
    overflow: Dict[int, ConvergenceResult] = field(default_factory=dict)


_probe_done = False
_probe_reason: Optional[str] = None


def shm_unavailable_reason() -> Optional[str]:
    """Why shared memory is unusable here, or ``None`` when it works.

    One create/close/unlink probe of a minimal segment, memoized for the
    process lifetime — ``/dev/shm`` being absent, full, or unwritable all
    surface as the OS error text callers put in warnings and errors.
    """
    global _probe_done, _probe_reason
    if not _probe_done:
        try:
            segment = shared_memory.SharedMemory(create=True, size=_CELL_BYTES)
        except OSError as error:
            _probe_reason = str(error) or type(error).__name__
        else:
            segment.close()
            # repro-lint: disable=RPL004 reason=SharedMemory.unlink releases the probe's shm segment, not a store file
            segment.unlink()
        _probe_done = True
    return _probe_reason


def resolve_transport(transport: str, *, jobs_backend: str, trace_policy: str,
                      process_fanout: bool) -> str:
    """Pin a ``result_transport`` request to the concrete lane to use.

    ``shm`` is validated strictly: it crosses process boundaries, so any
    other fan-out backend is a :class:`ValueError`, and an unusable
    shared-memory subsystem is a :class:`TransportError` naming the
    fallback flag.  ``auto`` degrades gracefully instead — it picks
    ``shm`` only when the process fan-out will actually run
    (``process_fanout``), the trace policy is ``counts-only`` (the
    resolved backend produces columnar results) and shared memory is
    usable, warning once and falling back to ``pickle`` when only the
    last condition fails.
    """
    if transport not in RESULT_TRANSPORTS:
        raise ValueError(
            f"unknown result_transport {transport!r}; "
            f"expected one of {RESULT_TRANSPORTS}")
    if transport == "shm":
        if jobs_backend != "process":
            raise ValueError(
                "result_transport 'shm' crosses process boundaries; it "
                "requires the process fan-out backend "
                "(jobs_backend='process' / --backend process)")
        reason = shm_unavailable_reason()
        if reason is not None:
            raise TransportError(
                f"shared-memory result transport unavailable: {reason}; "
                "rerun with --result-transport pickle")
        return "shm"
    if transport == "auto" and process_fanout and jobs_backend == "process" \
            and trace_policy == "counts-only":
        reason = shm_unavailable_reason()
        if reason is None:
            return "shm"
        warnings.warn(
            f"result_transport 'auto': shared memory unavailable ({reason}); "
            "falling back to the pickle transport",
            RuntimeWarning, stacklevel=2)
        # The same degradation as a structured event, so it is inspectable
        # in the metrics sink after the run, not just printed once.
        get_recorder().event(
            "transport.degraded", requested="auto", fallback="pickle",
            reason=reason)
    return "pickle"


def _columnar_counts(result: ConvergenceResult) -> Optional[Dict[State, int]]:
    """The count vector of a columnar-eligible result, ``None`` to overflow.

    Eligibility is exactly "no per-step payload and a counts export":
    results carrying a trace or a ring dump must survive byte-identically
    and take the pickle lane; ``final_counts`` (the array backend's
    columnar export) is preferred over rebuilding a histogram from the
    frozen configuration.
    """
    if result.trace is not None or result.last_steps:
        return None
    if result.final_counts is not None:
        return dict(result.final_counts)
    if result.final is not None:
        return result.final.histogram()
    return None


def encode_batch(results: List[ConvergenceResult]) -> ShmBatch:
    """Encode a batch into an arena + descriptor (the worker side).

    Columnar-eligible results become fixed-width int64 rows over the
    union of their state sets (first-occurrence order across the batch,
    shipped once on the descriptor); the rest land in the descriptor's
    overflow dict.  The arena is created here and handed to the parent by
    name; if anything fails after creation, the arena is unlinked before
    the error propagates, so a crashing worker leaks nothing.
    """
    columnar: Dict[int, Dict[State, int]] = {}
    overflow: Dict[int, ConvergenceResult] = {}
    column_of: Dict[State, int] = {}
    states: List[State] = []
    for offset, result in enumerate(results):
        counts = _columnar_counts(result)
        if counts is None:
            overflow[offset] = result
            continue
        columnar[offset] = counts
        for state in counts:
            if state not in column_of:
                column_of[state] = len(states)
                states.append(state)
    if not columnar:
        return ShmBatch(count=len(results), name=None, states=(),
                        overflow=overflow)

    width = _HEADER_WIDTH + len(states)
    cells = array("q")
    for offset in sorted(columnar):
        result = results[offset]
        row = [0] * width
        row[0] = 1 if result.converged else 0
        row[1] = result.steps_executed
        row[2] = 0 if result.steps_to_convergence is None \
            else result.steps_to_convergence + 1
        row[3] = result.omissions
        for state, count in columnar[offset].items():
            row[_HEADER_WIDTH + column_of[state]] = count
        cells.extend(row)
    payload = cells.tobytes()

    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    written = False
    try:
        segment.buf[:len(payload)] = payload
        written = True
    finally:
        name = segment.name
        segment.close()
        if not written:
            # repro-lint: disable=RPL004 reason=SharedMemory.unlink reclaims a half-written arena, not a store file
            segment.unlink()
    return ShmBatch(count=len(results), name=name, states=tuple(states),
                    overflow=overflow)


def decode_batch(batch: ShmBatch) -> List[ConvergenceResult]:
    """Decode a batch descriptor and unlink its arena (the parent side).

    The columnar rows are read as scalars straight out of the mapped
    buffer (one ``memoryview.cast`` — no pickling, no intermediate byte
    copies); decoded results carry ``final_counts`` (zero counts dropped,
    column order) and ``final=None``.  Results are returned in run-index
    order with the overflow lane interleaved back in place.  The arena is
    unlinked before returning, success or not, so a decoded batch can
    never leak its segment.
    """
    decoded: Dict[int, ConvergenceResult] = dict(batch.overflow)
    if batch.name is not None:
        width = _HEADER_WIDTH + len(batch.states)
        columnar_offsets = [offset for offset in range(batch.count)
                            if offset not in batch.overflow]
        segment = shared_memory.SharedMemory(name=batch.name)
        try:
            cells = segment.buf.cast("q")
            try:
                for row, offset in enumerate(columnar_offsets):
                    base = row * width
                    raw_steps_to = cells[base + 2]
                    counts = tuple(
                        (state, cells[base + _HEADER_WIDTH + column])
                        for column, state in enumerate(batch.states)
                        if cells[base + _HEADER_WIDTH + column])
                    decoded[offset] = ConvergenceResult(
                        converged=bool(cells[base]),
                        steps_executed=cells[base + 1],
                        steps_to_convergence=(None if raw_steps_to == 0
                                              else raw_steps_to - 1),
                        trace=None,
                        final=None,
                        omissions=cells[base + 3],
                        last_steps=(),
                        final_counts=counts,
                    )
            finally:
                # The cast view must be released before close(): a live
                # export keeps the mmap open and close() would raise.
                cells.release()
        finally:
            segment.close()
            # repro-lint: disable=RPL004 reason=SharedMemory.unlink frees the decoded arena, not a store file
            segment.unlink()
    return [decoded[offset] for offset in range(batch.count)]


def dispose_batch(batch: ShmBatch) -> None:
    """Unlink a batch's arena without decoding it (error/interrupt cleanup).

    Used by the fan-out's failure path for descriptors that will never be
    decoded.  An already-unlinked (or never-created) arena is fine — the
    point is that no path out of the fan-out leaves a segment behind.
    """
    if batch.name is None:
        return
    try:
        segment = shared_memory.SharedMemory(name=batch.name)
    except FileNotFoundError:
        return
    segment.close()
    # repro-lint: disable=RPL004 reason=SharedMemory.unlink frees an undecoded arena on the failure path, not a store file
    segment.unlink()
