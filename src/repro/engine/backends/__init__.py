"""Pluggable execution backends.

The engine's run semantics (budget, stop conditions, trace policies — see
:mod:`repro.engine.fastpath`) are implemented by interchangeable *backends*:

========  ==================================================================
name      implementation
========  ==================================================================
python    the default interpreted fast path; supports everything, no
          third-party dependencies (:mod:`.python_backend`)
array     opt-in columnar numpy execution for protocols with small finite
          state spaces — interned states, compiled transition tables,
          whole-chunk vectorized draws (:mod:`.array_backend`); requires
          the ``repro[fast]`` extra
========  ==================================================================

Selection points: ``SimulationEngine(backend=...)``,
``ExperimentSpec.backend`` (pickles across the process fan-out) and
``repro run --engine-backend``.  Backend implementations are imported
lazily, so ``import repro`` never touches numpy and installs without the
extra keep working until ``array`` is actually requested.
"""

from __future__ import annotations

from typing import Dict

from repro.engine.backends.base import (
    BackendCompileError,
    BackendError,
    BackendUnavailableError,
    ExecutionBackend,
)

#: The selectable execution backends.
ENGINE_BACKENDS = ("python", "array")

_INSTANCES: Dict[str, ExecutionBackend] = {}


def validate_backend(name: str) -> str:
    """Check ``name`` against :data:`ENGINE_BACKENDS` without importing it.

    Cheap enough for spec/engine constructors: availability of the array
    backend's numpy dependency is only checked when the backend is actually
    resolved by :func:`get_backend`.
    """
    if name not in ENGINE_BACKENDS:
        known = ", ".join(ENGINE_BACKENDS)
        raise ValueError(f"unknown engine backend {name!r}; known backends: {known}")
    return name


def get_backend(name: str) -> ExecutionBackend:
    """Resolve a backend name to its (shared, stateless) instance.

    Raises :class:`ValueError` for unknown names and
    :class:`BackendUnavailableError` when the ``array`` backend is requested
    without numpy installed.
    """
    validate_backend(name)
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    if name == "python":
        from repro.engine.backends.python_backend import PythonBackend

        instance = PythonBackend()
    else:
        try:
            import numpy  # noqa: F401 - availability probe
        except ImportError:
            raise BackendUnavailableError(
                "the array engine backend requires numpy; install the fast "
                "extra (pip install 'repro[fast]') or numpy itself, or use "
                "the default python backend"
            ) from None
        from repro.engine.backends.array_backend import ArrayBackend

        instance = ArrayBackend()
    _INSTANCES[name] = instance
    return instance


__all__ = [
    "BackendCompileError",
    "BackendError",
    "BackendUnavailableError",
    "ENGINE_BACKENDS",
    "ExecutionBackend",
    "get_backend",
    "validate_backend",
]
