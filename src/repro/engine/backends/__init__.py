"""Pluggable execution backends.

The engine's run semantics (budget, stop conditions, trace policies — see
:mod:`repro.engine.fastpath`) are implemented by interchangeable *backends*:

========  ==================================================================
name      implementation
========  ==================================================================
python    the default interpreted fast path; supports everything, no
          third-party dependencies (:mod:`.python_backend`)
array     opt-in columnar numpy execution for protocols with small finite
          state spaces — interned states, compiled transition tables,
          whole-chunk vectorized draws (:mod:`.array_backend`); requires
          the ``repro[fast]`` extra
========  ==================================================================

Selection points: ``SimulationEngine(backend=...)``,
``ExperimentSpec.backend`` (pickles across the process fan-out) and
``repro run --engine-backend``.  Backend implementations are imported
lazily, so ``import repro`` never touches numpy and installs without the
extra keep working until ``array`` is actually requested.

Specs (but not engines) additionally accept the pseudo-backend ``"auto"``:
:func:`repro.protocols.registry.resolve_backend` probes whether every
ingredient of the experiment compiles for the array backend
(:func:`repro.engine.backends.array_backend.probe_compile`) and pins the
fastest concrete backend *before* the spec reaches an engine or a campaign
cell hash.  ``"auto"`` therefore never appears here in
:data:`ENGINE_BACKENDS` and :func:`get_backend` refuses it.
"""

from __future__ import annotations

from typing import Dict

from repro.engine.backends.base import (
    BackendCompileError,
    BackendError,
    BackendUnavailableError,
    ExecutionBackend,
)

#: The selectable execution backends.
ENGINE_BACKENDS = ("python", "array")

#: What a spec/CLI flag may say: the concrete backends plus ``"auto"``,
#: which :func:`repro.protocols.registry.resolve_backend` replaces with a
#: concrete name before execution.
BACKEND_CHOICES = ENGINE_BACKENDS + ("auto",)

_INSTANCES: Dict[str, ExecutionBackend] = {}


def validate_backend(name: str) -> str:
    """Check ``name`` against :data:`BACKEND_CHOICES` without importing it.

    Cheap enough for spec/engine constructors: availability of the array
    backend's numpy dependency is only checked when the backend is actually
    resolved by :func:`get_backend`.  ``"auto"`` validates (specs may carry
    it) but :func:`get_backend` refuses it — resolution to a concrete
    backend happens in :func:`repro.protocols.registry.resolve_backend`.
    """
    if name not in BACKEND_CHOICES:
        known = ", ".join(BACKEND_CHOICES)
        raise ValueError(f"unknown engine backend {name!r}; known backends: {known}")
    return name


def get_backend(name: str) -> ExecutionBackend:
    """Resolve a backend name to its (shared, stateless) instance.

    Raises :class:`ValueError` for unknown names (and for ``"auto"``, which
    must be resolved to a concrete backend first) and
    :class:`BackendUnavailableError` when the ``array`` backend is requested
    without numpy installed.
    """
    validate_backend(name)
    if name == "auto":
        raise ValueError(
            "engine backend 'auto' must be resolved to a concrete backend "
            "before execution; resolve the spec first with "
            "repro.protocols.registry.resolve_backend (the CLI and campaign "
            "planner do this automatically)"
        )
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    if name == "python":
        from repro.engine.backends.python_backend import PythonBackend

        instance = PythonBackend()
    else:
        try:
            import numpy  # noqa: F401 - availability probe
        except ImportError:
            raise BackendUnavailableError(
                "the array engine backend requires numpy; install the fast "
                "extra (pip install 'repro[fast]') or numpy itself, or use "
                "the default python backend"
            ) from None
        from repro.engine.backends.array_backend import ArrayBackend

        instance = ArrayBackend()
    _INSTANCES[name] = instance
    return instance


__all__ = [
    "BACKEND_CHOICES",
    "BackendCompileError",
    "BackendError",
    "BackendUnavailableError",
    "ENGINE_BACKENDS",
    "ExecutionBackend",
    "get_backend",
    "validate_backend",
]
