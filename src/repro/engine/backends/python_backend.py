"""The default execution backend: the interpreted fast path.

This backend is a thin object wrapper around the pieces that predate the
backend abstraction — :func:`repro.engine.fastpath.run_core` for bounded
runs and :func:`repro.engine.convergence.run_until_stable_core` for
convergence experiments.  It supports every program, model, scheduler,
adversary, predicate, stop condition and trace policy, and is the semantic
reference the array backend is tested against.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.engine.backends.base import ExecutionBackend
from repro.engine.convergence import ConvergenceResult, run_until_stable_core
from repro.engine.fastpath import DEFAULT_CHUNK_SIZE, RunResult, make_recorder, run_core
from repro.protocols.state import Configuration, MutableConfiguration


class PythonBackend(ExecutionBackend):
    """Pure-Python execution over a :class:`MutableConfiguration` buffer."""

    name = "python"

    def execute(
        self,
        program: Any,
        model: Any,
        scheduler: Any,
        adversary: Optional[Any],
        initial_configuration: Configuration,
        max_steps: int,
        stop_condition: Optional[Callable[[Any], bool]] = None,
        *,
        trace_policy: str = "full",
        ring_size: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> RunResult:
        """The body of :meth:`SimulationEngine.execute` (see its docstring).

        Argument validation (non-negative budget, population of at least
        two) stays in the engine wrapper, shared by every backend.
        """
        recorder = make_recorder(trace_policy, ring_size)
        buffer = MutableConfiguration(initial_configuration)
        on_step = None
        if stop_condition is not None:
            on_step = lambda *_step: stop_condition(buffer)  # noqa: E731

        executed, stopped = run_core(
            program,
            model,
            scheduler,
            adversary,
            buffer,
            recorder,
            max_steps,
            on_step=on_step,
            chunk_size=chunk_size if chunk_size is not None else DEFAULT_CHUNK_SIZE,
        )
        final = buffer.freeze()
        return RunResult(
            policy=recorder.policy,
            steps=executed,
            omissions=recorder.omissions,
            final_configuration=final,
            trace=recorder.build_trace(initial_configuration, final),
            last_steps=recorder.last_steps(),
            stopped=stopped,
        )

    def run_until_stable(
        self,
        program: Any,
        model: Any,
        scheduler: Any,
        adversary: Optional[Any],
        initial_configuration: Configuration,
        predicate: Any,
        max_steps: int = 100_000,
        stability_window: int = 0,
        *,
        trace_policy: str = "full",
        ring_size: Optional[int] = None,
        chunk_size: Optional[int] = None,
        materialize_final: bool = True,
    ) -> ConvergenceResult:
        # ``materialize_final`` is advisory (see the base class): this
        # backend exports no ``final_counts``, so it always materialises.
        return run_until_stable_core(
            program,
            model,
            scheduler,
            adversary,
            initial_configuration,
            predicate,
            max_steps=max_steps,
            stability_window=stability_window,
            trace_policy=trace_policy,
            ring_size=ring_size,
            chunk_size=chunk_size,
        )
