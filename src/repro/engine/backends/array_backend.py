"""The columnar numpy execution backend ("array engine").

Per-object Python execution tops out well below what n = 10^5..10^7
populations need: even the batched fast path pays an interpreted loop per
interaction.  This backend removes the per-step interpreter entirely for
the compilable subset of experiments:

* **Interning** — the program's finite state space is interned to dense
  codes ``0 .. k-1`` in the protocol's canonical ``state_order()``
  (:class:`~repro.protocols.state.StateInterner`), and the population
  becomes one columnar int array of codes.
* **Compilation** — the transition function is evaluated once per ordered
  state pair through the interaction model, producing two flat
  ``(k*k,)`` lookup tables (starter- and reactor-post codes).  After
  compilation, the protocol and model are never called again.
* **Chunked vectorized draws** — scheduler pairs arrive as whole index
  arrays from the numpy draw kernels (:mod:`repro.scheduling.array_draws`),
  one ``Generator.integers`` call per component per chunk.
* **Collision-free segments** — a chunk is split at the first step that
  reuses an agent already touched earlier in the segment; within a segment
  all agents are distinct, so gather → table lookup → scatter is *exactly*
  sequential execution.  Segment boundaries are found vectorially (one
  stable argsort of the chunk's agent indices); the expected segment length
  is Θ(√n), so the per-segment Python overhead vanishes as populations
  grow.
* **Incremental counts** — convergence predicates compile to a per-state
  membership mask; per-step satisfaction counts are a cumulative sum over
  the segment's mask deltas, and the stability-window streak is scanned
  vectorially.  Counts-only runs materialise no per-step objects at all.

Equivalence contract (pinned by ``tests/test_array_backend.py``):

* the backend draws from its own seeded ``PCG64`` streams — bitwise parity
  with the python backend's ``random.Random`` streams is out of scope;
* runs are bitwise self-reproducible (same seed, same result) and
  chunk-size independent (``chunk_size`` is purely a performance knob);
* budget, stop-condition and stability-window semantics are *exactly* the
  python backend's: a run stops after the first step whose configuration
  completes the required streak, and otherwise executes exactly
  ``max_steps`` interactions;
* on deterministic schedulers (round-robin) results agree with the python
  backend bit for bit; on random schedulers they agree distributionally.

Everything non-compilable — unbounded state spaces, scripted/weighted
schedulers, omission adversaries with a live budget, arbitrary
stop conditions and predicates, trace policies other than ``counts-only``
— raises :class:`~repro.engine.backends.base.BackendCompileError` naming
the ingredient, so callers can fall back to the python backend.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional, Tuple

import numpy as np

from repro.adversary.omission import NoOmissionAdversary
from repro.engine.backends.base import BackendCompileError, ExecutionBackend
from repro.engine.convergence import ConvergenceResult
from repro.engine.fastpath import RunResult
from repro.protocols.protocol import ProtocolError
from repro.protocols.state import (
    ArrayConfiguration,
    Configuration,
    InterningError,
    StateInterner,
)
from repro.scheduling.array_draws import ArrayDrawKernel, compile_scheduler

#: Scheduler pairs drawn per chunk.  Larger than the python backend's chunk:
#: a chunk only bounds working-set size here, the real batching unit is the
#: collision-free segment (expected length Θ(√n)) inside it.
DEFAULT_ARRAY_CHUNK = 4096

#: Hard cap on interned state spaces: compilation evaluates k^2 transitions
#: and the flat tables hold 2·k^2 int32 entries, so "small finite state
#: space" is enforced rather than assumed.
MAX_INTERNED_STATES = 1024


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------


class CompiledProgram:
    """A program × model pair compiled to flat transition lookup tables.

    ``delta_starter[s * k + r]`` / ``delta_reactor[s * k + r]`` are the
    post-interaction codes of an omission-free ``(s, r)`` interaction.
    """

    __slots__ = ("interner", "size", "delta_starter", "delta_reactor")

    def __init__(self, interner: StateInterner, delta_starter, delta_reactor) -> None:
        self.interner = interner
        self.size = len(interner)
        self.delta_starter = delta_starter
        self.delta_reactor = delta_reactor


def compile_program(program: Any, model: Any) -> CompiledProgram:
    """Intern the program's states and tabulate its transitions under ``model``.

    Raises :class:`BackendCompileError` when the program has no finite
    canonical state order, the state space exceeds
    :data:`MAX_INTERNED_STATES`, or a transition leaves the declared state
    space.
    """
    order = getattr(program, "state_order", None)
    if order is None:
        raise BackendCompileError(
            f"program {type(program).__name__} exposes no state_order(); the "
            "array backend only runs programs with a finite, canonically "
            "ordered state space (all catalog protocols and the trivial "
            "TW simulator qualify)"
        )
    try:
        states = tuple(order())
    except ProtocolError as error:
        raise BackendCompileError(
            f"program {type(program).__name__} cannot be compiled for the "
            f"array backend: {error} (simulators with unbounded composite "
            "state spaces need the python backend)"
        ) from None
    if len(states) > MAX_INTERNED_STATES:
        raise BackendCompileError(
            f"program {type(program).__name__} has {len(states)} states; the "
            f"array backend tabulates k^2 transitions and caps k at "
            f"{MAX_INTERNED_STATES}"
        )
    interner = StateInterner(states)
    size = len(interner)
    delta_starter = np.empty(size * size, dtype=np.int32)
    delta_reactor = np.empty(size * size, dtype=np.int32)
    apply = model.apply
    encode = interner.encode
    for i, starter in enumerate(interner.states):
        base = i * size
        for j, reactor in enumerate(interner.states):
            starter_post, reactor_post = apply(program, starter, reactor)
            try:
                delta_starter[base + j] = encode(starter_post)
                delta_reactor[base + j] = encode(reactor_post)
            except InterningError:
                raise BackendCompileError(
                    f"transition ({starter!r}, {reactor!r}) -> "
                    f"({starter_post!r}, {reactor_post!r}) of program "
                    f"{type(program).__name__} leaves its declared state "
                    "space; the array backend requires a closed transition "
                    "table"
                ) from None
    return CompiledProgram(interner, delta_starter, delta_reactor)


def _compile_predicate(
    predicate: Any, interner: StateInterner, population: int
) -> Tuple[np.ndarray, int]:
    """Compile a convergence predicate to ``(per-state mask, target count)``.

    Only state-count predicates compile (the
    :meth:`~repro.engine.fastpath.IncrementalPredicate.as_state_count`
    protocol): satisfaction is then a running count over the mask, updated
    per segment with a cumulative sum.
    """
    as_state_count = getattr(predicate, "as_state_count", None)
    shape = as_state_count() if callable(as_state_count) else None
    if shape is None:
        raise BackendCompileError(
            f"predicate {type(predicate).__name__} cannot be compiled for "
            "the array backend; express it as a state-count predicate "
            "(repro.engine.fastpath.AgentCountPredicate) or use the python "
            "backend"
        )
    satisfies, target = shape
    mask = np.fromiter(
        (1 if satisfies(state) else 0 for state in interner.states),
        dtype=np.int64,
        count=len(interner),
    )
    return mask, (population if target is None else int(target))


def _check_run_request(
    adversary: Optional[Any], trace_policy: str, max_steps: float
) -> int:
    """Validate the backend-independent run ingredients; returns the budget."""
    if adversary is not None and not isinstance(adversary, NoOmissionAdversary):
        raise BackendCompileError(
            f"adversary {type(adversary).__name__} cannot be compiled for "
            "the array backend (omission injection draws from per-step "
            "Python RNG state); run adversarial experiments on the python "
            "backend"
        )
    if trace_policy != "counts-only":
        raise BackendCompileError(
            f"trace policy {trace_policy!r} is not supported by the array "
            "backend (per-step records would defeat columnar execution); "
            "use --trace-policy counts-only or the python backend"
        )
    if not math.isfinite(max_steps) or max_steps < 0:
        raise BackendCompileError(
            "the array backend needs a finite, non-negative step budget"
        )
    return int(max_steps)


# ---------------------------------------------------------------------------
# the columnar step loop
# ---------------------------------------------------------------------------


def _per_step_collision_horizon(starters: np.ndarray, reactors: np.ndarray) -> np.ndarray:
    """For each step of a chunk, the latest earlier step sharing an agent.

    ``horizon[t] == p`` means step ``t`` touches an agent last touched at
    step ``p`` of the same chunk (``-1``: none).  A slice ``[u, v)`` is
    collision-free — safe to execute as one vectorized gather/scatter —
    iff ``horizon[t] < u`` for all ``t`` in it.

    Computed with one value sort of ``(agent << shift) | position``
    composite keys over the chunk's interleaved agent indices: sorting
    brings equal agents together ordered by position, and the low bits
    recover each occurrence's predecessor.  A composite ``np.sort`` is
    ~5x faster than the equivalent stable ``np.argsort`` + gathers, and
    this function is the dominant fixed cost of the columnar loop.
    """
    k = len(starters)
    two_k = 2 * k
    shift = two_k.bit_length()
    agents = np.empty(two_k, dtype=np.int64)
    agents[0::2] = starters
    agents[1::2] = reactors
    keys = (agents << shift) | np.arange(two_k, dtype=np.int64)
    keys.sort()
    position = keys & ((1 << shift) - 1)
    same = (keys[1:] >> shift) == (keys[:-1] >> shift)
    previous = np.full(two_k, -1, dtype=np.int64)
    previous[position[1:][same]] = position[:-1][same]
    previous //= 2  # interleaved position -> step index (-1 stays -1)
    return np.maximum(previous[0::2], previous[1::2])


class _CountStreakTracker:
    """Running predicate count + consecutive-hold streak across segments.

    Mirrors the python backend's convergence loop state: ``count`` is the
    number of agents currently satisfying the predicate, ``consecutive``
    the number of consecutive configurations (including the initial one)
    for which ``count == target_count`` has held.
    """

    __slots__ = ("mask", "target_count", "streak_target", "count", "consecutive")

    def __init__(self, mask, target_count: int, streak_target: int,
                 count: int, consecutive: int) -> None:
        self.mask = mask
        self.target_count = target_count
        self.streak_target = streak_target
        self.count = count
        self.consecutive = consecutive

    def scan(self, starter_pre, reactor_pre, starter_post, reactor_post) -> Optional[int]:
        """Fold one collision-free segment; returns the stop offset, if any.

        The returned offset ``t`` is the first step of the segment after
        which the streak reaches ``streak_target`` (the python loop's stop
        point); ``None`` means the segment completes without converging and
        the running count/streak were advanced past it.
        """
        mask = self.mask
        deltas = (
            mask[starter_post] - mask[starter_pre]
            + mask[reactor_post] - mask[reactor_pre]
        )
        counts = self.count + np.cumsum(deltas)
        holds = counts == self.target_count
        length = len(holds)
        indices = np.arange(length, dtype=np.int64)
        last_miss = np.maximum.accumulate(np.where(holds, -1, indices))
        streaks = np.where(
            last_miss < 0, indices + 1 + self.consecutive, indices - last_miss
        )
        hits = np.nonzero(streaks >= self.streak_target)[0]
        if hits.size:
            return int(hits[0])
        if length:
            self.count = int(counts[-1])
            self.consecutive = int(streaks[-1])
        return None


def _run_columnar(
    codes: np.ndarray,
    kernel: ArrayDrawKernel,
    compiled: CompiledProgram,
    max_steps: int,
    chunk_size: int,
    tracker: Optional[_CountStreakTracker] = None,
) -> Tuple[int, bool]:
    """Execute up to ``max_steps`` interactions against ``codes`` in place.

    Returns ``(executed, stopped)`` with the exact semantics of
    :func:`repro.engine.fastpath.run_core`: chunks are clipped to the
    remaining budget, and a streak hit stops the run immediately after the
    completing step (later draws of the chunk are discarded unexecuted).
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    size = compiled.size
    delta_starter = compiled.delta_starter
    delta_reactor = compiled.delta_reactor
    executed = 0
    while executed < max_steps:
        remaining = max_steps - executed
        k = chunk_size if remaining > chunk_size else remaining
        starters, reactors = kernel.draw(executed, k)
        horizon = _per_step_collision_horizon(starters, reactors)
        start = 0
        while start < k:
            conflicts = np.nonzero(horizon[start:] >= start)[0]
            end = start + int(conflicts[0]) if conflicts.size else k
            starter_idx = starters[start:end]
            reactor_idx = reactors[start:end]
            starter_pre = codes[starter_idx]
            reactor_pre = codes[reactor_idx]
            flat = starter_pre * size + reactor_pre
            starter_post = delta_starter[flat]
            reactor_post = delta_reactor[flat]
            if tracker is not None:
                stop_at = tracker.scan(
                    starter_pre, reactor_pre, starter_post, reactor_post
                )
                if stop_at is not None:
                    keep = stop_at + 1
                    codes[starter_idx[:keep]] = starter_post[:keep]
                    codes[reactor_idx[:keep]] = reactor_post[:keep]
                    return executed + start + keep, True
            codes[starter_idx] = starter_post
            codes[reactor_idx] = reactor_post
            start = end
        executed += k
    return executed, False


# ---------------------------------------------------------------------------
# the backend object
# ---------------------------------------------------------------------------


class ArrayBackend(ExecutionBackend):
    """Columnar numpy execution for small-finite-state protocols."""

    name = "array"

    # -- shared setup --------------------------------------------------------

    def _compile_run(self, program, model, scheduler, initial_configuration) -> "Tuple[CompiledProgram, ArrayDrawKernel, np.ndarray]":
        compiled = compile_program(program, model)
        # The kernel carries the scheduler's draw-stream position, so it
        # must live exactly as long as the scheduler: repeated runs on one
        # engine continue the stream (as the python backend's random.Random
        # state does) instead of replaying it from the seed.  Stored on the
        # scheduler instance; Scheduler.reset() drops it, restoring the
        # replay-from-step-0 semantics reset() has on the python backend.
        kernel = getattr(scheduler, "_array_kernel", None)
        if kernel is None:
            kernel = compile_scheduler(scheduler)
            scheduler._array_kernel = kernel
        try:
            codes = np.asarray(
                compiled.interner.encode_all(initial_configuration), dtype=np.int32
            )
        except InterningError as error:
            raise BackendCompileError(
                f"initial configuration cannot be interned: {error}"
            ) from None
        return compiled, kernel, codes

    @staticmethod
    def _freeze(codes: np.ndarray, interner: StateInterner) -> Configuration:
        # Equivalent to ArrayConfiguration(codes, interner).freeze(), but
        # decoding through an object-dtype take is much faster at n >= 10^6.
        lookup = np.empty(len(interner), dtype=object)
        for code, state in enumerate(interner.states):
            lookup[code] = state
        return Configuration(lookup[codes].tolist())

    def view(self, codes: np.ndarray, interner: StateInterner) -> ArrayConfiguration:
        """A live read-only view over a run's code array (for diagnostics)."""
        return ArrayConfiguration(codes, interner)

    # -- entry points --------------------------------------------------------

    def execute(
        self,
        program: Any,
        model: Any,
        scheduler: Any,
        adversary: Optional[Any],
        initial_configuration: Configuration,
        max_steps: int,
        stop_condition: Optional[Callable[[Any], bool]] = None,
        *,
        trace_policy: str = "counts-only",
        ring_size: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> RunResult:
        budget = _check_run_request(adversary, trace_policy, max_steps)
        if stop_condition is not None:
            raise BackendCompileError(
                "arbitrary stop conditions cannot be compiled for the array "
                "backend; use run_until_stable with a state-count predicate "
                "or the python backend"
            )
        compiled, kernel, codes = self._compile_run(
            program, model, scheduler, initial_configuration
        )
        executed, _stopped = _run_columnar(
            codes, kernel, compiled, budget,
            chunk_size if chunk_size is not None else DEFAULT_ARRAY_CHUNK,
        )
        return RunResult(
            policy="counts-only",
            steps=executed,
            omissions=0,
            final_configuration=self._freeze(codes, compiled.interner),
            trace=None,
            last_steps=(),
            stopped=False,
        )

    def run_until_stable(
        self,
        program: Any,
        model: Any,
        scheduler: Any,
        adversary: Optional[Any],
        initial_configuration: Configuration,
        predicate: Any,
        max_steps: int = 100_000,
        stability_window: int = 0,
        *,
        trace_policy: str = "counts-only",
        ring_size: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> ConvergenceResult:
        budget = _check_run_request(adversary, trace_policy, max_steps)
        compiled, kernel, codes = self._compile_run(
            program, model, scheduler, initial_configuration
        )
        mask, target_count = _compile_predicate(
            predicate, compiled.interner, len(codes)
        )
        streak_target = stability_window + 1

        count = int(mask[codes].sum())
        consecutive = 1 if count == target_count else 0
        if consecutive >= streak_target:
            return ConvergenceResult(
                converged=True,
                steps_executed=0,
                steps_to_convergence=0,
                trace=None,
                final=initial_configuration,
                omissions=0,
                last_steps=(),
            )

        tracker = _CountStreakTracker(
            mask, target_count, streak_target, count, consecutive
        )
        executed, stopped = _run_columnar(
            codes, kernel, compiled, budget,
            chunk_size if chunk_size is not None else DEFAULT_ARRAY_CHUNK,
            tracker=tracker,
        )
        # The loop stops at the exact step whose configuration completes the
        # streak, so the first configuration of the stable streak is fixed
        # by arithmetic — the same value the python loop tracks imperatively.
        converged = stopped
        return ConvergenceResult(
            converged=converged,
            steps_executed=executed,
            steps_to_convergence=executed - streak_target + 1 if converged else None,
            trace=None,
            final=self._freeze(codes, compiled.interner),
            omissions=0,
            last_steps=(),
        )
