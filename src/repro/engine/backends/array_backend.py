"""The columnar numpy execution backend ("array engine").

Per-object Python execution tops out well below what n = 10^5..10^7
populations need: even the batched fast path pays an interpreted loop per
interaction.  This backend removes the per-step interpreter entirely for
the compilable subset of experiments:

* **Interning** — the program's finite state space is interned to dense
  codes ``0 .. k-1`` in the protocol's canonical ``state_order()``
  (:class:`~repro.protocols.state.StateInterner`), and the population
  becomes one columnar int array of codes.
* **Compilation** — the transition function is evaluated once per ordered
  state pair through the interaction model, producing two flat
  ``(k*k,)`` lookup tables (starter- and reactor-post codes).  After
  compilation, the protocol and model are never called again.
* **Chunked vectorized draws** — scheduler pairs arrive as whole index
  arrays from the numpy draw kernels (:mod:`repro.scheduling.array_draws`),
  one ``Generator.integers`` call per component per chunk.
* **Collision-free segments** — a chunk is split at the first step that
  reuses an agent already touched earlier in the segment; within a segment
  all agents are distinct, so gather → table lookup → scatter is *exactly*
  sequential execution.  Segment boundaries are found vectorially (one
  stable argsort of the chunk's agent indices); the expected segment length
  is Θ(√n), so the per-segment Python overhead vanishes as populations
  grow.
* **Incremental counts** — convergence predicates compile to a per-state
  membership mask; per-step satisfaction counts are a cumulative sum over
  the segment's mask deltas, and the stability-window streak is scanned
  vectorially.  Counts-only runs materialise no per-step objects at all.
* **Compiled adversary schedules** — the catalog omission adversaries
  (Bounded, NO, NO1, UO) speak the content-free columnar
  :meth:`~repro.adversary.omission.OmissionAdversary.plan_chunk_schedule_columns`
  protocol: per chunk they return gap positions plus kept injections as
  raw index lists, which one vectorized ``np.insert`` merges into the
  scheduler's index arrays.  Omissive transitions come from per-omission-kind table stacks
  tabulated at compile time, so injected interactions ride the same
  gather/scatter as scheduled ones.  The adversary's RNG and budget
  consumption is bit-identical to the python backend's plan walk.
* **Columnar ring traces** — under ``--trace-policy ring`` a rolling
  int64 buffer keeps the last ``K`` steps as code rows (agents, omission
  kind, pre/post codes), recorded per segment with two fancy-indexed
  writes and decoded through the :class:`StateInterner` only at dump
  time — crash forensics at n = 10^6 without per-step objects.

Equivalence contract (pinned by ``tests/test_array_backend.py`` and
``tests/test_array_adversary_equivalence.py``):

* the backend draws scheduler pairs from its own seeded ``PCG64`` streams —
  bitwise parity with the python backend's ``random.Random`` scheduler
  streams is out of scope — but adversary injections replay the *same*
  seeded ``random.Random`` walk as the python backend, so adversary RNG
  and budget end states match bit for bit;
* runs are bitwise self-reproducible (same seed, same result) and
  chunk-size independent (``chunk_size`` is purely a performance knob);
* budget, stop-condition and stability-window semantics are *exactly* the
  python backend's: a run stops after the first step whose configuration
  completes the required streak, and otherwise executes exactly
  ``max_steps`` interactions;
* on deterministic schedulers (round-robin) results — final
  configurations, step counts, omission counts, decoded ring windows —
  agree with the python backend bit for bit; on random schedulers they
  agree distributionally.

Everything non-compilable — unbounded state spaces, scripted/weighted
schedulers, adversaries outside the catalog classes, arbitrary
stop conditions and predicates, the ``full`` trace policy — raises
:class:`~repro.engine.backends.base.BackendCompileError` naming the first
failing ingredient and the flag that avoids it, so callers can fall back
to the python backend.  :func:`probe_compile` runs the same checks
without executing anything, returning the would-be error message — the
``auto`` backend resolution (:func:`repro.protocols.registry.resolve_backend`)
and ``repro list``'s array-compilable column are built on it.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.adversary.omission import (
    BoundedOmissionAdversary,
    NO1Adversary,
    NOAdversary,
    NoOmissionAdversary,
    UOAdversary,
)
from repro.engine.backends.base import BackendCompileError, ExecutionBackend
from repro.engine.convergence import ConvergenceResult
from repro.engine.fastpath import RunResult
from repro.engine.trace import TraceStep
from repro.interaction.omissions import NO_OMISSION, Omission
from repro.obs.recorder import NULL_RECORDER, get_recorder
from repro.protocols.protocol import ProtocolError
from repro.protocols.state import (
    ArrayConfiguration,
    Configuration,
    InterningError,
    State,
    StateInterner,
)
from repro.scheduling.array_draws import ArrayDrawKernel, compile_scheduler
from repro.scheduling.runs import Interaction

#: Scheduler pairs drawn per chunk.  Larger than the python backend's chunk:
#: a chunk only bounds working-set size here, the real batching unit is the
#: collision-free segment (expected length Θ(√n)) inside it.
DEFAULT_ARRAY_CHUNK = 4096

#: Hard cap on interned state spaces: compilation evaluates k^2 transitions
#: and the flat tables hold 2·k^2 int32 entries, so "small finite state
#: space" is enforced rather than assumed.
MAX_INTERNED_STATES = 1024


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------


class CompiledProgram:
    """A program × model pair compiled to flat transition lookup tables.

    ``delta_starter[s * k + r]`` / ``delta_reactor[s * k + r]`` are the
    post-interaction codes of an omission-free ``(s, r)`` interaction.
    """

    __slots__ = ("interner", "size", "delta_starter", "delta_reactor")

    def __init__(self, interner: StateInterner, delta_starter, delta_reactor) -> None:
        self.interner = interner
        self.size = len(interner)
        self.delta_starter = delta_starter
        self.delta_reactor = delta_reactor


def compile_program(program: Any, model: Any) -> CompiledProgram:
    """Intern the program's states and tabulate its transitions under ``model``.

    Raises :class:`BackendCompileError` when the program has no finite
    canonical state order, the state space exceeds
    :data:`MAX_INTERNED_STATES`, or a transition leaves the declared state
    space.
    """
    order = getattr(program, "state_order", None)
    if order is None:
        raise BackendCompileError(
            f"program {type(program).__name__} exposes no state_order(); the "
            "array backend only runs programs with a finite, canonically "
            "ordered state space (all catalog protocols and the trivial "
            "TW simulator qualify); run it with --engine-backend python"
        )
    try:
        states = tuple(order())
    except ProtocolError as error:
        raise BackendCompileError(
            f"program {type(program).__name__} cannot be compiled for the "
            f"array backend: {error} (simulators with unbounded composite "
            "state spaces need --engine-backend python)"
        ) from None
    if len(states) > MAX_INTERNED_STATES:
        raise BackendCompileError(
            f"program {type(program).__name__} has {len(states)} states; the "
            f"array backend tabulates k^2 transitions and caps k at "
            f"{MAX_INTERNED_STATES}; run it with --engine-backend python"
        )
    interner = StateInterner(states)
    size = len(interner)
    delta_starter = np.empty(size * size, dtype=np.int32)
    delta_reactor = np.empty(size * size, dtype=np.int32)
    apply = model.apply
    encode = interner.encode
    for i, starter in enumerate(interner.states):
        base = i * size
        for j, reactor in enumerate(interner.states):
            starter_post, reactor_post = apply(program, starter, reactor)
            try:
                delta_starter[base + j] = encode(starter_post)
                delta_reactor[base + j] = encode(reactor_post)
            except InterningError:
                raise BackendCompileError(
                    f"transition ({starter!r}, {reactor!r}) -> "
                    f"({starter_post!r}, {reactor_post!r}) of program "
                    f"{type(program).__name__} leaves its declared state "
                    "space; the array backend requires a closed transition "
                    "table"
                ) from None
    return CompiledProgram(interner, delta_starter, delta_reactor)


def _compile_predicate(
    predicate: Any, interner: StateInterner, population: int
) -> Tuple[np.ndarray, int]:
    """Compile a convergence predicate to ``(per-state mask, target count)``.

    Only state-count predicates compile (the
    :meth:`~repro.engine.fastpath.IncrementalPredicate.as_state_count`
    protocol): satisfaction is then a running count over the mask, updated
    per segment with a cumulative sum.
    """
    as_state_count = getattr(predicate, "as_state_count", None)
    shape = as_state_count() if callable(as_state_count) else None
    if shape is None:
        raise BackendCompileError(
            f"predicate {type(predicate).__name__} cannot be compiled for "
            "the array backend; express it as a state-count predicate "
            "(repro.engine.fastpath.AgentCountPredicate) or run it with "
            "--engine-backend python"
        )
    satisfies, target = shape
    mask = np.fromiter(
        (1 if satisfies(state) else 0 for state in interner.states),
        dtype=np.int64,
        count=len(interner),
    )
    return mask, (population if target is None else int(target))


#: The adversary classes with an array lowering.  Exact types, not
#: ``isinstance``: a subclass may override the per-step protocol in ways
#: the schedule protocol does not mirror, so unknown subclasses fall back
#: to the python backend instead of silently diverging.
ARRAY_COMPILED_ADVERSARIES: Tuple[type, ...] = (
    NoOmissionAdversary,
    BoundedOmissionAdversary,
    NO1Adversary,
    NOAdversary,
    UOAdversary,
)


class CompiledAdversary:
    """An omission adversary lowered to per-kind transition table stacks.

    ``starter_stack[row]`` / ``reactor_stack[row]`` are flat ``(k*k,)``
    post-code tables: row 0 is the omission-free table (shared with the
    :class:`CompiledProgram`), row ``kind_row[omission]`` the table of that
    omissive kind.  A merged chunk executes with one 2-D gather
    ``stack[kinds, flat]``; pass-through chunks keep the 1-D hot path.
    The live ``adversary`` object supplies the per-chunk
    :class:`~repro.adversary.omission.ColumnSchedule` (its RNG/budget
    state advances exactly as on the python backend).
    """

    __slots__ = ("adversary", "kind_row", "kind_omissions", "starter_stack", "reactor_stack")

    def __init__(self, adversary: Any, kind_row: Dict[Omission, int],
                 kind_omissions: Tuple[Omission, ...],
                 starter_stack: np.ndarray, reactor_stack: np.ndarray) -> None:
        self.adversary = adversary
        self.kind_row = kind_row
        self.kind_omissions = kind_omissions
        self.starter_stack = starter_stack
        self.reactor_stack = reactor_stack


def compile_adversary(
    adversary: Optional[Any], program: Any, model: Any, compiled: CompiledProgram
) -> Optional[CompiledAdversary]:
    """Lower ``adversary`` to per-omission-kind table stacks (``None``: no-op).

    Raises :class:`BackendCompileError` for adversary classes without an
    array lowering and for omissive transitions that leave the declared
    state space.
    """
    if adversary is None or type(adversary) is NoOmissionAdversary:
        return None
    if type(adversary) not in ARRAY_COMPILED_ADVERSARIES:
        raise BackendCompileError(
            f"adversary {type(adversary).__name__} has no array lowering "
            "(the array backend compiles the catalog adversaries: "
            "NoOmission, Bounded, NO, NO1, UO); run it with "
            "--engine-backend python"
        )
    kinds = tuple(adversary._omissive_kinds)
    size = compiled.size
    starter_stack = np.empty((1 + len(kinds), size * size), dtype=np.int32)
    reactor_stack = np.empty((1 + len(kinds), size * size), dtype=np.int32)
    starter_stack[0] = compiled.delta_starter
    reactor_stack[0] = compiled.delta_reactor
    apply = model.apply
    encode = compiled.interner.encode
    states = compiled.interner.states
    for row, omission in enumerate(kinds, start=1):
        for i, starter in enumerate(states):
            base = i * size
            for j, reactor in enumerate(states):
                starter_post, reactor_post = apply(program, starter, reactor, omission)
                try:
                    starter_stack[row, base + j] = encode(starter_post)
                    reactor_stack[row, base + j] = encode(reactor_post)
                except InterningError:
                    raise BackendCompileError(
                        f"omissive transition ({starter!r}, {reactor!r}) "
                        f"under {omission} of program "
                        f"{type(program).__name__} leaves its declared "
                        "state space; the array backend requires closed "
                        "omissive transition tables (run it with "
                        "--engine-backend python)"
                    ) from None
    kind_row = {omission: row for row, omission in enumerate(kinds, start=1)}
    return CompiledAdversary(
        adversary, kind_row, (NO_OMISSION,) + kinds, starter_stack, reactor_stack
    )


#: Default crash-dump window under ``--trace-policy ring`` (the python
#: backend's :func:`~repro.engine.fastpath.make_recorder` default).
DEFAULT_RING_SIZE = 64

#: Columns of the ring buffer's code rows.
_RING_COLUMNS = 7  # starter agent, reactor agent, kind row, s_pre, r_pre, s_post, r_post


class _RingBuffer:
    """Rolling columnar window over the last ``capacity`` executed steps.

    Rows are int64 code septuples (agents, omission-kind row, pre/post
    codes for both participants) written per collision-free segment with
    two fancy-indexed assignments; nothing is decoded until
    :meth:`last_steps` renders the window as the python backend's
    :class:`~repro.engine.trace.TraceStep` tuple (bit-identical on
    deterministic schedulers).
    """

    __slots__ = ("capacity", "buffer", "count")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("ring_size must be at least 1")
        self.capacity = capacity
        self.buffer = np.empty((capacity, _RING_COLUMNS), dtype=np.int64)
        self.count = 0

    def record(
        self,
        starter_idx: np.ndarray,
        reactor_idx: np.ndarray,
        kinds: Optional[np.ndarray],
        starter_pre: np.ndarray,
        reactor_pre: np.ndarray,
        starter_post: np.ndarray,
        reactor_post: np.ndarray,
    ) -> None:
        """Append one executed segment (only its last ``capacity`` steps land)."""
        length = len(starter_idx)
        if length == 0:
            return
        capacity = self.capacity
        offset = length - capacity if length > capacity else 0
        rows = (self.count + np.arange(offset, length, dtype=np.int64)) % capacity
        buffer = self.buffer
        buffer[rows, 0] = starter_idx[offset:]
        buffer[rows, 1] = reactor_idx[offset:]
        buffer[rows, 2] = 0 if kinds is None else kinds[offset:]
        buffer[rows, 3] = starter_pre[offset:]
        buffer[rows, 4] = reactor_pre[offset:]
        buffer[rows, 5] = starter_post[offset:]
        buffer[rows, 6] = reactor_post[offset:]
        self.count += length

    def last_steps(
        self, interner: StateInterner, kind_omissions: Tuple[Omission, ...]
    ) -> Tuple[TraceStep, ...]:
        """Decode the window, oldest first, through the interner."""
        used = self.count if self.count < self.capacity else self.capacity
        if used == 0:
            return ()
        first = self.count - used
        rows = (first + np.arange(used, dtype=np.int64)) % self.capacity
        data = self.buffer[rows]
        states = interner.states
        steps = []
        for offset in range(used):
            starter, reactor, kind, s_pre, r_pre, s_post, r_post = (
                int(value) for value in data[offset]
            )
            steps.append(TraceStep(
                index=first + offset,
                interaction=Interaction(
                    starter, reactor, omission=kind_omissions[kind]),
                starter_pre=states[s_pre],
                starter_post=states[s_post],
                reactor_pre=states[r_pre],
                reactor_post=states[r_post],
            ))
        return tuple(steps)


def _check_run_request(trace_policy: str, max_steps: float) -> int:
    """Validate the backend-independent run ingredients; returns the budget."""
    if trace_policy not in ("counts-only", "ring"):
        raise BackendCompileError(
            f"trace policy {trace_policy!r} is not supported by the array "
            "backend (full per-step records would defeat columnar "
            "execution); use --trace-policy counts-only (or ring for crash "
            "dumps) or --engine-backend python"
        )
    if not math.isfinite(max_steps) or max_steps < 0:
        raise BackendCompileError(
            "the array backend needs a finite, non-negative step budget"
        )
    return int(max_steps)


# ---------------------------------------------------------------------------
# the columnar step loop
# ---------------------------------------------------------------------------


def _per_step_collision_horizon(starters: np.ndarray, reactors: np.ndarray) -> np.ndarray:
    """For each step of a chunk, the latest earlier step sharing an agent.

    ``horizon[t] == p`` means step ``t`` touches an agent last touched at
    step ``p`` of the same chunk (``-1``: none).  A slice ``[u, v)`` is
    collision-free — safe to execute as one vectorized gather/scatter —
    iff ``horizon[t] < u`` for all ``t`` in it.

    Computed with one value sort of ``(agent << shift) | position``
    composite keys over the chunk's interleaved agent indices: sorting
    brings equal agents together ordered by position, and the low bits
    recover each occurrence's predecessor.  A composite ``np.sort`` is
    ~5x faster than the equivalent stable ``np.argsort`` + gathers, and
    this function is the dominant fixed cost of the columnar loop.
    """
    k = len(starters)
    two_k = 2 * k
    shift = two_k.bit_length()
    agents = np.empty(two_k, dtype=np.int64)
    agents[0::2] = starters
    agents[1::2] = reactors
    keys = (agents << shift) | np.arange(two_k, dtype=np.int64)
    keys.sort()
    position = keys & ((1 << shift) - 1)
    same = (keys[1:] >> shift) == (keys[:-1] >> shift)
    previous = np.full(two_k, -1, dtype=np.int64)
    previous[position[1:][same]] = position[:-1][same]
    previous //= 2  # interleaved position -> step index (-1 stays -1)
    return np.maximum(previous[0::2], previous[1::2])


class _CountStreakTracker:
    """Running predicate count + consecutive-hold streak across segments.

    Mirrors the python backend's convergence loop state: ``count`` is the
    number of agents currently satisfying the predicate, ``consecutive``
    the number of consecutive configurations (including the initial one)
    for which ``count == target_count`` has held.
    """

    __slots__ = ("mask", "target_count", "streak_target", "count", "consecutive")

    def __init__(self, mask, target_count: int, streak_target: int,
                 count: int, consecutive: int) -> None:
        self.mask = mask
        self.target_count = target_count
        self.streak_target = streak_target
        self.count = count
        self.consecutive = consecutive

    def scan(self, starter_pre, reactor_pre, starter_post, reactor_post) -> Optional[int]:
        """Fold one collision-free segment; returns the stop offset, if any.

        The returned offset ``t`` is the first step of the segment after
        which the streak reaches ``streak_target`` (the python loop's stop
        point); ``None`` means the segment completes without converging and
        the running count/streak were advanced past it.
        """
        mask = self.mask
        deltas = (
            mask[starter_post] - mask[starter_pre]
            + mask[reactor_post] - mask[reactor_pre]
        )
        counts = self.count + np.cumsum(deltas)
        holds = counts == self.target_count
        length = len(holds)
        indices = np.arange(length, dtype=np.int64)
        last_miss = np.maximum.accumulate(np.where(holds, -1, indices))
        streaks = np.where(
            last_miss < 0, indices + 1 + self.consecutive, indices - last_miss
        )
        hits = np.nonzero(streaks >= self.streak_target)[0]
        if hits.size:
            return int(hits[0])
        if length:
            self.count = int(counts[-1])
            self.consecutive = int(streaks[-1])
        return None


def _merge_injections(
    schedule: Any,
    starters: np.ndarray,
    reactors: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Merge a :class:`ColumnSchedule` into a chunk's index arrays.

    ``np.insert`` with repeated positions inserts values in order at each
    position, which is exactly the schedule's contract (injections execute
    before their scheduled gap, in production order).  The schedule's kind
    indices follow the adversary's omissive-kind tuple — the same order
    :func:`compile_adversary` stacked the tables in — so table-stack row is
    kind index + 1.  Returns the merged ``(starters, reactors, kinds)``
    with ``kinds[t]`` the table-stack row of step ``t`` (0 =
    scheduled/omission-free); ``kinds`` is ``None`` for pass-through
    chunks so the caller keeps the 1-D gather hot path.
    """
    consumed = schedule.consumed
    if consumed < len(starters):
        starters = starters[:consumed]
        reactors = reactors[:consumed]
    if not schedule.starters:
        return starters, reactors, None
    positions = np.asarray(schedule.positions, dtype=np.int64)
    inj_starters = np.asarray(schedule.starters, dtype=np.int64)
    inj_reactors = np.asarray(schedule.reactors, dtype=np.int64)
    inj_kinds = np.asarray(schedule.kinds, dtype=np.int64) + 1
    merged_starters = np.insert(np.asarray(starters, dtype=np.int64),
                                positions, inj_starters)
    merged_reactors = np.insert(np.asarray(reactors, dtype=np.int64),
                                positions, inj_reactors)
    kinds = np.insert(np.zeros(consumed, dtype=np.int64), positions, inj_kinds)
    return merged_starters, merged_reactors, kinds


def _run_columnar(
    codes: np.ndarray,
    kernel: ArrayDrawKernel,
    compiled: CompiledProgram,
    max_steps: int,
    chunk_size: int,
    tracker: Optional[_CountStreakTracker] = None,
    adversary: Optional[CompiledAdversary] = None,
    ring: Optional[_RingBuffer] = None,
) -> Tuple[int, int, bool]:
    """Execute up to ``max_steps`` interactions against ``codes`` in place.

    Returns ``(executed, omissions, stopped)`` with the exact semantics of
    :func:`repro.engine.fastpath.run_core`: chunks are clipped to the
    remaining budget, adversary injections (planned per chunk through the
    content-free schedule protocol) execute before their scheduled
    interaction and count towards the budget, and a streak hit stops the
    run immediately after the completing step (later draws of the chunk
    are discarded unexecuted).  The scheduler stream advances by *drawn*
    interactions — one chunk of ``k`` draws per iteration — matching the
    python loop's ``scheduler_step`` accounting under injections.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    size = compiled.size
    delta_starter = compiled.delta_starter
    delta_reactor = compiled.delta_reactor
    n = len(codes)
    executed = 0
    scheduler_step = 0
    omissions = 0
    # Segment telemetry is folded locally (two int adds per segment, which
    # already costs several numpy kernels) and recorded once per run, so
    # the NullRecorder path pays one identity check per run here.
    obs = get_recorder()
    segments = 0
    segment_steps = 0
    while executed < max_steps:
        remaining = max_steps - executed
        k = chunk_size if remaining > chunk_size else remaining
        starters, reactors = kernel.draw(scheduler_step, k)
        scheduler_step += k
        kinds = None
        injected = 0
        if adversary is not None:
            schedule = adversary.adversary.plan_chunk_schedule_columns(
                scheduler_step - k, k, n, remaining)
            injected = len(schedule.starters)
            starters, reactors, kinds = _merge_injections(
                schedule, starters, reactors)
        total = len(starters)
        horizon = _per_step_collision_horizon(starters, reactors)
        start = 0
        while start < total:
            conflicts = np.nonzero(horizon[start:] >= start)[0]
            end = start + int(conflicts[0]) if conflicts.size else total
            segments += 1
            segment_steps += end - start
            starter_idx = starters[start:end]
            reactor_idx = reactors[start:end]
            seg_kinds = kinds[start:end] if kinds is not None else None
            starter_pre = codes[starter_idx]
            reactor_pre = codes[reactor_idx]
            flat = starter_pre * size + reactor_pre
            if seg_kinds is None:
                starter_post = delta_starter[flat]
                reactor_post = delta_reactor[flat]
            else:
                starter_post = adversary.starter_stack[seg_kinds, flat]
                reactor_post = adversary.reactor_stack[seg_kinds, flat]
            if tracker is not None:
                stop_at = tracker.scan(
                    starter_pre, reactor_pre, starter_post, reactor_post
                )
                if stop_at is not None:
                    keep = stop_at + 1
                    codes[starter_idx[:keep]] = starter_post[:keep]
                    codes[reactor_idx[:keep]] = reactor_post[:keep]
                    if ring is not None:
                        ring.record(
                            starter_idx[:keep], reactor_idx[:keep],
                            None if seg_kinds is None else seg_kinds[:keep],
                            starter_pre[:keep], reactor_pre[:keep],
                            starter_post[:keep], reactor_post[:keep])
                    if kinds is not None:
                        omissions += int((kinds[:start + keep] != 0).sum())
                    if obs is not NULL_RECORDER:
                        _record_segments(obs, segments, segment_steps)
                    return executed + start + keep, omissions, True
            codes[starter_idx] = starter_post
            codes[reactor_idx] = reactor_post
            if ring is not None:
                ring.record(starter_idx, reactor_idx, seg_kinds,
                            starter_pre, reactor_pre,
                            starter_post, reactor_post)
            start = end
        omissions += injected
        executed += total
    if obs is not NULL_RECORDER:
        _record_segments(obs, segments, segment_steps)
    return executed, omissions, False


def _record_segments(obs: Any, segments: int, segment_steps: int) -> None:
    """Fold one columnar run's collision-free-segment telemetry."""
    obs.counter("engine.array.segments", segments)
    if segments:
        obs.observe("engine.array.segment_size", segment_steps / segments)


# ---------------------------------------------------------------------------
# the backend object
# ---------------------------------------------------------------------------


#: Per-process memo of compiled programs and encoded initial configurations,
#: keyed by object identity with ``is``-verification on lookup (entries hold
#: strong references to their key objects, so a cached id can never be
#: recycled while its entry is live).  Program, model and initial
#: configuration are shared across the runs of one built experiment (see
#: ``repro.protocols.registry.build_cached``), so a worker executing many
#: runs of the same spec tabulates transitions and interns the O(n) initial
#: configuration once instead of per run — on short runs at large n those
#: were the dominant per-run cost.  Lifetime mirrors ``_BUILD_CACHE``: one
#: entry per built experiment per process.
_COMPILE_CACHE: "Dict[int, Tuple[Any, Any, CompiledProgram]]" = {}
_INITIAL_CODES_CACHE: "Dict[int, Tuple[Any, CompiledProgram, np.ndarray]]" = {}


class ArrayBackend(ExecutionBackend):
    """Columnar numpy execution for small-finite-state protocols."""

    name = "array"

    # -- shared setup --------------------------------------------------------

    def _compile_run(self, program, model, scheduler, initial_configuration) -> "Tuple[CompiledProgram, ArrayDrawKernel, np.ndarray]":
        obs = get_recorder()
        cached = _COMPILE_CACHE.get(id(program))
        if cached is not None and cached[0] is program and cached[1] is model:
            compiled = cached[2]
            if obs is not NULL_RECORDER:
                obs.counter("engine.array.compile_cache.hit")
        else:
            compiled = compile_program(program, model)
            _COMPILE_CACHE[id(program)] = (program, model, compiled)
            if obs is not NULL_RECORDER:
                obs.counter("engine.array.compile_cache.miss")
        # The kernel carries the scheduler's draw-stream position, so it
        # must live exactly as long as the scheduler: repeated runs on one
        # engine continue the stream (as the python backend's random.Random
        # state does) instead of replaying it from the seed.  Stored on the
        # scheduler instance; Scheduler.reset() drops it, restoring the
        # replay-from-step-0 semantics reset() has on the python backend.
        kernel = getattr(scheduler, "_array_kernel", None)
        if kernel is None:
            kernel = compile_scheduler(scheduler)
            scheduler._array_kernel = kernel
        entry = _INITIAL_CODES_CACHE.get(id(initial_configuration))
        if entry is not None and entry[0] is initial_configuration \
                and entry[1] is compiled:
            pristine = entry[2]
        else:
            try:
                pristine = np.asarray(
                    compiled.interner.encode_all(initial_configuration),
                    dtype=np.int32,
                )
            except InterningError as error:
                raise BackendCompileError(
                    f"initial configuration cannot be interned for the array "
                    f"backend: {error}; run it with --engine-backend python"
                ) from None
            _INITIAL_CODES_CACHE[id(initial_configuration)] = (
                initial_configuration, compiled, pristine)
        # Runs mutate their code array in place; every run gets its own copy
        # of the pristine encoding.
        return compiled, kernel, pristine.copy()

    @staticmethod
    def _freeze(codes: np.ndarray, interner: StateInterner) -> Configuration:
        # Equivalent to ArrayConfiguration(codes, interner).freeze(), but
        # decoding through an object-dtype take is much faster at n >= 10^6.
        lookup = np.empty(len(interner), dtype=object)
        for code, state in enumerate(interner.states):
            lookup[code] = state
        return Configuration(lookup[codes].tolist())

    @staticmethod
    def _count_export(codes: np.ndarray,
                      interner: StateInterner) -> Tuple[Tuple[State, int], ...]:
        # The columnar count export consumed by the shm result transport
        # (repro.engine.transport): one bincount over the code array, no
        # detour through the frozen python-object configuration.  Zero
        # counts are dropped so the export is an anonymous multiset view,
        # identical to Configuration.histogram() up to ordering.
        counts = np.bincount(codes, minlength=len(interner))
        return tuple(
            (state, int(counts[code]))
            for code, state in enumerate(interner.states)
            if counts[code])

    def view(self, codes: np.ndarray, interner: StateInterner) -> ArrayConfiguration:
        """A live read-only view over a run's code array (for diagnostics)."""
        return ArrayConfiguration(codes, interner)

    # -- entry points --------------------------------------------------------

    def execute(
        self,
        program: Any,
        model: Any,
        scheduler: Any,
        adversary: Optional[Any],
        initial_configuration: Configuration,
        max_steps: int,
        stop_condition: Optional[Callable[[Any], bool]] = None,
        *,
        trace_policy: str = "counts-only",
        ring_size: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> RunResult:
        budget = _check_run_request(trace_policy, max_steps)
        if stop_condition is not None:
            raise BackendCompileError(
                "arbitrary stop conditions cannot be compiled for the array "
                "backend; use run_until_stable with a state-count predicate "
                "or --engine-backend python"
            )
        compiled, kernel, codes = self._compile_run(
            program, model, scheduler, initial_configuration
        )
        compiled_adversary = compile_adversary(adversary, program, model, compiled)
        ring = None
        if trace_policy == "ring":
            ring = _RingBuffer(ring_size if ring_size is not None else DEFAULT_RING_SIZE)
        executed, omissions, _stopped = _run_columnar(
            codes, kernel, compiled, budget,
            chunk_size if chunk_size is not None else DEFAULT_ARRAY_CHUNK,
            adversary=compiled_adversary,
            ring=ring,
        )
        return RunResult(
            policy=trace_policy,
            steps=executed,
            omissions=omissions,
            final_configuration=self._freeze(codes, compiled.interner),
            trace=None,
            last_steps=self._dump_ring(ring, compiled, compiled_adversary),
            stopped=False,
        )

    @staticmethod
    def _dump_ring(
        ring: Optional[_RingBuffer],
        compiled: CompiledProgram,
        compiled_adversary: Optional[CompiledAdversary],
    ) -> Tuple[TraceStep, ...]:
        if ring is None:
            return ()
        kind_omissions = (
            (NO_OMISSION,) if compiled_adversary is None
            else compiled_adversary.kind_omissions
        )
        return ring.last_steps(compiled.interner, kind_omissions)

    def run_until_stable(
        self,
        program: Any,
        model: Any,
        scheduler: Any,
        adversary: Optional[Any],
        initial_configuration: Configuration,
        predicate: Any,
        max_steps: int = 100_000,
        stability_window: int = 0,
        *,
        trace_policy: str = "counts-only",
        ring_size: Optional[int] = None,
        chunk_size: Optional[int] = None,
        materialize_final: bool = True,
    ) -> ConvergenceResult:
        budget = _check_run_request(trace_policy, max_steps)
        compiled, kernel, codes = self._compile_run(
            program, model, scheduler, initial_configuration
        )
        compiled_adversary = compile_adversary(adversary, program, model, compiled)
        mask, target_count = _compile_predicate(
            predicate, compiled.interner, len(codes)
        )
        streak_target = stability_window + 1

        count = int(mask[codes].sum())
        consecutive = 1 if count == target_count else 0
        if consecutive >= streak_target:
            return ConvergenceResult(
                converged=True,
                steps_executed=0,
                steps_to_convergence=0,
                trace=None,
                final=initial_configuration,
                omissions=0,
                last_steps=(),
                final_counts=self._count_export(codes, compiled.interner),
            )

        ring = None
        if trace_policy == "ring":
            ring = _RingBuffer(ring_size if ring_size is not None else DEFAULT_RING_SIZE)
        tracker = _CountStreakTracker(
            mask, target_count, streak_target, count, consecutive
        )
        executed, omissions, stopped = _run_columnar(
            codes, kernel, compiled, budget,
            chunk_size if chunk_size is not None else DEFAULT_ARRAY_CHUNK,
            tracker=tracker,
            adversary=compiled_adversary,
            ring=ring,
        )
        # The loop stops at the exact step whose configuration completes the
        # streak, so the first configuration of the stable streak is fixed
        # by arithmetic — the same value the python loop tracks imperatively.
        converged = stopped
        # ``materialize_final=False`` (the shared-memory transport's no-detour
        # export): the anonymous ``final_counts`` below carry everything the
        # caller reads, so the O(n) decode of codes into a python
        # Configuration — the dominant per-run cost on short runs — is skipped.
        return ConvergenceResult(
            converged=converged,
            steps_executed=executed,
            steps_to_convergence=executed - streak_target + 1 if converged else None,
            trace=None,
            final=self._freeze(codes, compiled.interner) if materialize_final else None,
            omissions=omissions,
            last_steps=self._dump_ring(ring, compiled, compiled_adversary),
            final_counts=self._count_export(codes, compiled.interner),
        )


# ---------------------------------------------------------------------------
# compile probing (auto backend selection, `repro list` coverage column)
# ---------------------------------------------------------------------------


def probe_compile(
    program: Any,
    model: Any,
    *,
    scheduler: Optional[Any] = None,
    adversary: Optional[Any] = None,
    predicate: Any = None,
    population: int = 2,
    trace_policy: str = "counts-only",
) -> Optional[str]:
    """Would this experiment compile for the array backend?

    Runs the same compilation passes as a real run — program tables,
    scheduler draw kernel, adversary lowering, predicate mask, trace
    policy — without executing anything, and returns ``None`` (compiles)
    or the first :class:`BackendCompileError` message (the exact error a
    run would raise, naming the failing ingredient and the fixing flag).
    Ingredients passed as ``None`` are skipped, so callers can probe a
    single registry entry in isolation.
    """
    try:
        compiled = compile_program(program, model)
        if scheduler is not None:
            compile_scheduler(scheduler)
        if adversary is not None:
            compile_adversary(adversary, program, model, compiled)
        if predicate is not None:
            _compile_predicate(predicate, compiled.interner, population)
        _check_run_request(trace_policy, 0)
    except BackendCompileError as error:
        return str(error)
    return None
