"""The execution-backend abstraction.

A *backend* is a complete implementation of the engine's run semantics —
the budget, stop-condition and trace-policy contract documented in
:mod:`repro.engine.fastpath` — over its own data representation:

``python`` (:mod:`repro.engine.backends.python_backend`)
    The default: the interpreted fast path over a
    :class:`~repro.protocols.state.MutableConfiguration` buffer.  Supports
    every program, scheduler, adversary, predicate and trace policy, and
    needs no third-party packages.

``array`` (:mod:`repro.engine.backends.array_backend`)
    Opt-in columnar execution over numpy arrays of interned state codes for
    protocols with small finite state spaces.  Much faster for huge
    populations — including adversary runs (the catalog adversaries compile
    to injection schedules) and ``ring`` crash dumps (a columnar rolling
    buffer) — but only for the *compilable* subset of experiments; a
    request outside that subset raises :class:`BackendCompileError` naming
    the first offending ingredient and the flag that avoids it.  The same
    compile checks back ``probe_compile``, which
    :func:`repro.protocols.registry.resolve_backend` uses to resolve the
    ``"auto"`` pseudo-backend to the fastest backend that compiles.

Both backends expose the same two entry points, mirroring
:meth:`~repro.engine.engine.SimulationEngine.execute` and
:func:`~repro.engine.convergence.run_until_stable` but taking the run's
ingredients explicitly (the dispatchers pass them from the engine), so a
backend never needs to import the engine layer above it.

This module is deliberately import-light (no engine, scheduling or numpy
imports): lower layers such as :mod:`repro.scheduling.array_draws` raise
its error types without creating import cycles.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class BackendError(Exception):
    """Base class for execution-backend errors."""


class BackendUnavailableError(BackendError):
    """Raised when a backend's third-party dependency is not installed."""


class BackendCompileError(BackendError):
    """Raised when an experiment ingredient cannot be compiled for a backend.

    The message names the ingredient (program, scheduler, adversary,
    predicate, trace policy) and, where one exists, the supported
    alternative — callers surface it verbatim, so it must be actionable.
    """


class ExecutionBackend:
    """Interface every execution backend implements.

    Implementations are stateless (all run state is per-call), so one
    instance per backend is shared process-wide via
    :func:`repro.engine.backends.get_backend`.
    """

    #: Backend name as used by ``SimulationEngine(backend=...)``,
    #: ``ExperimentSpec.backend`` and ``repro run --engine-backend``.
    name: str = "backend"

    def execute(
        self,
        program: Any,
        model: Any,
        scheduler: Any,
        adversary: Optional[Any],
        initial_configuration: Any,
        max_steps: int,
        stop_condition: Optional[Callable[[Any], bool]] = None,
        *,
        trace_policy: str = "full",
        ring_size: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> Any:
        """Run up to ``max_steps`` interactions; returns a ``RunResult``."""
        raise NotImplementedError

    def run_until_stable(
        self,
        program: Any,
        model: Any,
        scheduler: Any,
        adversary: Optional[Any],
        initial_configuration: Any,
        predicate: Any,
        max_steps: int = 100_000,
        stability_window: int = 0,
        *,
        trace_policy: str = "full",
        ring_size: Optional[int] = None,
        chunk_size: Optional[int] = None,
        materialize_final: bool = True,
    ) -> Any:
        """Run until ``predicate`` stabilises; returns a ``ConvergenceResult``.

        ``materialize_final=False`` is an *advisory* hint that the caller
        will not read ``result.final`` (e.g. the shared-memory result
        transport, which ships anonymous state counts): backends whose
        results carry ``final_counts`` may then skip materialising the
        final configuration as python objects and return ``final=None``.
        Backends without a counts export ignore the hint.
        """
        raise NotImplementedError
