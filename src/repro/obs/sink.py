"""The JSONL event sink: one self-describing telemetry file per run.

A sink file is a **sidecar**: it lives wherever ``--metrics PATH``
points, strictly outside every campaign store, and nothing in the
hashed/fold layers ever reads it back (RPL007).  Its format:

* line 1 is a meta record ``{"kind": "meta", "schema": 1}`` naming the
  record schema version (:data:`~repro.obs.recorder.SCHEMA_VERSION`);
* every further line is one JSON object with sorted keys and a ``kind``
  of ``event`` (streamed as they happen, with an ``event`` name field),
  or ``counter``/``gauge``/``timer`` (the metric summary records
  appended by :meth:`~repro.obs.recorder.MetricsRecorder.close`).

Writes take a lock and flush per record, so a crashed run still leaves
every completed line readable and campaign cell workers can stream
events concurrently.  :func:`read_sink` is the one reader, shared by
``repro campaign metrics`` and the tests.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List

from repro.obs.recorder import SCHEMA_VERSION


class SinkError(ValueError):
    """A sink file is missing, malformed, or from an unknown schema."""


class JsonlSink:
    """Append-only JSONL writer for telemetry records."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._handle = open(path, "w", encoding="utf-8")
        self._closed = False
        self.write({"kind": "meta", "schema": SCHEMA_VERSION})

    def write(self, record: Dict[str, object]) -> None:
        """Append one record as a sorted-keys JSON line (flushed)."""
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._handle.close()


def read_sink(path: str) -> List[Dict[str, object]]:
    """Parse a sink file, validating the meta line; returns every record.

    The meta record is returned too (callers can inspect the schema);
    unparseable lines and unsupported schemas raise :class:`SinkError`
    rather than silently skewing a summary.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        raise SinkError(f"cannot read metrics sink {path!r}: {error}") from None
    records: List[Dict[str, object]] = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            raise SinkError(
                f"{path}:{number}: not a JSON record") from None
        if not isinstance(record, dict) or "kind" not in record:
            raise SinkError(
                f"{path}:{number}: sink records are JSON objects with a "
                "'kind' field")
        records.append(record)
    if not records or records[0].get("kind") != "meta":
        raise SinkError(
            f"{path}: not a metrics sink (missing the leading meta record)")
    schema = records[0].get("schema")
    if schema != SCHEMA_VERSION:
        raise SinkError(
            f"{path}: sink schema {schema!r} is not supported "
            f"(this build reads schema {SCHEMA_VERSION})")
    return records
