"""Live campaign progress: a recorder that renders events to stderr.

``repro campaign run --progress`` installs a :class:`ProgressReporter`
(usually alongside a :class:`~repro.obs.recorder.MetricsRecorder` via
:class:`~repro.obs.recorder.MultiRecorder`).  It consumes exactly three
event names — ``campaign.start`` (carries the cell total),
``campaign.cell`` (one per computed cell, carrying status and engine
backend) and ``campaign.end`` — and redraws one ``\\r``-terminated
status line: cells done/total, cells/s, ETA, and the tally of engine
backends seen so far.

The line goes to **stderr** so it never contaminates stdout report
bytes (the determinism pin diffs stdout), and redraws are throttled so
sub-millisecond cells cannot turn the terminal into a hot loop.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, Optional, TextIO

from repro.obs.recorder import Recorder

#: Minimum seconds between redraws (the final line always renders).
REDRAW_INTERVAL = 0.1


class ProgressReporter(Recorder):
    """Render campaign events as a live single-line progress display."""

    def __init__(self, stream: Optional[TextIO] = None,
                 min_interval: float = REDRAW_INTERVAL) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval = min_interval
        self._lock = threading.Lock()
        self._total: Optional[int] = None
        self._done = 0
        self._backends: Dict[str, int] = {}
        self._started = time.perf_counter()
        self._last_draw = 0.0
        self._dirty = False
        self._closed = False

    def event(self, name: str, /, **fields: object) -> None:
        with self._lock:
            if self._closed:
                return
            if name == "campaign.start":
                total = fields.get("total")
                if isinstance(total, int):
                    self._total = total
                self._started = time.perf_counter()
                self._done = 0
                self._backends = {}
                self._draw(force=True)
            elif name == "campaign.cell":
                self._done += 1
                backend = fields.get("backend")
                if isinstance(backend, str):
                    self._backends[backend] = self._backends.get(backend, 0) + 1
                self._draw()
            elif name == "campaign.end":
                self._draw(final=True)

    def _line(self) -> str:
        elapsed = time.perf_counter() - self._started
        rate = self._done / elapsed if elapsed > 0 else 0.0
        total = "?" if self._total is None else str(self._total)
        parts = [f"campaign: {self._done}/{total} cells",
                 f"{rate:.1f} cells/s"]
        if self._total is not None and rate > 0 and self._done < self._total:
            eta = (self._total - self._done) / rate
            parts.append(f"ETA {eta:.0f}s")
        line = ", ".join(parts)
        if self._backends:
            tally = " ".join(f"{backend}:{count}"
                             for backend, count in sorted(self._backends.items()))
            line += f" [{tally}]"
        return line

    def _draw(self, force: bool = False, final: bool = False) -> None:
        now = time.perf_counter()
        if not force and not final \
                and now - self._last_draw < self._min_interval:
            self._dirty = True
            return
        self._last_draw = now
        self._dirty = False
        end = "\n" if final else ""
        try:
            self._stream.write("\r" + self._line() + end)
            self._stream.flush()
        except (OSError, ValueError):
            self._closed = True  # a gone stream ends the display, not the run
        if final:
            self._closed = True

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._draw(final=True)
