"""Write-only observability: metrics, timers, event sinks, live progress.

The subsystem has one direction — instrumented layers (engine backends,
the fan-out, the campaign runner/executor/queue) *write* to the
installed :class:`Recorder`; nothing in the hashed/fold layers (campaign
planner/report/store, analysis) may import it or consume its values
(lint rule RPL007).  The default :data:`NULL_RECORDER` makes every
instrument a no-op, so hot paths pay one identity check per run.

See ``docs/observability.md`` for the recorder protocol, the sink
format, the CLI flags and the determinism boundary.
"""

from repro.obs.progress import ProgressReporter
from repro.obs.recorder import (
    NULL_RECORDER,
    SCHEMA_VERSION,
    MetricsRecorder,
    MultiRecorder,
    NullRecorder,
    Recorder,
    get_recorder,
    recording,
    set_recorder,
)
from repro.obs.sink import JsonlSink, SinkError, read_sink
from repro.obs.summary import summarize_records

__all__ = [
    "NULL_RECORDER",
    "SCHEMA_VERSION",
    "JsonlSink",
    "MetricsRecorder",
    "MultiRecorder",
    "NullRecorder",
    "ProgressReporter",
    "Recorder",
    "SinkError",
    "get_recorder",
    "read_sink",
    "recording",
    "set_recorder",
    "summarize_records",
]
