"""Metrics-summary fold: render a sink file as timing/throughput tables.

``repro campaign metrics PATH`` ends here: the sink's records fold into
plain-text tables — counters, gauges, timer distributions (count /
total / mean / min / max) and an event tally — through the same
:func:`~repro.analysis.reporting.format_table` renderer every other
report uses.  The import direction is the sanctioned one (obs may read
the analysis renderers; the analysis layer may never import obs —
RPL007), and the fold is presentation only: it never feeds anything
back into stores or reports.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.reporting import format_table


def _format_seconds(value: float) -> str:
    return f"{value:.4f}"


def summarize_records(records: List[Dict[str, object]]) -> str:
    """Fold parsed sink records (:func:`~repro.obs.sink.read_sink`) to text."""
    counters = [record for record in records if record.get("kind") == "counter"]
    gauges = [record for record in records if record.get("kind") == "gauge"]
    timers = [record for record in records if record.get("kind") == "timer"]
    events = [record for record in records if record.get("kind") == "event"]

    sections: List[str] = []
    if counters:
        sections.append("counters\n" + format_table(
            ["counter", "value"],
            [[record["name"], record["value"]]
             for record in sorted(counters, key=lambda r: str(r.get("name")))]))
    if gauges:
        sections.append("gauges\n" + format_table(
            ["gauge", "value"],
            [[record["name"], record["value"]]
             for record in sorted(gauges, key=lambda r: str(r.get("name")))]))
    if timers:
        rows = []
        for record in sorted(timers, key=lambda r: str(r.get("name"))):
            count = int(record["count"])  # type: ignore[call-overload]
            total = float(record["total"])  # type: ignore[arg-type]
            mean = total / count if count else 0.0
            rows.append([
                record["name"], count, _format_seconds(total),
                _format_seconds(mean),
                _format_seconds(float(record["min"])),  # type: ignore[arg-type]
                _format_seconds(float(record["max"])),  # type: ignore[arg-type]
            ])
        sections.append("timers (seconds)\n" + format_table(
            ["timer", "count", "total", "mean", "min", "max"], rows))
    if events:
        tally: Dict[str, int] = {}
        for record in events:
            name = str(record.get("event"))
            tally[name] = tally.get(name, 0) + 1
        sections.append("events\n" + format_table(
            ["event", "count"],
            [[name, tally[name]] for name in sorted(tally)]))
    if not sections:
        return "metrics sink holds no records beyond the meta line\n"
    return "\n\n".join(sections) + "\n"
