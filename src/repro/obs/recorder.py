"""The ``Recorder`` protocol: counters, gauges, timers and structured events.

Observability in this repo is **write-only telemetry**: hot paths hand
measurements to whatever recorder is installed, and nothing ever flows
back — no store record, cell id, or report byte may depend on a recorder
(lint rule RPL007 enforces the direction, ``docs/observability.md``
documents the boundary).

The default recorder is :data:`NULL_RECORDER`, a stateless no-op.  Hot
paths guard their instrumentation with one identity check::

    obs = get_recorder()
    if obs is not NULL_RECORDER:
        ...measure and record...

so with observability off the entire layer costs a module-global read
and a pointer comparison per *run* (never per step) — the "zero
overhead" the subsystem is named for, CI-guarded at ≤3% by
``benchmarks/bench_engine_throughput.py --obs``.

Recorders compose: :class:`MetricsRecorder` aggregates metrics in memory
and streams events to a :class:`~repro.obs.sink.JsonlSink`;
:class:`~repro.obs.progress.ProgressReporter` turns campaign events into
a live stderr line; :class:`MultiRecorder` fans one instrumentation
stream out to several of them.  All recorder methods are thread-safe
where the implementation has state — campaign cell workers and fan-out
drain threads record concurrently.

Process boundaries are not crossed: a process-pool worker starts with
the default :data:`NULL_RECORDER`, so engine-level metrics of a process
fan-out are recorded parent-side only (per-batch latency and transport
lane usage), never smuggled through pickled results.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Version of the sink record schema (the ``meta`` line's ``schema`` field
#: and the shape of ``event``/``counter``/``gauge``/``timer`` records).
SCHEMA_VERSION = 1


class Recorder:
    """Base recorder: the full instrumentation surface, as no-ops.

    Subclasses override what they consume; unhandled instruments fall
    through to these no-ops, so a recorder reacting only to events (the
    progress reporter) needs no counter/gauge plumbing.
    """

    def counter(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the monotonically increasing counter ``name``."""

    def gauge(self, name: str, value: float) -> None:
        """Set the point-in-time gauge ``name`` to ``value``."""

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the distribution/timer ``name``."""

    def event(self, name: str, /, **fields: object) -> None:
        """Record a structured event (``fields`` must be JSON-serialisable).

        The event name is positional-only so field keys are unrestricted
        (``campaign.start`` carries a ``name=...`` field, for instance).
        """

    def timer(self, name: str) -> "_Timer":
        """Context manager observing its wall-clock duration under ``name``."""
        return _Timer(self, name)

    def close(self) -> None:
        """Flush and release whatever the recorder holds (idempotent)."""


class _Timer:
    """``with recorder.timer(name):`` — observes the block's duration."""

    __slots__ = ("_recorder", "_name", "_start")

    def __init__(self, recorder: Recorder, name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._recorder.observe(self._name, time.perf_counter() - self._start)


class _NullTimer:
    """The shared timer of :class:`NullRecorder`: no clock reads, no state."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_TIMER = _NullTimer()


class NullRecorder(Recorder):
    """The default recorder: stateless, allocation-free no-ops throughout."""

    def timer(self, name: str) -> "_NullTimer":  # type: ignore[override]
        return _NULL_TIMER


#: The process-wide default.  Hot paths compare against this identity to
#: skip measurement work entirely when observability is off.
NULL_RECORDER = NullRecorder()


class MetricsRecorder(Recorder):
    """In-memory metric aggregation plus event streaming to a sink.

    Counters accumulate, gauges keep their last value, ``observe``
    samples fold into ``(count, total, min, max)`` summaries.  Events
    stream to ``sink`` (a :class:`~repro.obs.sink.JsonlSink`) as they
    happen; :meth:`close` appends one summary record per metric and
    closes the sink.  All methods take one lock, so recording from
    campaign cell workers and fan-out threads is safe.
    """

    def __init__(self, sink: Optional[object] = None) -> None:
        self._sink = sink
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._observations: Dict[str, List[float]] = {}
        self._closed = False

    def counter(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            samples = self._observations.get(name)
            if samples is None:
                # (count, total, min, max) folded incrementally.
                self._observations[name] = [1.0, value, value, value]
            else:
                samples[0] += 1.0
                samples[1] += value
                samples[2] = min(samples[2], value)
                samples[3] = max(samples[3], value)

    def event(self, name: str, /, **fields: object) -> None:
        if self._sink is None:
            return
        record: Dict[str, object] = {"kind": "event", "event": name}
        record.update(fields)
        with self._lock:
            if not self._closed:
                self._sink.write(record)  # type: ignore[attr-defined]

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time copy of the aggregated metrics (tests, summaries)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: {"count": int(samples[0]), "total": samples[1],
                           "min": samples[2], "max": samples[3]}
                    for name, samples in self._observations.items()
                },
            }

    def close(self) -> None:
        """Flush metric summary records to the sink and close it."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sink = self._sink
            if sink is None:
                return
            for name in sorted(self._counters):
                sink.write({"kind": "counter", "name": name,  # type: ignore[attr-defined]
                            "value": self._counters[name]})
            for name in sorted(self._gauges):
                sink.write({"kind": "gauge", "name": name,  # type: ignore[attr-defined]
                            "value": self._gauges[name]})
            for name in sorted(self._observations):
                count, total, low, high = self._observations[name]
                sink.write({"kind": "timer", "name": name,  # type: ignore[attr-defined]
                            "count": int(count), "total": total,
                            "min": low, "max": high})
            sink.close()  # type: ignore[attr-defined]


class MultiRecorder(Recorder):
    """Fan one instrumentation stream out to several recorders."""

    def __init__(self, recorders: Sequence[Recorder]) -> None:
        self._recorders: Tuple[Recorder, ...] = tuple(recorders)

    def counter(self, name: str, value: int = 1) -> None:
        for recorder in self._recorders:
            recorder.counter(name, value)

    def gauge(self, name: str, value: float) -> None:
        for recorder in self._recorders:
            recorder.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        for recorder in self._recorders:
            recorder.observe(name, value)

    def event(self, name: str, /, **fields: object) -> None:
        for recorder in self._recorders:
            recorder.event(name, **fields)

    def close(self) -> None:
        for recorder in self._recorders:
            recorder.close()


_current: Recorder = NULL_RECORDER


def get_recorder() -> Recorder:
    """The currently installed recorder (:data:`NULL_RECORDER` by default)."""
    return _current


def set_recorder(recorder: Recorder) -> Recorder:
    """Install ``recorder`` process-wide; returns the previous one."""
    global _current
    previous = _current
    _current = recorder
    return previous


@contextmanager
def recording(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` for the block, restore and close on exit."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
        recorder.close()
