"""repro — fault-tolerant simulation of population protocols.

A full reproduction of "On the Power of Weaker Pairwise Interaction:
Fault-Tolerant Simulation of Population Protocols" (Di Luna, Flocchini,
Izumi, Izumi, Santoro, Viglietta — ICDCS 2017), built as a reusable Python
library:

* :mod:`repro.protocols` — two-way/one-way population protocols and a
  catalog of standard workloads (pairing, leader election, majority,
  threshold counting, ...);
* :mod:`repro.interaction` — the ten interaction models of Figure 1 and
  their hierarchy;
* :mod:`repro.scheduling` — runs, schedulers, fairness diagnostics;
* :mod:`repro.adversary` — the UO/NO/NO1 omission adversaries, FTT search
  and the Lemma 1 / Theorem 3.2 attack constructions;
* :mod:`repro.engine` — the discrete-event execution engine;
* :mod:`repro.core` — the simulators (``SKnO``, ``SID``, ``Nn + SID``), the
  event/matching/derived-run machinery of Definitions 3-4, verification and
  memory accounting;
* :mod:`repro.problems` — machine-checkable problem specifications
  (the Pairing problem of Definition 5, and friends);
* :mod:`repro.analysis` — the Figure 4 results map, statistics, reporting.

Quickstart::

    from repro import (
        ExactMajorityProtocol, SKnOSimulator, SimulationEngine,
        RandomScheduler, get_model, verify_simulation,
    )

    protocol = ExactMajorityProtocol()
    simulator = SKnOSimulator(protocol, omission_bound=1)
    config = simulator.initial_configuration(protocol.initial_configuration(6, 4))
    engine = SimulationEngine(simulator, get_model("I3"), RandomScheduler(10, seed=1))
    trace = engine.run(config, max_steps=20_000)
    print(verify_simulation(simulator, trace).summary())
"""

from repro.protocols import (
    Configuration,
    PopulationProtocol,
    RuleBasedProtocol,
    OneWayProtocol,
    PairingProtocol,
    LeaderElectionProtocol,
    ApproximateMajorityProtocol,
    ExactMajorityProtocol,
    ThresholdProtocol,
    ModuloCountingProtocol,
    OrProtocol,
    AndProtocol,
    ParityProtocol,
    AveragingProtocol,
    EpidemicProtocol,
    get_protocol,
)
from repro.interaction import (
    Omission,
    NO_OMISSION,
    TW,
    T1,
    T2,
    T3,
    IT,
    IO,
    I1,
    I2,
    I3,
    I4,
    ALL_MODELS,
    get_model,
    hierarchy_graph,
    is_at_most_as_powerful,
)
from repro.interaction.adapters import one_way_as_two_way, two_way_as_one_way_naive
from repro.scheduling import (
    Interaction,
    Run,
    RandomScheduler,
    ScriptedScheduler,
    RoundRobinScheduler,
    fairness_report,
)
from repro.adversary import (
    UOAdversary,
    NOAdversary,
    NO1Adversary,
    BoundedOmissionAdversary,
    fastest_transition_time,
    Lemma1Construction,
    no1_liveness_attack,
)
from repro.engine import (
    SimulationEngine,
    Trace,
    run_until_stable,
    stable_output_condition,
    repeat_experiment,
)
from repro.core import (
    SKnOSimulator,
    SIDSimulator,
    KnownSizeSimulator,
    TrivialTwoWaySimulator,
    verify_simulation,
    SimulationReport,
)
from repro.problems import (
    PairingProblem,
    LeaderElectionProblem,
    MajorityProblem,
    ThresholdProblem,
)
from repro.analysis import results_map, format_results_map, format_table

__version__ = "1.0.0"

__all__ = [
    # protocols
    "Configuration",
    "PopulationProtocol",
    "RuleBasedProtocol",
    "OneWayProtocol",
    "PairingProtocol",
    "LeaderElectionProtocol",
    "ApproximateMajorityProtocol",
    "ExactMajorityProtocol",
    "ThresholdProtocol",
    "ModuloCountingProtocol",
    "OrProtocol",
    "AndProtocol",
    "ParityProtocol",
    "AveragingProtocol",
    "EpidemicProtocol",
    "get_protocol",
    # interaction models
    "Omission",
    "NO_OMISSION",
    "TW",
    "T1",
    "T2",
    "T3",
    "IT",
    "IO",
    "I1",
    "I2",
    "I3",
    "I4",
    "ALL_MODELS",
    "get_model",
    "hierarchy_graph",
    "is_at_most_as_powerful",
    "one_way_as_two_way",
    "two_way_as_one_way_naive",
    # scheduling
    "Interaction",
    "Run",
    "RandomScheduler",
    "ScriptedScheduler",
    "RoundRobinScheduler",
    "fairness_report",
    # adversaries and attacks
    "UOAdversary",
    "NOAdversary",
    "NO1Adversary",
    "BoundedOmissionAdversary",
    "fastest_transition_time",
    "Lemma1Construction",
    "no1_liveness_attack",
    # engine
    "SimulationEngine",
    "Trace",
    "run_until_stable",
    "stable_output_condition",
    "repeat_experiment",
    # simulators
    "SKnOSimulator",
    "SIDSimulator",
    "KnownSizeSimulator",
    "TrivialTwoWaySimulator",
    "verify_simulation",
    "SimulationReport",
    # problems
    "PairingProblem",
    "LeaderElectionProblem",
    "MajorityProblem",
    "ThresholdProblem",
    # analysis
    "results_map",
    "format_results_map",
    "format_table",
    "__version__",
]
