"""Memory accounting for simulator states.

Theorem 4.1 states that ``SKnO`` needs ``Theta(log n * |Q_P| * (o + 1))``
bits per agent, Corollary 1 specialises this to ``Theta(|Q_P| log n)`` bits
for ``IT`` (``o = 0``), and Theorem 4.6 adds ``Theta(log n)`` bits on top of
``SID`` for the naming phase.  This module provides a structural bit-count
for arbitrary (nested, immutable) agent states so those bounds can be
checked empirically: benchmarks measure the maximum per-agent state size
observed along executions and compare its growth in ``n`` and ``o`` against
the stated bounds.

The encoding is deliberately simple and deterministic (it is a measuring
stick, not a wire format): integers cost their bit length, booleans and
``None`` one bit, strings eight bits per character, and containers /
dataclasses cost the sum of their fields plus two bits of structure per
element.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Iterable, List, Sequence

from repro.protocols.protocol import PopulationProtocol, ProtocolError
from repro.protocols.state import Configuration


def state_bits(state: Any) -> int:
    """Approximate number of bits needed to encode ``state`` structurally."""
    if state is None:
        return 1
    if isinstance(state, bool):
        return 1
    if isinstance(state, int):
        return max(1, state.bit_length() + 1)
    if isinstance(state, float):
        return 64
    if isinstance(state, str):
        return max(1, 8 * len(state))
    if isinstance(state, (bytes, bytearray)):
        return max(1, 8 * len(state))
    if dataclasses.is_dataclass(state) and not isinstance(state, type):
        total = 2
        for field in dataclasses.fields(state):
            total += 2 + state_bits(getattr(state, field.name))
        return total
    if isinstance(state, (tuple, list, frozenset, set)):
        total = 2
        for item in state:
            total += 2 + state_bits(item)
        return total
    if isinstance(state, dict):
        total = 2
        for key, value in state.items():
            total += 2 + state_bits(key) + state_bits(value)
        return total
    # Fallback: encode the repr.
    return max(1, 8 * len(repr(state)))


def configuration_bits(configuration: Configuration) -> int:
    """Total bits over all agents of a configuration."""
    return sum(state_bits(state) for state in configuration)


def max_bits_per_agent(configurations: Iterable[Configuration]) -> int:
    """Maximum per-agent state size (bits) observed over a sequence of configurations."""
    maximum = 0
    for configuration in configurations:
        for state in configuration:
            maximum = max(maximum, state_bits(state))
    return maximum


def skno_state_bound_bits(protocol: PopulationProtocol, n: int, omission_bound: int) -> int:
    """The Theorem 4.1 bound ``Theta(log n * |Q_P| * (o + 1))`` with constant 1.

    Intuition: an agent may hold up to the order of ``|Q_P| * (o + 1)``
    tokens, and the token population per run is bounded by a counter of
    ``log n`` bits' worth of positional information.  The benchmark compares
    observed per-agent sizes against this expression to check the *growth
    shape* (linear in ``o + 1``, logarithmic in ``n``), not the constant.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if omission_bound < 0:
        raise ValueError("omission_bound must be non-negative")
    if not protocol.is_finite_state:
        raise ProtocolError("the bound is stated for finite-state protocols")
    log_n = max(1, math.ceil(math.log2(max(2, n))))
    return log_n * protocol.state_count() * (omission_bound + 1)


def sid_state_bound_bits(protocol: PopulationProtocol, n: int) -> int:
    """Per-agent bound for ``SID``/``Nn+SID``: ``Theta(log n)`` plus one simulated state.

    ``SID`` stores two ids (its own and its partner's) and two simulated
    states, so its per-agent footprint is ``O(log n + log |Q_P|)`` bits.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not protocol.is_finite_state:
        raise ProtocolError("the bound is stated for finite-state protocols")
    log_n = max(1, math.ceil(math.log2(max(2, n))))
    log_q = max(1, math.ceil(math.log2(max(2, protocol.state_count()))))
    return 2 * log_n + 2 * log_q
