"""End-to-end simulation verification (Definition 4, finite-prefix version).

Given a trace of a simulator ``S(P)``, this module checks the chain of
conditions that Definition 4 imposes on correct simulations:

1. extract the sequence of simulation events ``E(Gamma)``;
2. build a matching and verify every matched pair against ``delta_P``
   (Definition 3);
3. order the pairs into the derived run and replay it from ``pi_P(C0)``,
   checking it is a legal execution prefix of ``P``;
4. report the events that remain unmatched in the finite prefix (for a
   correct simulator these are only in-flight simulated interactions whose
   second half has not completed yet).

The report deliberately separates *hard violations* (invalid pairs,
inconsistent derived run) from *soft observations* (unmatched events,
zero progress), because the former falsify the simulation while the latter
only bound what a finite prefix can establish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.base import TwoWaySimulator
from repro.core.events import (
    DerivedStep,
    Matching,
    build_derived_run,
    replay_derived_run,
    replay_derived_run_anonymous,
)
from repro.engine.trace import Trace
from repro.protocols.state import Configuration


@dataclass
class SimulationReport:
    """Outcome of verifying one simulator trace."""

    simulator_name: str
    protocol_name: str
    trace_steps: int
    omissions: int
    event_count: int
    matched_pairs: int
    invalid_pairs: int
    unmatched_changed_events: int
    derived_consistent: bool
    derived_steps: int
    errors: List[str] = field(default_factory=list)
    final_simulated_configuration: Optional[Configuration] = None
    #: Matched pairs that could not be ordered within the finite prefix
    #: because a pre-state is only produced by a still-in-flight event (a
    #: soft, prefix-bounded observation — not a violation).
    deferred_pairs: int = 0

    @property
    def ok(self) -> bool:
        """No hard violation was found in this (finite) execution prefix."""
        return self.invalid_pairs == 0 and self.derived_consistent and not self.errors

    @property
    def made_progress(self) -> bool:
        """At least one full simulated two-way interaction completed."""
        return self.matched_pairs > 0

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "OK" if self.ok else "VIOLATION"
        return (
            f"[{status}] {self.simulator_name} on {self.protocol_name}: "
            f"steps={self.trace_steps} omissions={self.omissions} "
            f"pairs={self.matched_pairs} invalid={self.invalid_pairs} "
            f"pending-events={self.unmatched_changed_events}"
        )


def verify_simulation(simulator: TwoWaySimulator, trace: Trace) -> SimulationReport:
    """Verify that ``trace`` is (a prefix of) a correct simulation of ``simulator.protocol``."""
    protocol = simulator.protocol
    matching: Matching = simulator.extract_matching(trace)
    invalid = matching.invalid_pairs(protocol)
    derived: List[DerivedStep] = build_derived_run(matching.events, matching.pairs)
    initial_p = simulator.project_configuration(trace.initial_configuration)
    # Simulators whose matching hints are anonymous (no partner identity — the
    # tokens of SKnO carry no agent ids) are verified at the multiset level;
    # simulators that know partner identities (SID, Nn+SID, the trivial TW
    # wrapper) are held to the stronger agent-indexed replay.
    if getattr(simulator, "anonymous_matching", False):
        # In-flight (unmatched, changed) updates: a matched pair may depend
        # on their post-states, in which case it is deferred rather than
        # flagged — it orders after the in-flight interaction completes in
        # an extension of this finite prefix.
        in_flight_events = [
            (matching.events[i].pre_sim, matching.events[i].post_sim)
            for i in matching.changed_unmatched_events()
        ]
        replay = replay_derived_run_anonymous(
            protocol, initial_p, derived, in_flight_events=in_flight_events
        )
    else:
        replay = replay_derived_run(protocol, initial_p, derived)

    errors: List[str] = []
    for starter_index, reactor_index in invalid:
        starter_event = matching.events[starter_index]
        reactor_event = matching.events[reactor_index]
        errors.append(
            "invalid matched pair: "
            f"agents ({starter_event.agent}, {reactor_event.agent}) "
            f"pre=({starter_event.pre_sim!r}, {reactor_event.pre_sim!r}) "
            f"post=({starter_event.post_sim!r}, {reactor_event.post_sim!r})"
        )
    errors.extend(replay.errors)

    # Cross-check: the simulated configuration reached by the trace must agree
    # with the one reached by replaying the derived run, up to the simulated
    # interactions that are still in flight (unmatched events).  When there
    # are no unmatched *changed* events, the two must coincide as multisets.
    unmatched_changed = matching.changed_unmatched_events()
    if replay.consistent and not unmatched_changed and replay.final_configuration is not None:
        traced_final = simulator.project_configuration(trace.final_configuration)
        if traced_final.multiset() != replay.final_configuration.multiset():
            errors.append(
                "final simulated configuration disagrees with the derived execution: "
                f"trace={dict(traced_final.multiset())!r} "
                f"derived={dict(replay.final_configuration.multiset())!r}"
            )

    return SimulationReport(
        simulator_name=simulator.name,
        protocol_name=protocol.name,
        trace_steps=len(trace),
        omissions=trace.omission_count(),
        event_count=len(matching.events),
        matched_pairs=len(matching.pairs),
        invalid_pairs=len(invalid),
        unmatched_changed_events=len(unmatched_changed),
        derived_consistent=replay.consistent,
        derived_steps=replay.steps_replayed,
        errors=errors,
        final_simulated_configuration=replay.final_configuration,
        deferred_pairs=replay.deferred_pairs,
    )
