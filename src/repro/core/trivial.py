"""The trivial (identity) simulator for the two-way model.

Running a two-way protocol on the ``TW`` model needs no simulation at all;
this wrapper exists so that benchmarks and examples can treat "no simulator"
uniformly with the real simulators: it exposes the same projection / event
extraction / matching interface, its states *are* the protocol states, and
every non-silent interaction yields one already-matched pair of events.

It is the baseline against which the interaction overhead and memory
overhead of ``SKnO``, ``SID`` and ``Nn+SID`` are measured.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.base import TwoWaySimulator
from repro.core.events import Matching, REACTOR_ROLE, STARTER_ROLE, SimulationEvent
from repro.engine.trace import Trace
from repro.protocols.protocol import PopulationProtocol
from repro.protocols.state import Configuration, State


class TrivialTwoWaySimulator(TwoWaySimulator):
    """Identity wrapper: composite state equals simulated state, ``TW`` only."""

    compatible_models = ("TW",)

    def __init__(self, protocol: PopulationProtocol, name: Optional[str] = None) -> None:
        super().__init__(protocol, name=name or "TW-baseline")

    # -- states --------------------------------------------------------------------------------

    def initial_state(self, p_state: State, **knowledge) -> State:
        self.protocol.validate_initial_state(p_state)
        return p_state

    def initial_configuration(self, p_configuration: Configuration, **knowledge) -> Configuration:
        return Configuration(self.initial_state(p) for p in p_configuration)

    def project(self, state: State) -> State:
        return state

    def state_order(self) -> Tuple[State, ...]:
        """Composite states are the protocol states, in the protocol's order.

        This is what lets the array engine compile ``TW`` runs of finite
        catalog protocols: the identity wrapper inherits the wrapped
        protocol's canonical interning order verbatim.
        """
        return self.protocol.state_order()

    # -- two-way program interface (used by the TW model) -----------------------------------------

    def fs(self, starter: State, reactor: State) -> State:
        return self.delta(starter, reactor)[0]

    def fr(self, starter: State, reactor: State) -> State:
        return self.delta(starter, reactor)[1]

    # One-way interface for API uniformity; note that running a two-way
    # protocol's reactor half alone on a one-way model is *not* a correct
    # simulation (that is the point of the paper) — this is provided only so
    # that the object satisfies the OneWayProtocol interface.
    def f(self, starter: State, reactor: State) -> State:
        return self.fr(starter, reactor)

    # -- events ---------------------------------------------------------------------------------

    def extract_events(self, trace: Trace) -> List[SimulationEvent]:
        """Each executed two-way interaction is, directly, one simulated interaction."""
        events: List[SimulationEvent] = []
        for step in trace.steps:
            interaction = step.interaction
            events.append(
                SimulationEvent(
                    step=step.index,
                    agent=interaction.starter,
                    role=STARTER_ROLE,
                    pre_sim=step.starter_pre,
                    post_sim=step.starter_post,
                    partner_pre_sim=step.reactor_pre,
                    partner_agent=interaction.reactor,
                    key=step.index,
                )
            )
            events.append(
                SimulationEvent(
                    step=step.index,
                    agent=interaction.reactor,
                    role=REACTOR_ROLE,
                    pre_sim=step.reactor_pre,
                    post_sim=step.reactor_post,
                    partner_pre_sim=step.starter_pre,
                    partner_agent=interaction.starter,
                    key=step.index,
                )
            )
        return events

    def extract_matching(self, trace: Trace) -> Matching:
        events = self.extract_events(trace)
        pairs: List[Tuple[int, int]] = [
            (index, index + 1) for index in range(0, len(events), 2)
        ]
        return Matching.from_explicit_pairs(events, pairs)
