"""The naming protocol ``Nn`` and the knowledge-of-``n`` simulator (Section 4.3, Theorem 4.6).

When the agents do not have IDs but know the population size ``n``, unique
IDs can be bootstrapped with the naming protocol ``Nn`` (similar to the
threshold protocol for IO of reference [4]): every agent starts with
``my_id = 1``; a reactor that observes a starter holding the *same* id
increments its own id, and everyone tracks the maximum id seen in
``max_id``.  Ids only increase and a new maximum appears exactly when two
agents collide, so when ``max_id`` reaches ``n`` all ids are distinct and
stable (Lemma 3).  At that point the agent hands its (now unique) id to the
``SID`` simulator of Theorem 4.5 and starts simulating.

Documented deviation from the paper's prose (see DESIGN.md): the paper
writes ``start_sim(max_id)``; the value passed to the simulator must be the
agent's own unique identifier, so we pass ``my_id`` (passing ``max_id``
would give every agent the same id ``n``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.core.base import SimulatorError, TwoWaySimulator
from repro.core.events import Matching, SimulationEvent
from repro.core.sid import AVAILABLE, SIDSimulator, SIDState
from repro.engine.trace import Trace
from repro.protocols.protocol import PopulationProtocol
from repro.protocols.state import Configuration, State

#: Phases of the composite protocol.
NAMING = "naming"
SIMULATING = "simulating"


@dataclass(frozen=True)
class NamingState:
    """State of the naming protocol ``Nn`` for one agent."""

    my_id: int = 1
    max_id: int = 1


@dataclass(frozen=True)
class KnownSizeState:
    """Composite state: naming phase bookkeeping plus, once named, the ``SID`` state.

    ``p_initial`` is kept around during the naming phase so the agent can
    initialise its simulated state when it starts simulating (its simulated
    state never changes before that point).
    """

    phase: str
    p_initial: State
    naming: Optional[NamingState] = None
    sid: Optional[SIDState] = None


class KnownSizeSimulator(TwoWaySimulator):
    """Simulator for ``IO`` given knowledge of the population size ``n`` (Theorem 4.6).

    Internally this is the naming protocol ``Nn`` composed with
    :class:`~repro.core.sid.SIDSimulator`: agents first acquire unique ids,
    then run ``SID`` with those ids.
    """

    compatible_models = ("IO", "IT", "I1", "I2", "I3")

    def __init__(self, protocol: PopulationProtocol, population_size: int, name: Optional[str] = None) -> None:
        if population_size < 1:
            raise SimulatorError("population_size must be at least 1")
        super().__init__(protocol, name=name or f"Nn+SID(n={population_size})")
        self.population_size = population_size
        self._sid = SIDSimulator(protocol)

    # -- initial states ---------------------------------------------------------------------------

    @property
    def sid(self) -> SIDSimulator:
        """The embedded ``SID`` simulator used once ids are assigned."""
        return self._sid

    def initial_state(self, p_state: State, **knowledge) -> KnownSizeState:
        self.protocol.validate_initial_state(p_state)
        if self.population_size == 1:
            # A singleton population has nothing to name (and nothing to
            # interact with); start directly in the simulating phase.
            return KnownSizeState(
                phase=SIMULATING,
                p_initial=p_state,
                sid=SIDState(my_id=1, sim=p_state),
            )
        return KnownSizeState(phase=NAMING, p_initial=p_state, naming=NamingState())

    def initial_configuration(self, p_configuration: Configuration, **knowledge) -> Configuration:
        if len(p_configuration) != self.population_size:
            raise SimulatorError(
                f"this simulator was built for n={self.population_size} agents, "
                f"got a configuration of {len(p_configuration)}"
            )
        return Configuration(self.initial_state(p) for p in p_configuration)

    def project(self, state: KnownSizeState) -> State:
        if state.phase == SIMULATING:
            return state.sid.sim
        return state.p_initial

    # -- helper: what a starter exposes -------------------------------------------------------------

    @staticmethod
    def _starter_id_and_max(starter: KnownSizeState, n: int) -> Tuple[int, int]:
        """The (id, max_id) information a reactor can read off a starter."""
        if starter.phase == NAMING:
            return starter.naming.my_id, starter.naming.max_id
        return starter.sid.my_id, n

    # -- transition function (IO: g is the identity) -----------------------------------------------------

    def f(self, starter: KnownSizeState, reactor: KnownSizeState) -> KnownSizeState:
        new_state, _ = self._observe(starter, reactor)
        return new_state

    def _observe(
        self, starter: KnownSizeState, reactor: KnownSizeState
    ) -> Tuple[KnownSizeState, List[SimulationEvent]]:
        n = self.population_size

        if reactor.phase == NAMING:
            starter_id, starter_max = self._starter_id_and_max(starter, n)
            my_id = reactor.naming.my_id
            if starter_id == my_id:
                my_id += 1
            max_id = max(reactor.naming.max_id, my_id, starter_id, starter_max)
            if max_id >= n:
                return (
                    replace(
                        reactor,
                        phase=SIMULATING,
                        naming=None,
                        sid=SIDState(my_id=my_id, sim=reactor.p_initial),
                    ),
                    [],
                )
            return (
                replace(reactor, naming=NamingState(my_id=my_id, max_id=max_id)),
                [],
            )

        # Reactor is already simulating: it only makes progress when observing
        # another simulating agent (a still-naming starter has no SID state to
        # observe).
        if starter.phase == SIMULATING:
            new_sid, events = self._sid._observe(starter.sid, reactor.sid)
            if new_sid is reactor.sid:
                return reactor, events
            return replace(reactor, sid=new_sid), events
        return reactor, []

    # -- event extraction and matching ---------------------------------------------------------------------

    def extract_events(self, trace: Trace) -> List[SimulationEvent]:
        events: List[SimulationEvent] = []
        for step in trace.steps:
            if step.interaction.is_omissive:
                continue
            _, step_events = self._observe(step.starter_pre, step.reactor_pre)
            for event in step_events:
                events.append(
                    SimulationEvent(
                        step=step.index,
                        agent=step.interaction.reactor,
                        role=event.role,
                        pre_sim=event.pre_sim,
                        post_sim=event.post_sim,
                        partner_pre_sim=event.partner_pre_sim,
                        partner_agent=step.interaction.starter,
                        key=None,
                    )
                )
        return events

    def extract_matching(self, trace: Trace) -> Matching:
        """Exact matching, identical in structure to ``SID``'s."""
        events = self.extract_events(trace)
        last_unmatched_lock_by_agent = {}
        pairs = []
        for index, event in enumerate(events):
            if event.role == "starter":
                last_unmatched_lock_by_agent[event.agent] = index
            else:
                partner = event.partner_agent
                lock_index = last_unmatched_lock_by_agent.pop(partner, None)
                if lock_index is not None:
                    pairs.append((lock_index, index))
        return Matching.from_explicit_pairs(events, pairs)

    # -- naming diagnostics ------------------------------------------------------------------------------

    @staticmethod
    def naming_complete(configuration: Configuration) -> bool:
        """Whether every agent has finished the naming phase."""
        return all(state.phase == SIMULATING for state in configuration)

    @staticmethod
    def assigned_ids(configuration: Configuration) -> List[int]:
        """The ids currently assigned (naming-phase agents report their provisional id)."""
        ids = []
        for state in configuration:
            if state.phase == SIMULATING:
                ids.append(state.sid.my_id)
            else:
                ids.append(state.naming.my_id)
        return ids
