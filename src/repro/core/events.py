"""Simulation events, perfect matchings and derived runs (Definitions 3 and 4).

The correctness notion for a simulator is *not* that its configurations look
like configurations of the simulated protocol ``P`` at every instant — it is
that the updates of simulated states can be paired up into two-way
interactions of ``P``:

* an **event** (Definition of ``E(Gamma)`` in Section 2.4) is the update of
  one agent's simulated state, caused by some interaction of the simulator's
  execution;
* a **perfect matching** (Definition 3) pairs events of distinct agents so
  that each pair, read as (starter update, reactor update), agrees with
  ``delta_P`` applied to the two agents' simulated pre-states;
* the **derived run** (Definition 4) orders the matched pairs by the index
  of their earlier event and replays them as a run of ``P``; the simulator
  is correct when that derived execution is a (globally fair) execution of
  ``P``.

This module implements the finite-prefix versions of these notions: events
carry matching hints provided by the concrete simulators, matchings are
built greedily (or exactly, when the simulator knows partner identities),
each matched pair is checked against ``delta_P``, and the derived run is
replayed from ``pi_P(C0)`` to check consistency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.protocols.protocol import PopulationProtocol
from repro.protocols.state import Configuration, State

#: Role labels for events: which side of the simulated two-way interaction
#: the agent's update corresponds to.
STARTER_ROLE = "starter"
REACTOR_ROLE = "reactor"


@dataclass(frozen=True)
class SimulationEvent:
    """One update of an agent's simulated state.

    Attributes
    ----------
    step:
        Index of the trace step (interaction) that caused the update.
    agent:
        Index of the agent whose simulated state was updated.
    role:
        ``"starter"`` or ``"reactor"``: the agent's role in the simulated
        two-way interaction this event belongs to (not necessarily its role
        in the physical interaction that caused the update).
    pre_sim / post_sim:
        The agent's simulated state before and after the update.
    partner_pre_sim:
        The simulated pre-state of the partner in the simulated two-way
        interaction, as known to the simulator at update time.
    partner_agent:
        The partner's index when the simulator knows it (``SID`` does,
        ``SKnO`` does not — agents are anonymous there).
    key:
        A hashable matching hint: two events that belong to the same
        simulated interaction carry equal keys.
    """

    step: int
    agent: int
    role: str
    pre_sim: State
    post_sim: State
    partner_pre_sim: Optional[State] = None
    partner_agent: Optional[int] = None
    key: Optional[Hashable] = None

    @property
    def changed(self) -> bool:
        """Whether the simulated state actually changed (events may be no-ops)."""
        return self.pre_sim != self.post_sim


@dataclass(frozen=True)
class DerivedStep:
    """One interaction of the derived run of ``P`` (Definition 4)."""

    starter_agent: int
    reactor_agent: int
    starter_pre: State
    reactor_pre: State
    starter_post: State
    reactor_post: State
    starter_event_index: int
    reactor_event_index: int

    @property
    def order_key(self) -> Tuple[int, int]:
        """Pairs are ordered by the index of their earlier event, then the later one."""
        lo = min(self.starter_event_index, self.reactor_event_index)
        hi = max(self.starter_event_index, self.reactor_event_index)
        return (lo, hi)


def verify_matched_pair(
    protocol: PopulationProtocol,
    starter_event: SimulationEvent,
    reactor_event: SimulationEvent,
) -> bool:
    """Check Definition 3 for one pair: the two updates agree with ``delta_P``."""
    if starter_event.agent == reactor_event.agent:
        return False
    expected = protocol.delta(starter_event.pre_sim, reactor_event.pre_sim)
    return expected == (starter_event.post_sim, reactor_event.post_sim)


@dataclass
class Matching:
    """A (partial) perfect matching over a sequence of simulation events.

    ``pairs`` holds ``(starter_event_index, reactor_event_index)`` pairs into
    ``events``.  ``unmatched`` lists the indices of events that could not be
    paired within the finite trace prefix: for a correct simulator these are
    events whose partner update simply has not happened yet (e.g. a pending
    ``SKnO`` agent whose state-change tokens are still in flight), so they
    are reported but are not, by themselves, a correctness violation.
    """

    events: List[SimulationEvent]
    pairs: List[Tuple[int, int]] = field(default_factory=list)
    unmatched: List[int] = field(default_factory=list)

    # -- constructors -------------------------------------------------------------------------

    @classmethod
    def greedy(cls, protocol: PopulationProtocol, events: Sequence[SimulationEvent]) -> "Matching":
        """Greedy key-based matching.

        Starter-role and reactor-role events are paired when they carry equal
        keys, involve distinct agents, and satisfy Definition 3; each event is
        used at most once, and candidates are consumed in trace order.
        """
        events = list(events)
        matching = cls(events=events)
        unpaired_by_key: Dict[Hashable, Dict[str, List[int]]] = {}

        for index, event in enumerate(events):
            if event.key is None:
                matching.unmatched.append(index)
                continue
            bucket = unpaired_by_key.setdefault(event.key, {STARTER_ROLE: [], REACTOR_ROLE: []})
            other_role = REACTOR_ROLE if event.role == STARTER_ROLE else STARTER_ROLE
            paired = False
            for position, candidate_index in enumerate(bucket[other_role]):
                candidate = events[candidate_index]
                starter_event = event if event.role == STARTER_ROLE else candidate
                reactor_event = candidate if event.role == STARTER_ROLE else event
                if verify_matched_pair(protocol, starter_event, reactor_event):
                    starter_index = index if event.role == STARTER_ROLE else candidate_index
                    reactor_index = candidate_index if event.role == STARTER_ROLE else index
                    matching.pairs.append((starter_index, reactor_index))
                    bucket[other_role].pop(position)
                    paired = True
                    break
            if not paired:
                bucket[event.role].append(index)

        for bucket in unpaired_by_key.values():
            matching.unmatched.extend(bucket[STARTER_ROLE])
            matching.unmatched.extend(bucket[REACTOR_ROLE])
        matching.unmatched.sort()
        return matching

    @classmethod
    def from_explicit_pairs(
        cls,
        events: Sequence[SimulationEvent],
        pairs: Sequence[Tuple[int, int]],
    ) -> "Matching":
        """Build a matching from explicit pairs (used by simulators that know partners)."""
        events = list(events)
        used = set()
        for starter_index, reactor_index in pairs:
            used.add(starter_index)
            used.add(reactor_index)
        unmatched = [i for i in range(len(events)) if i not in used]
        return cls(events=events, pairs=list(pairs), unmatched=unmatched)

    # -- checks --------------------------------------------------------------------------------

    def invalid_pairs(self, protocol: PopulationProtocol) -> List[Tuple[int, int]]:
        """Pairs that violate Definition 3 (empty for a correct matching)."""
        invalid = []
        for starter_index, reactor_index in self.pairs:
            if not verify_matched_pair(
                protocol, self.events[starter_index], self.events[reactor_index]
            ):
                invalid.append((starter_index, reactor_index))
        return invalid

    def matched_event_count(self) -> int:
        """Number of events covered by the matching."""
        return 2 * len(self.pairs)

    def changed_unmatched_events(self) -> List[int]:
        """Unmatched events that actually changed a simulated state.

        These are the interesting ones: unmatched no-op events are always
        harmless, while a *changed* unmatched event either awaits its partner
        in a longer execution or indicates a simulator bug.
        """
        return [i for i in self.unmatched if self.events[i].changed]


def build_derived_run(
    events: Sequence[SimulationEvent], pairs: Sequence[Tuple[int, int]]
) -> List[DerivedStep]:
    """Order matched pairs into the derived run of Definition 4."""
    steps = []
    for starter_index, reactor_index in pairs:
        starter_event = events[starter_index]
        reactor_event = events[reactor_index]
        steps.append(
            DerivedStep(
                starter_agent=starter_event.agent,
                reactor_agent=reactor_event.agent,
                starter_pre=starter_event.pre_sim,
                reactor_pre=reactor_event.pre_sim,
                starter_post=starter_event.post_sim,
                reactor_post=reactor_event.post_sim,
                starter_event_index=starter_index,
                reactor_event_index=reactor_index,
            )
        )
    steps.sort(key=lambda step: step.order_key)
    return steps


@dataclass
class DerivedRunReport:
    """Outcome of replaying a derived run against the simulated protocol."""

    consistent: bool
    steps_replayed: int
    final_configuration: Optional[Configuration]
    errors: List[str] = field(default_factory=list)
    #: Matched pairs whose pre-states were only reachable through an
    #: in-flight (unmatched, changed) event: they are realisable in an
    #: extension of the prefix but cannot be ordered within it yet.
    deferred_pairs: int = 0


def replay_derived_run_anonymous(
    protocol: PopulationProtocol,
    initial_p_configuration: Configuration,
    derived: Sequence[DerivedStep],
    in_flight_events: Optional[Sequence[Tuple[State, State]]] = None,
) -> DerivedRunReport:
    """Replay a derived run at the multiset level (anonymous agents).

    Simulators whose bookkeeping is fully anonymous (``SKnO``: tokens carry
    no agent identity) cannot attribute each simulated interaction to a
    specific partner agent, so their extracted matching only determines the
    *multiset* of simulated interactions.  Because population-protocol agents
    are themselves anonymous, a derived run is realisable as an execution of
    ``P`` on ``n`` agents if and only if, at each derived step, the current
    multiset of simulated states contains the two required pre-states: one
    can then always pick a consistent assignment of events to (interchangeable)
    agents.  This function checks exactly that.

    ``in_flight_events`` lists the ``(pre_sim, post_sim)`` updates of
    *unmatched changed* events: simulated updates whose partner half has not
    completed within the finite prefix.  A matched pair may legitimately
    depend on such a post-state (e.g. a silent ``(bot, p)`` interaction
    whose ``bot`` agent was produced by a still-in-flight
    ``(c, p) -> (cs, bot)`` interaction); ordering it inside the prefix is
    impossible, but it is realisable in an extension where the in-flight
    interaction completes.  Such pairs are counted as ``deferred_pairs``
    instead of being flagged as hard violations.  Consuming an in-flight
    post-state also consumes the agent behind it: the event's pre-state is
    debited from the present multiset (one agent can never supply both its
    stale pre-state and its in-flight post-state), and a deferred pair's
    own post-states join the pool as equally pending effects.  With no
    in-flight events the replay is exact, as before.
    """
    counts = dict(initial_p_configuration.multiset())
    # Each pool entry is [pre_or_None, post]; a ``None`` pre means the state
    # needs no further debit (it is the pending effect of a deferred pair
    # whose pre-states were already consumed).
    pool: List[list] = [[pre, post] for pre, post in (in_flight_events or ())]
    errors: List[str] = []
    deferred = 0

    def take(state: State) -> bool:
        if counts.get(state, 0) <= 0:
            return False
        counts[state] -= 1
        return True

    def put(state: State) -> None:
        counts[state] = counts.get(state, 0) + 1

    def take_in_flight(state: State) -> Optional[list]:
        """Consume a pool entry with post-state ``state``; returns it or None."""
        for position, entry in enumerate(pool):
            pre, post = entry
            if post != state:
                continue
            if pre is None or take(pre):
                return pool.pop(position)
        return None

    def restore(entry) -> None:
        if entry[0] is not None:
            put(entry[0])
        pool.append(entry)

    for index, step in enumerate(derived):
        expected_post = protocol.delta(step.starter_pre, step.reactor_pre)
        if expected_post != (step.starter_post, step.reactor_post):
            errors.append(
                f"derived step {index}: delta_P{(step.starter_pre, step.reactor_pre)!r} = "
                f"{expected_post!r} but events recorded "
                f"{(step.starter_post, step.reactor_post)!r}"
            )
            continue
        # Take each pre-state from the present multiset if possible, falling
        # back to the in-flight pool (which marks the pair as deferred).
        starter_entry = None
        if not take(step.starter_pre):
            starter_entry = take_in_flight(step.starter_pre)
            if starter_entry is None:
                errors.append(
                    f"derived step {index}: no agent in simulated state "
                    f"{step.starter_pre!r} is available"
                )
                continue
        reactor_entry = None
        if not take(step.reactor_pre):
            reactor_entry = take_in_flight(step.reactor_pre)
            if reactor_entry is None:
                if starter_entry is not None:
                    restore(starter_entry)
                else:
                    put(step.starter_pre)
                errors.append(
                    f"derived step {index}: no agent in simulated state "
                    f"{step.reactor_pre!r} is available"
                )
                continue
        if starter_entry is not None or reactor_entry is not None:
            deferred += 1
            pool.append([None, step.starter_post])
            pool.append([None, step.reactor_post])
        else:
            put(step.starter_post)
            put(step.reactor_post)

    final = Configuration.from_counts({state: c for state, c in counts.items() if c > 0})
    return DerivedRunReport(
        consistent=not errors,
        steps_replayed=len(derived),
        final_configuration=final if not errors else None,
        errors=errors,
        deferred_pairs=deferred,
    )


def replay_derived_run(
    protocol: PopulationProtocol,
    initial_p_configuration: Configuration,
    derived: Sequence[DerivedStep],
) -> DerivedRunReport:
    """Replay a derived run from ``pi_P(C0)`` and check it is an execution of ``P``.

    Each derived step must find the two agents in exactly the simulated
    pre-states recorded by its events, and must move them to exactly the
    recorded post-states via ``delta_P``; any mismatch is reported.
    """
    configuration = initial_p_configuration
    errors: List[str] = []
    for index, step in enumerate(derived):
        actual_starter = configuration[step.starter_agent]
        actual_reactor = configuration[step.reactor_agent]
        if actual_starter != step.starter_pre or actual_reactor != step.reactor_pre:
            errors.append(
                f"derived step {index}: expected pre-states "
                f"({step.starter_pre!r}, {step.reactor_pre!r}) for agents "
                f"({step.starter_agent}, {step.reactor_agent}), found "
                f"({actual_starter!r}, {actual_reactor!r})"
            )
            continue
        expected_post = protocol.delta(step.starter_pre, step.reactor_pre)
        if expected_post != (step.starter_post, step.reactor_post):
            errors.append(
                f"derived step {index}: delta_P{(step.starter_pre, step.reactor_pre)!r} = "
                f"{expected_post!r} but events recorded "
                f"{(step.starter_post, step.reactor_post)!r}"
            )
            continue
        configuration = configuration.apply_interaction(
            step.starter_agent, step.reactor_agent, step.starter_post, step.reactor_post
        )
    return DerivedRunReport(
        consistent=not errors,
        steps_replayed=len(derived),
        final_configuration=configuration if not errors else None,
        errors=errors,
    )
