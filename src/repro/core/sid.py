"""The ``SID`` simulator (Section 4.2, Figure 3, Theorem 4.5).

``SID`` simulates an arbitrary two-way protocol ``P`` on the Immediate
Observation model, assuming every agent knows a unique identifier.  The IDs
are used to implement a locking protocol that guarantees the consistent
matching of simulated state changes:

* an *available* reactor that observes an available starter enters the
  *pairing* state, remembering the starter's ID and simulated state — a soft
  commitment to simulate a two-way interaction with that specific agent;
* the chosen agent, next time it acts as a *reactor* and observes the
  pairing agent pointing at it with a still-accurate state snapshot, becomes
  *locked* and performs the starter side of the simulated transition
  (``stateP = delta(stateP, state_other)[0]``);
* when the pairing agent later observes its partner locked on it, it
  performs the reactor side (``stateP = delta(q_s, stateP)[1]`` where
  ``q_s`` is the snapshot it saved when pairing) and becomes available;
* the locked agent unlocks when it next observes its former partner no
  longer pointing at it; a pairing agent whose chosen partner moved on rolls
  back the same way (lines 14-16 of Figure 3).

Documented deviation from Figure 3 (correctness-preserving, see DESIGN.md):
line 13 of the paper computes the reactor side from the locked partner's
*current* simulated state, which has already been updated at line 9; we use
the snapshot ``state_other`` saved when pairing (the partner's pre-lock
state), which is the value ``delta_P`` must be applied to for the matching
of Definition 3 to be consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.core.base import SimulatorError, TwoWaySimulator
from repro.core.events import (
    Matching,
    REACTOR_ROLE,
    STARTER_ROLE,
    SimulationEvent,
)
from repro.engine.trace import Trace
from repro.protocols.protocol import PopulationProtocol
from repro.protocols.state import Configuration, State

#: Simulator phases (the ``statesim`` variable of Figure 3).
AVAILABLE = "available"
PAIRING = "pairing"
LOCKED = "locked"


@dataclass(frozen=True)
class SIDState:
    """Composite state of one agent running ``SID`` (the variables of Figure 3)."""

    my_id: Hashable
    sim: State
    phase: str = AVAILABLE
    id_other: Optional[Hashable] = None
    state_other: Optional[State] = None


class SIDSimulator(TwoWaySimulator):
    """ID-based locking simulator for the Immediate Observation model (Theorem 4.5)."""

    compatible_models = ("IO", "IT", "I1", "I2", "I3")

    def __init__(self, protocol: PopulationProtocol, name: Optional[str] = None) -> None:
        super().__init__(protocol, name=name or "SID")

    # -- initial states -------------------------------------------------------------------------

    def initial_state(self, p_state: State, agent_id: Optional[Hashable] = None, **knowledge) -> SIDState:
        """Composite initial state for an agent with unique identifier ``agent_id``."""
        if agent_id is None:
            raise SimulatorError("SID requires a unique agent_id for every agent")
        self.protocol.validate_initial_state(p_state)
        return SIDState(my_id=agent_id, sim=p_state)

    def initial_configuration(
        self,
        p_configuration: Configuration,
        ids: Optional[Sequence[Hashable]] = None,
        **knowledge,
    ) -> Configuration:
        """Composite initial configuration; ``ids`` defaults to ``0 .. n-1``.

        The IDs must be pairwise distinct — that is precisely the knowledge
        assumption of Theorem 4.5.
        """
        n = len(p_configuration)
        if ids is None:
            ids = list(range(n))
        ids = list(ids)
        if len(ids) != n:
            raise SimulatorError(f"expected {n} ids, got {len(ids)}")
        if len(set(ids)) != n:
            raise SimulatorError("agent ids must be pairwise distinct")
        return Configuration(
            self.initial_state(p_state, agent_id=agent_id)
            for p_state, agent_id in zip(p_configuration, ids)
        )

    def project(self, state: SIDState) -> State:
        return state.sim

    # -- transition function (g is the identity: IO) -------------------------------------------------

    def f(self, starter: SIDState, reactor: SIDState) -> SIDState:
        """The reactor update of Figure 3 (the starter is left untouched by IO)."""
        new_state, _ = self._observe(starter, reactor)
        return new_state

    def _observe(
        self, starter: SIDState, reactor: SIDState
    ) -> Tuple[SIDState, List[SimulationEvent]]:
        """Apply the Figure 3 rules; also report any simulated-state update as an event."""
        events: List[SimulationEvent] = []

        # Lines 3-5: start pairing with an available starter.
        if reactor.phase == AVAILABLE and starter.phase == AVAILABLE:
            return (
                replace(
                    reactor,
                    phase=PAIRING,
                    id_other=starter.my_id,
                    state_other=starter.sim,
                ),
                events,
            )

        # Lines 6-9: lock with a pairing agent that chose us (and whose snapshot
        # of our state is still accurate), performing the starter side of the
        # simulated interaction.
        if (
            reactor.phase == AVAILABLE
            and starter.phase == PAIRING
            and starter.id_other == reactor.my_id
            and starter.state_other == reactor.sim
        ):
            old_sim = reactor.sim
            partner_sim = starter.sim
            new_sim = self.delta(old_sim, partner_sim)[0]
            events.append(
                SimulationEvent(
                    step=-1,
                    agent=-1,
                    role=STARTER_ROLE,
                    pre_sim=old_sim,
                    post_sim=new_sim,
                    partner_pre_sim=partner_sim,
                    key=None,
                )
            )
            return (
                replace(
                    reactor,
                    phase=LOCKED,
                    id_other=starter.my_id,
                    state_other=partner_sim,
                    sim=new_sim,
                ),
                events,
            )

        # Lines 10-13: complete the simulated interaction with our locked partner,
        # performing the reactor side (using the saved pre-lock snapshot).
        if (
            reactor.phase == PAIRING
            and reactor.id_other == starter.my_id
            and starter.id_other == reactor.my_id
            and starter.phase == LOCKED
        ):
            old_sim = reactor.sim
            partner_old_sim = reactor.state_other
            new_sim = self.delta(partner_old_sim, old_sim)[1]
            events.append(
                SimulationEvent(
                    step=-1,
                    agent=-1,
                    role=REACTOR_ROLE,
                    pre_sim=old_sim,
                    post_sim=new_sim,
                    partner_pre_sim=partner_old_sim,
                    key=None,
                )
            )
            return (
                replace(
                    reactor,
                    phase=AVAILABLE,
                    id_other=None,
                    state_other=None,
                    sim=new_sim,
                ),
                events,
            )

        # Lines 14-16: roll back (pairing agent abandoned, or locked agent released).
        if reactor.id_other == starter.my_id and starter.id_other != reactor.my_id:
            return (
                replace(reactor, phase=AVAILABLE, id_other=None, state_other=None),
                events,
            )

        return reactor, events

    # -- event extraction and exact matching ------------------------------------------------------------

    def extract_events(self, trace: Trace) -> List[SimulationEvent]:
        """Recompute the simulated-state updates of every step of a trace."""
        events: List[SimulationEvent] = []
        for step in trace.steps:
            if step.interaction.is_omissive:
                # Under an omissive one-way model with g = identity, an omissive
                # interaction leaves both agents untouched: no event.
                continue
            _, step_events = self._observe(step.starter_pre, step.reactor_pre)
            for event in step_events:
                partner_agent = step.interaction.starter
                events.append(
                    SimulationEvent(
                        step=step.index,
                        agent=step.interaction.reactor,
                        role=event.role,
                        pre_sim=event.pre_sim,
                        post_sim=event.post_sim,
                        partner_pre_sim=event.partner_pre_sim,
                        partner_agent=partner_agent,
                        key=None,
                    )
                )
        return events

    def extract_matching(self, trace: Trace) -> Matching:
        """Exact matching: each completion event pairs with its partner's latest lock event.

        When agent ``r`` completes a simulated interaction (lines 10-13) upon
        observing agent ``s`` locked on it, the matching partner event is the
        most recent lock event (lines 6-9) of ``s`` — ``s`` stays locked from
        that moment until after ``r`` completes, so the association is
        unambiguous.
        """
        events = self.extract_events(trace)
        last_unmatched_lock_by_agent = {}
        pairs: List[Tuple[int, int]] = []
        for index, event in enumerate(events):
            if event.role == STARTER_ROLE:
                last_unmatched_lock_by_agent[event.agent] = index
            else:
                partner = event.partner_agent
                lock_index = last_unmatched_lock_by_agent.pop(partner, None)
                if lock_index is not None:
                    pairs.append((lock_index, index))
        return Matching.from_explicit_pairs(events, pairs)
