"""Base class for two-way protocol simulators (Section 2.4).

A simulator ``S(P)`` is, operationally, just a protocol for a weaker model
whose local states are pairs of a *simulated* state (a state of ``P``) and
some simulator bookkeeping.  The base class below fixes the interface every
simulator in this library implements:

* it *is* a :class:`repro.protocols.OneWayProtocol`, so the engine can run
  it directly under any of the one-way models (and, via
  :func:`repro.interaction.adapters.one_way_as_two_way`, under the two-way
  omissive models used by the impossibility constructions);
* it knows how to build initial composite states from initial states of
  ``P`` plus whatever knowledge it assumes (unique IDs, population size,
  omission bound);
* it can project composite states back onto ``Q_P`` (the function ``pi_P``);
* it can extract, from an execution trace, the *simulation events* (updates
  of simulated states) together with enough hints to build the perfect
  matching of Definition 3.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.core.events import Matching, SimulationEvent
from repro.engine.trace import Trace
from repro.protocols.protocol import OneWayProtocol, PopulationProtocol
from repro.protocols.state import Configuration, State


class SimulatorError(Exception):
    """Raised on invalid simulator construction or use."""


class TwoWaySimulator(OneWayProtocol):
    """Abstract simulator of two-way protocols on weaker interaction models."""

    #: Names of the interaction models this simulator is designed for.
    compatible_models: Tuple[str, ...] = ()

    def __init__(self, protocol: PopulationProtocol, name: Optional[str] = None) -> None:
        if not isinstance(protocol, PopulationProtocol):
            raise SimulatorError(
                "a simulator wraps a two-way PopulationProtocol; got "
                f"{type(protocol).__name__}"
            )
        super().__init__(states=None, initial_states=None, name=name or type(self).__name__)
        self._protocol = protocol

    # -- simulated protocol ------------------------------------------------------------------

    @property
    def protocol(self) -> PopulationProtocol:
        """The simulated two-way protocol ``P``."""
        return self._protocol

    def delta(self, starter: State, reactor: State) -> Tuple[State, State]:
        """Shorthand for the simulated protocol's transition function."""
        return self._protocol.delta(starter, reactor)

    # -- state construction and projection ------------------------------------------------------

    def initial_state(self, p_state: State, **knowledge: Any) -> State:
        """The composite initial state of an agent whose ``P``-state is ``p_state``.

        ``knowledge`` carries whatever the concrete simulator assumes
        (``agent_id=...`` for :class:`SIDSimulator`, nothing for
        :class:`SKnOSimulator`, ...).
        """
        raise NotImplementedError

    def initial_configuration(
        self, p_configuration: Configuration, **knowledge: Any
    ) -> Configuration:
        """Composite initial configuration for a whole population.

        The default builds each agent's state with :meth:`initial_state`,
        forwarding per-agent knowledge when ``knowledge`` contains sequences
        (e.g. ``ids=[...]``); concrete simulators override this when they
        need something richer.
        """
        return Configuration(
            self.initial_state(p_state) for p_state in p_configuration
        )

    def project(self, state: State) -> State:
        """The projection ``pi_P`` onto the simulated protocol's state."""
        raise NotImplementedError

    def project_configuration(self, configuration: Configuration) -> Configuration:
        """Apply ``pi_P`` to every agent of a configuration."""
        return configuration.project(self.project)

    # -- event extraction (Definitions 3 and 4) ----------------------------------------------------

    def extract_events(self, trace: Trace) -> List[SimulationEvent]:
        """The sequence of simulation events of an execution trace.

        An event is recorded for every update of an agent's simulated state,
        annotated with the role the agent played in the simulated two-way
        interaction and with matching hints (the partner's simulated
        pre-state, and the partner's identity when the simulator knows it).
        """
        raise NotImplementedError

    def extract_matching(self, trace: Trace) -> Matching:
        """Events plus the perfect-matching pairs for an execution trace.

        The default implementation pairs starter-role events with
        reactor-role events greedily using the events' matching keys; see
        :class:`repro.core.events.Matching` for the exact rules.  Simulators
        with precise partner information (e.g. ``SID``) override the pairing
        with an exact one.
        """
        events = self.extract_events(trace)
        return Matching.greedy(self._protocol, events)

    # -- misc -----------------------------------------------------------------------------------------

    def describe(self) -> str:
        """One-line human-readable description of the simulator instance."""
        models = "/".join(self.compatible_models) or "?"
        return f"{self.name} simulating {self._protocol.name!r} on {models}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} protocol={self._protocol.name!r}>"
