"""Core contribution: two-way protocol simulators for weak interaction models.

A *simulator* ``S(P)`` (Section 2.4) is a wrapper protocol that runs on a
weak interaction model (one-way and/or omissive) and gives an arbitrary
two-way protocol ``P`` the illusion of running on the standard two-way
model: its composite states live in ``Q_P x Q_S``, and its executions admit
a sequence of events with a perfect matching whose derived execution is a
globally fair execution of ``P``.

This package provides the three simulators constructed in Section 4 of the
paper, the event/matching machinery of Definitions 3 and 4, an end-to-end
verification pass, and memory accounting backing the stated space bounds:

* :class:`SKnOSimulator` — Theorem 4.1: models ``I3``/``I4`` (and ``IT``
  with ``o = 0``, Corollary 1) given an upper bound ``o`` on omissions.
* :class:`SIDSimulator` — Theorem 4.5: model ``IO`` given unique IDs.
* :class:`KnownSizeSimulator` — Theorem 4.6: model ``IO`` given knowledge of
  the population size ``n`` (naming protocol ``Nn`` composed with ``SID``).
* :class:`TrivialTwoWaySimulator` — the identity wrapper for the ``TW``
  model, used as the overhead baseline.
"""

from repro.core.base import TwoWaySimulator, SimulatorError
from repro.core.events import (
    SimulationEvent,
    Matching,
    DerivedStep,
    verify_matched_pair,
    build_derived_run,
    replay_derived_run,
)
from repro.core.skno import SKnOSimulator, SKnOState
from repro.core.sid import SIDSimulator, SIDState
from repro.core.naming import NamingState, KnownSizeSimulator, KnownSizeState
from repro.core.trivial import TrivialTwoWaySimulator
from repro.core.verification import SimulationReport, verify_simulation
from repro.core.memory import (
    state_bits,
    configuration_bits,
    max_bits_per_agent,
    skno_state_bound_bits,
)

__all__ = [
    "TwoWaySimulator",
    "SimulatorError",
    "SimulationEvent",
    "Matching",
    "DerivedStep",
    "verify_matched_pair",
    "build_derived_run",
    "replay_derived_run",
    "SKnOSimulator",
    "SKnOState",
    "SIDSimulator",
    "SIDState",
    "NamingState",
    "KnownSizeSimulator",
    "KnownSizeState",
    "TrivialTwoWaySimulator",
    "SimulationReport",
    "verify_simulation",
    "state_bits",
    "configuration_bits",
    "max_bits_per_agent",
    "skno_state_bound_bits",
]
