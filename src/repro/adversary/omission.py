"""Online omission adversaries (Definitions 1 and 2).

The paper's adversaries are run rewriters: they take a run ``I`` and output
a new run obtained by inserting finite sequences of *omissive* interactions
between consecutive interactions of ``I``.  The crucial point is that the
original interactions are untouched — the adversary can only add omissive
noise, not suppress the fair schedule.

Here the adversaries are implemented *online*: before each scheduled
interaction, the engine asks the adversary for the (possibly empty) list of
omissive interactions to inject.  This is exactly the rewriting of
Definitions 1 and 2, applied lazily to whatever run the scheduler is
producing.

* :class:`UOAdversary` — the Unfair Omissive adversary: may keep inserting
  omissions forever.
* :class:`NOAdversary` — the Eventually Non-Omissive adversary: inserts
  omissions only before finitely many scheduled interactions.
* :class:`NO1Adversary` — inserts at most one omissive interaction in the
  entire execution.
* :class:`BoundedOmissionAdversary` — inserts at most ``o`` omissive
  interactions; this realises the "known upper bound on the number of
  omissions" assumption of Theorem 4.1.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.interaction.models import InteractionModel
from repro.interaction.omissions import Omission
from repro.scheduling.runs import Interaction


class OmissionAdversary:
    """Base class: decides which omissive interactions to inject before each scheduled one."""

    def interactions_before(
        self, step: int, scheduled: Interaction, n: int
    ) -> List[Interaction]:
        """The omissive interactions to execute just before the ``step``-th scheduled one."""
        raise NotImplementedError

    def reset(self) -> None:
        """Reset internal state (budgets, RNG) so the adversary can be reused."""

    # -- helpers shared by the concrete adversaries ---------------------------------------

    @staticmethod
    def _random_pair(rng: random.Random, n: int) -> Tuple[int, int]:
        starter = rng.randrange(n)
        reactor = rng.randrange(n - 1)
        if reactor >= starter:
            reactor += 1
        return starter, reactor


class NoOmissionAdversary(OmissionAdversary):
    """The trivial adversary that never injects anything."""

    def interactions_before(
        self, step: int, scheduled: Interaction, n: int
    ) -> List[Interaction]:
        return []


class _RandomOmissionMixin:
    """Shared machinery: choose random pairs and random admissible omission kinds."""

    def __init__(self, model: InteractionModel, seed: Optional[int] = None):
        self.model = model
        omissive = [o for o in model.admissible_omissions() if o.is_omissive]
        if not omissive:
            raise ValueError(
                f"model {model.name} does not admit omissive interactions; "
                "an omission adversary cannot operate on it"
            )
        self._omissive_kinds: Sequence[Omission] = tuple(omissive)
        self._seed = seed
        self._rng = random.Random(seed)

    def _make_omissive_interaction(self, n: int) -> Interaction:
        starter, reactor = OmissionAdversary._random_pair(self._rng, n)
        omission = self._rng.choice(self._omissive_kinds)
        return Interaction(starter, reactor, omission=omission)

    def _reset_rng(self) -> None:
        self._rng = random.Random(self._seed)


class UOAdversary(_RandomOmissionMixin, OmissionAdversary):
    """Unfair Omissive adversary: injects omissions forever (Definition 1).

    Before every scheduled interaction it injects a geometrically distributed
    number of omissive interactions with mean ``rate`` (so ``rate = 0.5``
    averages one omission every two scheduled interactions), between random
    pairs and with a random admissible omission kind for the model.
    """

    def __init__(
        self,
        model: InteractionModel,
        rate: float = 0.25,
        max_per_gap: int = 3,
        seed: Optional[int] = None,
    ):
        if rate < 0:
            raise ValueError("rate must be non-negative")
        if max_per_gap < 0:
            raise ValueError("max_per_gap must be non-negative")
        super().__init__(model=model, seed=seed)
        self.rate = rate
        self.max_per_gap = max_per_gap
        self.total_injected = 0

    def interactions_before(
        self, step: int, scheduled: Interaction, n: int
    ) -> List[Interaction]:
        injected: List[Interaction] = []
        probability = self.rate / (1.0 + self.rate)
        while len(injected) < self.max_per_gap and self._rng.random() < probability:
            injected.append(self._make_omissive_interaction(n))
        self.total_injected += len(injected)
        return injected

    def reset(self) -> None:
        self._reset_rng()
        self.total_injected = 0


class NOAdversary(_RandomOmissionMixin, OmissionAdversary):
    """Eventually Non-Omissive adversary (Definition 2).

    Behaves like :class:`UOAdversary` during the first ``active_steps``
    scheduled interactions, then stops injecting forever.
    """

    def __init__(
        self,
        model: InteractionModel,
        active_steps: int = 100,
        rate: float = 0.25,
        max_per_gap: int = 3,
        seed: Optional[int] = None,
    ):
        if active_steps < 0:
            raise ValueError("active_steps must be non-negative")
        super().__init__(model=model, seed=seed)
        self.active_steps = active_steps
        self.rate = rate
        self.max_per_gap = max_per_gap
        self.total_injected = 0

    def interactions_before(
        self, step: int, scheduled: Interaction, n: int
    ) -> List[Interaction]:
        if step >= self.active_steps:
            return []
        injected: List[Interaction] = []
        probability = self.rate / (1.0 + self.rate)
        while len(injected) < self.max_per_gap and self._rng.random() < probability:
            injected.append(self._make_omissive_interaction(n))
        self.total_injected += len(injected)
        return injected

    def reset(self) -> None:
        self._reset_rng()
        self.total_injected = 0


class BoundedOmissionAdversary(_RandomOmissionMixin, OmissionAdversary):
    """Adversary with a hard budget of at most ``max_omissions`` injected omissions.

    This is the adversary against which ``SKnO`` is designed: the simulator
    is told an upper bound ``o`` on the number of omissions, and this
    adversary guarantees the bound holds.  The omissions are spread over the
    first part of the execution (one per gap with probability ``rate`` until
    the budget runs out).
    """

    def __init__(
        self,
        model: InteractionModel,
        max_omissions: int,
        rate: float = 0.5,
        seed: Optional[int] = None,
    ):
        if max_omissions < 0:
            raise ValueError("max_omissions must be non-negative")
        super().__init__(model=model, seed=seed)
        self.max_omissions = max_omissions
        self.rate = rate
        self.total_injected = 0

    def interactions_before(
        self, step: int, scheduled: Interaction, n: int
    ) -> List[Interaction]:
        if self.total_injected >= self.max_omissions:
            return []
        if self._rng.random() >= self.rate:
            return []
        self.total_injected += 1
        return [self._make_omissive_interaction(n)]

    def reset(self) -> None:
        self._reset_rng()
        self.total_injected = 0


class NO1Adversary(BoundedOmissionAdversary):
    """The NO1 adversary: at most one omission in the entire execution (Definition 2).

    ``inject_at`` pins the scheduled step before which the single omission is
    injected (useful for deterministic attack demonstrations); by default the
    omission is injected before the first scheduled interaction.
    """

    def __init__(
        self,
        model: InteractionModel,
        inject_at: int = 0,
        pair: Optional[Tuple[int, int]] = None,
        seed: Optional[int] = None,
    ):
        super().__init__(model=model, max_omissions=1, rate=1.0, seed=seed)
        self.inject_at = inject_at
        self.pair = pair

    def interactions_before(
        self, step: int, scheduled: Interaction, n: int
    ) -> List[Interaction]:
        if self.total_injected >= 1 or step != self.inject_at:
            return []
        self.total_injected += 1
        if self.pair is not None:
            starter, reactor = self.pair
            omission = self._rng.choice(self._omissive_kinds)
            return [Interaction(starter, reactor, omission=omission)]
        return [self._make_omissive_interaction(n)]
