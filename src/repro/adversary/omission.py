"""Online omission adversaries (Definitions 1 and 2).

The paper's adversaries are run rewriters: they take a run ``I`` and output
a new run obtained by inserting finite sequences of *omissive* interactions
between consecutive interactions of ``I``.  The crucial point is that the
original interactions are untouched — the adversary can only add omissive
noise, not suppress the fair schedule.

Here the adversaries are implemented *online*: before each scheduled
interaction, the engine asks the adversary for the (possibly empty) list of
omissive interactions to inject.  This is exactly the rewriting of
Definitions 1 and 2, applied lazily to whatever run the scheduler is
producing.

* :class:`UOAdversary` — the Unfair Omissive adversary: may keep inserting
  omissions forever.
* :class:`NOAdversary` — the Eventually Non-Omissive adversary: inserts
  omissions only before finitely many scheduled interactions.
* :class:`NO1Adversary` — inserts at most one omissive interaction in the
  entire execution.
* :class:`BoundedOmissionAdversary` — inserts at most ``o`` omissive
  interactions; this realises the "known upper bound on the number of
  omissions" assumption of Theorem 4.1.

The budget-aware batched protocol
---------------------------------

Adversaries speak two protocols:

* :meth:`OmissionAdversary.interactions_before` — the per-step protocol:
  the injections for one scheduled interaction, called once per scheduled
  draw.  The engine truncates the returned list to the remaining step
  budget (reserving one unit for the scheduled interaction itself).
* :meth:`OmissionAdversary.plan_interactions` — the budget-aware batched
  protocol: given a whole *chunk* of scheduled draws and the remaining
  step budget, the adversary returns a :class:`ChunkPlan` — the exact
  execution order (injections interleaved before their scheduled
  interaction) with the budget truncation already applied.

The two are **provably interchangeable**: for any chunking of the
scheduled stream, concatenating the chunk plans yields exactly the
interaction sequence of the per-step interleaving, and leaves the
adversary in the identical internal state (RNG position, omission
budget).  Three rules make that hold (pinned by
``tests/test_adversary_batching.py``):

1. injections execute *before* their scheduled interaction, in the order
   the adversary produced them;
2. an injection that would leave no budget for its scheduled interaction
   is **discarded but still consumes the adversary's own omission budget
   and RNG stream** — exactly as a finite execution prefix truncates the
   rewritten run of Definitions 1 and 2 without changing the rewriter;
3. a scheduled interaction is consumed only while at least one unit of
   budget remains; the walk stops (``ChunkPlan.consumed`` short) the
   moment the budget cannot cover another scheduled interaction, leaving
   the adversary exactly where the per-step loop would have left it.

The base-class implementation walks the chunk gap by gap through
:meth:`interactions_before`, so any subclass (or duck-typed adversary)
gets a correct batched protocol for free; the concrete adversaries
override it with vectorized walks that hoist the per-gap method call,
attribute lookups and empty-list allocations out of the loop — and skip
RNG work entirely on the pass-through stretches where they can prove no
injection is possible (``NOAdversary`` past ``active_steps``,
``BoundedOmissionAdversary`` with an exhausted budget, ``NO1Adversary``
away from ``inject_at``).

The content-free schedule protocol (array lowering)
---------------------------------------------------

:meth:`OmissionAdversary.plan_chunk_schedule` is the third protocol, the
one the columnar array backend compiles against.  It exploits the fact
that none of the catalog adversaries ever *read* the scheduled
interaction they are injecting before — their decisions depend only on
the step index, their own RNG and their budgets.  The schedule therefore
needs no scheduled draws at all: given ``(step, count, n, budget)`` it
returns an :class:`InjectionSchedule` — gap positions plus the kept
injections — that the backend merges into the scheduler's index arrays
with one vectorized ``np.insert``.  The contract is exact equivalence
with :meth:`~OmissionAdversary.plan_interactions` on any ``count``
scheduled draws: same kept/discarded/consumed arithmetic, same RNG
consumption order, same end state bit for bit (pinned by
``tests/test_array_adversary_equivalence.py``).

:meth:`OmissionAdversary.plan_chunk_schedule_columns` is the same
protocol in columnar form — raw ``starters``/``reactors``/``kinds``
index lists instead of :class:`~repro.scheduling.runs.Interaction`
objects (:class:`ColumnSchedule`).  It exists purely for speed: the
array backend consumes hundreds of thousands of injections per second,
and both the namedtuple allocation and ``random.Random``'s
``randrange``/``choice`` wrapper layers dominate that budget.  The
concrete adversaries override it with walks that draw the *identical*
entropy (``getrandbits`` with the same rejection sampling CPython's
``Random._randbelow`` performs) straight into flat lists, so the RNG end
state stays bit-for-bit equal to the object-producing protocols — the
columns/schedule agreement is pinned by the same equivalence suite.
"""

from __future__ import annotations

import random
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.interaction.models import InteractionModel
from repro.interaction.omissions import Omission
from repro.scheduling.runs import Interaction


class ChunkPlan(NamedTuple):
    """The execution plan an adversary returns for one chunk of scheduled draws.

    ``interactions`` is the exact execution order: for each consumed
    scheduled interaction, its (budget-truncated) injections followed by
    the scheduled interaction itself.  ``consumed`` is how many of the
    chunk's scheduled interactions the plan covers — short of the chunk
    length exactly when the step budget ran out mid-chunk, in which case
    ``len(interactions) == budget`` and the run is over.  ``discarded``
    counts injections dropped by budget truncation (they still consumed
    the adversary's own omission budget, rule 2 of the protocol).
    """

    interactions: List[Interaction]
    consumed: int
    discarded: int


class InjectionSchedule(NamedTuple):
    """An adversary chunk plan without the scheduled draws: just the injections.

    Equivalent information to :class:`ChunkPlan` for adversaries that never
    inspect the scheduled interactions (every catalog adversary):
    ``positions[i]`` is the chunk-local scheduled-gap index (``< consumed``)
    whose scheduled interaction ``injections[i]`` executes *before*;
    repeated positions keep their list order.  Only kept injections are
    listed — ``discarded`` counts the ones budget truncation dropped (they
    still consumed the adversary's omission budget and RNG stream, rule 2
    of the batched protocol) — so the executed chunk has exactly
    ``len(injections) + consumed`` interactions, never more than the step
    budget.  Producing a schedule advances the adversary (RNG position,
    omission budget) exactly as planning the same chunk through
    :meth:`OmissionAdversary.plan_interactions` would.
    """

    positions: List[int]
    injections: List[Interaction]
    consumed: int
    discarded: int


class ColumnSchedule(NamedTuple):
    """An :class:`InjectionSchedule` in columnar form, for the array backend.

    ``starters[i]``/``reactors[i]`` are the agent indices of kept injection
    ``i`` and ``kinds[i]`` the index of its omission kind in the adversary's
    admissible-omissive-kind tuple (the order of
    ``model.admissible_omissions()`` restricted to omissive kinds — the same
    order the backend's transition-table stack rows follow).  ``positions``,
    ``consumed`` and ``discarded`` mean exactly what they do on
    :class:`InjectionSchedule`, and producing a column schedule advances the
    adversary's RNG and budgets identically.
    """

    positions: List[int]
    starters: List[int]
    reactors: List[int]
    kinds: List[int]
    consumed: int
    discarded: int


def _schedule_to_columns(
    schedule: InjectionSchedule, kind_index: dict
) -> ColumnSchedule:
    """Rewrite an :class:`InjectionSchedule` in columnar form (the generic
    fallback behind :meth:`OmissionAdversary.plan_chunk_schedule_columns`)."""
    starters: List[int] = []
    reactors: List[int] = []
    kinds: List[int] = []
    for interaction in schedule.injections:
        starters.append(interaction.starter)
        reactors.append(interaction.reactor)
        kinds.append(kind_index[interaction.omission])
    return ColumnSchedule(schedule.positions, starters, reactors, kinds,
                          schedule.consumed, schedule.discarded)


#: The scheduled-interaction stand-in the reference schedule walk feeds to
#: ``interactions_before``.  Legitimate because the schedule protocol is
#: only defined for adversaries that never read the scheduled interaction's
#: content (see :meth:`OmissionAdversary.plan_chunk_schedule`).
_SCHEDULE_PLACEHOLDER = Interaction(0, 1)


def plan_interactions_per_step(
    adversary, step: int, scheduled: Sequence[Interaction], n: int,
    budget: Optional[int] = None,
) -> ChunkPlan:
    """The reference batched walk, in terms of the per-step protocol.

    Reproduces the per-step interleaving for a chunk of scheduled draws:
    consult ``adversary.interactions_before`` once per gap (advancing the
    adversary exactly as the per-step loop would), truncate the injections
    to the remaining budget with one unit reserved for the scheduled
    interaction, and stop consuming scheduled interactions once the budget
    cannot cover another one.  Correct for **any** object implementing
    ``interactions_before`` — this is both the default implementation of
    :meth:`OmissionAdversary.plan_interactions` and the engine's fallback
    for duck-typed adversaries that predate the batched protocol.
    """
    interactions: List[Interaction] = []
    consumed = 0
    discarded = 0
    remaining = budget
    for scheduled_interaction in scheduled:
        if remaining is not None and remaining < 1:
            break
        injected = adversary.interactions_before(
            step=step + consumed, scheduled=scheduled_interaction, n=n)
        kept = len(injected)
        if remaining is not None and kept >= remaining:
            kept = remaining - 1
            discarded += len(injected) - kept
            injected = injected[:kept]
        interactions.extend(injected)
        interactions.append(scheduled_interaction)
        consumed += 1
        if remaining is not None:
            remaining -= kept + 1
    return ChunkPlan(interactions, consumed, discarded)


class OmissionAdversary:
    """Base class: decides which omissive interactions to inject before each scheduled one."""

    def interactions_before(
        self, step: int, scheduled: Interaction, n: int
    ) -> List[Interaction]:
        """The omissive interactions to execute just before the ``step``-th scheduled one."""
        raise NotImplementedError

    def plan_interactions(
        self, step: int, scheduled: Sequence[Interaction], n: int,
        budget: Optional[int] = None,
    ) -> ChunkPlan:
        """Budget-aware batched protocol: plan a whole chunk of scheduled draws.

        ``scheduled`` holds the scheduler's draws for the scheduled steps
        ``step .. step + len(scheduled) - 1``; ``budget`` is the number of
        interactions the engine may still execute (``None`` = unlimited).
        Returns the :class:`ChunkPlan` equivalent to consulting
        :meth:`interactions_before` before each scheduled interaction under
        the per-step budget rules — see the module docstring for the exact
        contract.  Subclasses override this with vectorized walks; the
        default delegates to :func:`plan_interactions_per_step`.
        """
        return plan_interactions_per_step(self, step, scheduled, n, budget)

    def plan_chunk_schedule(
        self, step: int, count: int, n: int, budget: Optional[int] = None,
    ) -> InjectionSchedule:
        """Content-free batched protocol: plan a chunk without its draws.

        Valid only for adversaries whose :meth:`interactions_before` never
        reads the ``scheduled`` interaction's content (true of every
        catalog adversary) — the default implementation replays the
        reference walk of :func:`plan_interactions_per_step` against a
        placeholder, consuming RNG and budgets identically.  Returns the
        :class:`InjectionSchedule` equivalent to
        ``plan_interactions(step, <any count draws>, n, budget)``.
        """
        positions: List[int] = []
        injections: List[Interaction] = []
        consumed = 0
        discarded = 0
        remaining = budget
        while consumed < count:
            if remaining is not None and remaining < 1:
                break
            injected = self.interactions_before(
                step=step + consumed, scheduled=_SCHEDULE_PLACEHOLDER, n=n)
            kept = len(injected)
            if remaining is not None and kept >= remaining:
                kept = remaining - 1
                discarded += len(injected) - kept
                injected = injected[:kept]
            positions.extend([consumed] * len(injected))
            injections.extend(injected)
            consumed += 1
            if remaining is not None:
                remaining -= kept + 1
        return InjectionSchedule(positions, injections, consumed, discarded)

    def plan_chunk_schedule_columns(
        self, step: int, count: int, n: int, budget: Optional[int] = None,
    ) -> ColumnSchedule:
        """:meth:`plan_chunk_schedule` in columnar form (see the module
        docstring).

        The default derives the columns from :meth:`plan_chunk_schedule`, so
        it is exactly as equivalent (and as fast) as that method; the
        catalog adversaries override it with allocation-free walks that
        consume the identical RNG stream.  Only defined for kinds drawn from
        the adversary's admissible-omissive-kind tuple — which every catalog
        adversary guarantees.
        """
        schedule = self.plan_chunk_schedule(step, count, n, budget)
        kinds = getattr(self, "_omissive_kinds", ())
        kind_index = {kind: index for index, kind in enumerate(kinds)}
        return _schedule_to_columns(schedule, kind_index)

    def reset(self) -> None:
        """Reset internal state (budgets, RNG) so the adversary can be reused."""

    # -- helpers shared by the concrete adversaries ---------------------------------------

    @staticmethod
    def _random_pair(rng: random.Random, n: int) -> Tuple[int, int]:
        starter = rng.randrange(n)
        reactor = rng.randrange(n - 1)
        if reactor >= starter:
            reactor += 1
        return starter, reactor

    @staticmethod
    def _pass_through(
        scheduled: Sequence[Interaction], budget: Optional[int], discarded: int = 0
    ) -> ChunkPlan:
        """A plan that injects nothing: the scheduled chunk, clipped to ``budget``."""
        count = len(scheduled)
        if budget is not None and budget < count:
            count = budget
            scheduled = scheduled[:count]
        return ChunkPlan(list(scheduled), count, discarded)

    @staticmethod
    def _pass_through_schedule(
        count: int, budget: Optional[int], discarded: int = 0
    ) -> InjectionSchedule:
        """A schedule that injects nothing: ``count`` gaps, clipped to ``budget``."""
        if budget is not None and budget < count:
            count = budget
        return InjectionSchedule([], [], count, discarded)

    @staticmethod
    def _pass_through_columns(
        count: int, budget: Optional[int], discarded: int = 0
    ) -> ColumnSchedule:
        """:meth:`_pass_through_schedule` in columnar form."""
        if budget is not None and budget < count:
            count = budget
        return ColumnSchedule([], [], [], [], count, discarded)


class NoOmissionAdversary(OmissionAdversary):
    """The trivial adversary that never injects anything."""

    def interactions_before(
        self, step: int, scheduled: Interaction, n: int
    ) -> List[Interaction]:
        return []

    def plan_interactions(
        self, step: int, scheduled: Sequence[Interaction], n: int,
        budget: Optional[int] = None,
    ) -> ChunkPlan:
        return self._pass_through(scheduled, budget)

    def plan_chunk_schedule(
        self, step: int, count: int, n: int, budget: Optional[int] = None,
    ) -> InjectionSchedule:
        return self._pass_through_schedule(count, budget)

    def plan_chunk_schedule_columns(
        self, step: int, count: int, n: int, budget: Optional[int] = None,
    ) -> ColumnSchedule:
        return self._pass_through_columns(count, budget)


class _RandomOmissionMixin:
    """Shared machinery: choose random pairs and random admissible omission kinds."""

    def __init__(self, model: InteractionModel, seed: Optional[int] = None) -> None:
        self.model = model
        omissive = [o for o in model.admissible_omissions() if o.is_omissive]
        if not omissive:
            raise ValueError(
                f"model {model.name} does not admit omissive interactions; "
                "an omission adversary cannot operate on it"
            )
        self._omissive_kinds: Sequence[Omission] = tuple(omissive)
        self._seed = seed
        self._rng = random.Random(seed)

    def _make_omissive_interaction(self, n: int) -> Interaction:
        starter, reactor = OmissionAdversary._random_pair(self._rng, n)
        omission = self._rng.choice(self._omissive_kinds)
        return Interaction(starter, reactor, omission=omission)

    def _reset_rng(self) -> None:
        self._rng = random.Random(self._seed)

    def _geometric_walk(
        self,
        scheduled: Sequence[Interaction],
        n: int,
        budget: Optional[int],
        plan: List[Interaction],
    ) -> Tuple[int, int, int, Optional[int]]:
        """Vectorized per-gap geometric injection walk (UO/NO adversaries).

        Appends the per-step interleaving for ``scheduled`` to ``plan``,
        drawing ``self._rng`` exactly as repeated ``interactions_before``
        calls would (one ``random()`` per attempted injection, three draws
        per constructed one — constructed even when budget truncation then
        discards it, rule 2 of the protocol).  Reads ``self.rate`` and
        ``self.max_per_gap``.  Returns ``(consumed, discarded, injected,
        remaining_budget)`` so callers can update ``total_injected`` and
        continue past the walk (``NOAdversary`` pass-through tail).
        """
        probability = self.rate / (1.0 + self.rate)
        max_per_gap = self.max_per_gap
        rng_random = self._rng.random
        make = self._make_omissive_interaction
        append = plan.append
        remaining = budget
        consumed = discarded = injected = 0
        for scheduled_interaction in scheduled:
            if remaining is not None and remaining < 1:
                break
            count = 0
            while count < max_per_gap and rng_random() < probability:
                count += 1
                interaction = make(n)
                if remaining is None or count < remaining:
                    append(interaction)
            if remaining is not None:
                kept = count if count < remaining else remaining - 1
                discarded += count - kept
                remaining -= kept + 1
            injected += count
            append(scheduled_interaction)
            consumed += 1
        return consumed, discarded, injected, remaining

    def _geometric_schedule_walk(
        self,
        count: int,
        n: int,
        budget: Optional[int],
        positions: List[int],
        injections: List[Interaction],
    ) -> Tuple[int, int, int, Optional[int]]:
        """:meth:`_geometric_walk` without the scheduled draws.

        Identical RNG consumption and kept/discarded arithmetic, gap for
        gap — only the output form differs: kept injections land in
        ``positions``/``injections`` instead of an interleaved plan.
        Returns ``(consumed, discarded, injected, remaining_budget)``.
        """
        probability = self.rate / (1.0 + self.rate)
        max_per_gap = self.max_per_gap
        rng_random = self._rng.random
        make = self._make_omissive_interaction
        remaining = budget
        consumed = discarded = injected = 0
        while consumed < count:
            if remaining is not None and remaining < 1:
                break
            drawn = 0
            while drawn < max_per_gap and rng_random() < probability:
                drawn += 1
                interaction = make(n)
                if remaining is None or drawn < remaining:
                    positions.append(consumed)
                    injections.append(interaction)
            if remaining is not None:
                kept = drawn if drawn < remaining else remaining - 1
                discarded += drawn - kept
                remaining -= kept + 1
            injected += drawn
            consumed += 1
        return consumed, discarded, injected, remaining

    def _geometric_columns_walk(
        self,
        count: int,
        n: int,
        budget: Optional[int],
        positions: List[int],
        starters: List[int],
        reactors: List[int],
        kinds: List[int],
    ) -> Tuple[int, int, int, Optional[int]]:
        """:meth:`_geometric_schedule_walk` in columnar, allocation-free form.

        Consumes the identical entropy: one ``random()`` per attempted
        injection, then per constructed injection the exact ``getrandbits``
        rejection sampling that CPython's ``Random._randbelow`` performs for
        ``randrange(n)``, ``randrange(n - 1)`` and ``choice(kinds)`` — so
        the RNG end state is bit-for-bit the one the object-producing walks
        leave, while skipping their ``randrange``/``choice`` wrapper frames
        and the :class:`~repro.scheduling.runs.Interaction` allocations
        (which dominate the array backend's injection throughput).
        """
        probability = self.rate / (1.0 + self.rate)
        max_per_gap = self.max_per_gap
        rng = self._rng
        rng_random = rng.random
        getrandbits = rng.getrandbits
        n_bits = n.bit_length()
        shifted = n - 1
        shifted_bits = shifted.bit_length()
        kind_count = len(self._omissive_kinds)
        kind_bits = kind_count.bit_length()
        remaining = budget
        consumed = discarded = injected = 0
        while consumed < count:
            if remaining is not None and remaining < 1:
                break
            drawn = 0
            while drawn < max_per_gap and rng_random() < probability:
                drawn += 1
                starter = getrandbits(n_bits)
                while starter >= n:
                    starter = getrandbits(n_bits)
                reactor = getrandbits(shifted_bits)
                while reactor >= shifted:
                    reactor = getrandbits(shifted_bits)
                if reactor >= starter:
                    reactor += 1
                kind = getrandbits(kind_bits)
                while kind >= kind_count:
                    kind = getrandbits(kind_bits)
                if remaining is None or drawn < remaining:
                    positions.append(consumed)
                    starters.append(starter)
                    reactors.append(reactor)
                    kinds.append(kind)
            if remaining is not None:
                kept = drawn if drawn < remaining else remaining - 1
                discarded += drawn - kept
                remaining -= kept + 1
            injected += drawn
            consumed += 1
        return consumed, discarded, injected, remaining


class UOAdversary(_RandomOmissionMixin, OmissionAdversary):
    """Unfair Omissive adversary: injects omissions forever (Definition 1).

    Before every scheduled interaction it injects a geometrically distributed
    number of omissive interactions with mean ``rate`` (so ``rate = 0.5``
    averages one omission every two scheduled interactions), between random
    pairs and with a random admissible omission kind for the model.
    """

    def __init__(
        self,
        model: InteractionModel,
        rate: float = 0.25,
        max_per_gap: int = 3,
        seed: Optional[int] = None,
    ) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        if max_per_gap < 0:
            raise ValueError("max_per_gap must be non-negative")
        super().__init__(model=model, seed=seed)
        self.rate = rate
        self.max_per_gap = max_per_gap
        self.total_injected = 0

    def interactions_before(
        self, step: int, scheduled: Interaction, n: int
    ) -> List[Interaction]:
        injected: List[Interaction] = []
        probability = self.rate / (1.0 + self.rate)
        while len(injected) < self.max_per_gap and self._rng.random() < probability:
            injected.append(self._make_omissive_interaction(n))
        self.total_injected += len(injected)
        return injected

    def plan_interactions(
        self, step: int, scheduled: Sequence[Interaction], n: int,
        budget: Optional[int] = None,
    ) -> ChunkPlan:
        plan: List[Interaction] = []
        consumed, discarded, injected, _ = self._geometric_walk(scheduled, n, budget, plan)
        self.total_injected += injected
        return ChunkPlan(plan, consumed, discarded)

    def plan_chunk_schedule(
        self, step: int, count: int, n: int, budget: Optional[int] = None,
    ) -> InjectionSchedule:
        positions: List[int] = []
        injections: List[Interaction] = []
        consumed, discarded, injected, _ = self._geometric_schedule_walk(
            count, n, budget, positions, injections)
        self.total_injected += injected
        return InjectionSchedule(positions, injections, consumed, discarded)

    def plan_chunk_schedule_columns(
        self, step: int, count: int, n: int, budget: Optional[int] = None,
    ) -> ColumnSchedule:
        positions: List[int] = []
        starters: List[int] = []
        reactors: List[int] = []
        kinds: List[int] = []
        consumed, discarded, injected, _ = self._geometric_columns_walk(
            count, n, budget, positions, starters, reactors, kinds)
        self.total_injected += injected
        return ColumnSchedule(positions, starters, reactors, kinds,
                              consumed, discarded)

    def reset(self) -> None:
        self._reset_rng()
        self.total_injected = 0


class NOAdversary(_RandomOmissionMixin, OmissionAdversary):
    """Eventually Non-Omissive adversary (Definition 2).

    Behaves like :class:`UOAdversary` during the first ``active_steps``
    scheduled interactions, then stops injecting forever.
    """

    def __init__(
        self,
        model: InteractionModel,
        active_steps: int = 100,
        rate: float = 0.25,
        max_per_gap: int = 3,
        seed: Optional[int] = None,
    ) -> None:
        if active_steps < 0:
            raise ValueError("active_steps must be non-negative")
        super().__init__(model=model, seed=seed)
        self.active_steps = active_steps
        self.rate = rate
        self.max_per_gap = max_per_gap
        self.total_injected = 0

    def interactions_before(
        self, step: int, scheduled: Interaction, n: int
    ) -> List[Interaction]:
        if step >= self.active_steps:
            return []
        injected: List[Interaction] = []
        probability = self.rate / (1.0 + self.rate)
        while len(injected) < self.max_per_gap and self._rng.random() < probability:
            injected.append(self._make_omissive_interaction(n))
        self.total_injected += len(injected)
        return injected

    def plan_interactions(
        self, step: int, scheduled: Sequence[Interaction], n: int,
        budget: Optional[int] = None,
    ) -> ChunkPlan:
        active = self.active_steps - step
        if active <= 0:
            # Past the active prefix: no injections, no RNG — the whole
            # chunk is a pass-through (this is where NO runs regain the
            # full adversary-free batching speed).
            return self._pass_through(scheduled, budget)
        head = scheduled[:active]
        plan: List[Interaction] = []
        consumed, discarded, injected, remaining = self._geometric_walk(
            head, n, budget, plan)
        self.total_injected += injected
        tail = scheduled[active:]
        if tail and consumed == len(head):
            passthrough = self._pass_through(tail, remaining)
            plan.extend(passthrough.interactions)
            consumed += passthrough.consumed
        return ChunkPlan(plan, consumed, discarded)

    def plan_chunk_schedule(
        self, step: int, count: int, n: int, budget: Optional[int] = None,
    ) -> InjectionSchedule:
        active = self.active_steps - step
        if active <= 0:
            return self._pass_through_schedule(count, budget)
        head = active if active < count else count
        positions: List[int] = []
        injections: List[Interaction] = []
        consumed, discarded, injected, remaining = self._geometric_schedule_walk(
            head, n, budget, positions, injections)
        self.total_injected += injected
        tail = count - head
        if tail and consumed == head:
            passthrough = self._pass_through_schedule(tail, remaining)
            consumed += passthrough.consumed
        return InjectionSchedule(positions, injections, consumed, discarded)

    def plan_chunk_schedule_columns(
        self, step: int, count: int, n: int, budget: Optional[int] = None,
    ) -> ColumnSchedule:
        active = self.active_steps - step
        if active <= 0:
            return self._pass_through_columns(count, budget)
        head = active if active < count else count
        positions: List[int] = []
        starters: List[int] = []
        reactors: List[int] = []
        kinds: List[int] = []
        consumed, discarded, injected, remaining = self._geometric_columns_walk(
            head, n, budget, positions, starters, reactors, kinds)
        self.total_injected += injected
        tail = count - head
        if tail and consumed == head:
            passthrough = self._pass_through_columns(tail, remaining)
            consumed += passthrough.consumed
        return ColumnSchedule(positions, starters, reactors, kinds,
                              consumed, discarded)

    def reset(self) -> None:
        self._reset_rng()
        self.total_injected = 0


class BoundedOmissionAdversary(_RandomOmissionMixin, OmissionAdversary):
    """Adversary with a hard budget of at most ``max_omissions`` injected omissions.

    This is the adversary against which ``SKnO`` is designed: the simulator
    is told an upper bound ``o`` on the number of omissions, and this
    adversary guarantees the bound holds.  The omissions are spread over the
    first part of the execution (one per gap with probability ``rate`` until
    the budget runs out).
    """

    def __init__(
        self,
        model: InteractionModel,
        max_omissions: int,
        rate: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        if max_omissions < 0:
            raise ValueError("max_omissions must be non-negative")
        super().__init__(model=model, seed=seed)
        self.max_omissions = max_omissions
        self.rate = rate
        self.total_injected = 0

    def interactions_before(
        self, step: int, scheduled: Interaction, n: int
    ) -> List[Interaction]:
        if self.total_injected >= self.max_omissions:
            return []
        if self._rng.random() >= self.rate:
            return []
        self.total_injected += 1
        return [self._make_omissive_interaction(n)]

    def plan_interactions(
        self, step: int, scheduled: Sequence[Interaction], n: int,
        budget: Optional[int] = None,
    ) -> ChunkPlan:
        total = self.total_injected
        max_omissions = self.max_omissions
        if total >= max_omissions:
            # Omission budget spent: the rest of the run is a pass-through
            # with no RNG consumption (matches the per-step early return).
            return self._pass_through(scheduled, budget)
        rate = self.rate
        rng_random = self._rng.random
        make = self._make_omissive_interaction
        plan: List[Interaction] = []
        append = plan.append
        remaining = budget
        consumed = discarded = 0
        index = 0
        count = len(scheduled)
        while index < count and total < max_omissions:
            if remaining is not None and remaining < 1:
                self.total_injected = total
                return ChunkPlan(plan, consumed, discarded)
            scheduled_interaction = scheduled[index]
            index += 1
            if rng_random() < rate:
                total += 1
                interaction = make(n)
                if remaining is None or remaining >= 2:
                    append(interaction)
                    if remaining is not None:
                        remaining -= 1
                else:
                    discarded += 1
            append(scheduled_interaction)
            consumed += 1
            if remaining is not None:
                remaining -= 1
        self.total_injected = total
        if index < count:
            passthrough = self._pass_through(scheduled[index:], remaining)
            plan.extend(passthrough.interactions)
            consumed += passthrough.consumed
        return ChunkPlan(plan, consumed, discarded)

    def plan_chunk_schedule(
        self, step: int, count: int, n: int, budget: Optional[int] = None,
    ) -> InjectionSchedule:
        total = self.total_injected
        max_omissions = self.max_omissions
        if total >= max_omissions:
            return self._pass_through_schedule(count, budget)
        rate = self.rate
        rng_random = self._rng.random
        make = self._make_omissive_interaction
        positions: List[int] = []
        injections: List[Interaction] = []
        remaining = budget
        consumed = discarded = 0
        gap = 0
        while gap < count and total < max_omissions:
            if remaining is not None and remaining < 1:
                self.total_injected = total
                return InjectionSchedule(positions, injections, consumed, discarded)
            gap += 1
            if rng_random() < rate:
                total += 1
                interaction = make(n)
                if remaining is None or remaining >= 2:
                    positions.append(consumed)
                    injections.append(interaction)
                    if remaining is not None:
                        remaining -= 1
                else:
                    discarded += 1
            consumed += 1
            if remaining is not None:
                remaining -= 1
        self.total_injected = total
        if gap < count:
            passthrough = self._pass_through_schedule(count - gap, remaining)
            consumed += passthrough.consumed
        return InjectionSchedule(positions, injections, consumed, discarded)

    def reset(self) -> None:
        self._reset_rng()
        self.total_injected = 0


class NO1Adversary(BoundedOmissionAdversary):
    """The NO1 adversary: at most one omission in the entire execution (Definition 2).

    ``inject_at`` pins the scheduled step before which the single omission is
    injected (useful for deterministic attack demonstrations); by default the
    omission is injected before the first scheduled interaction.
    """

    def __init__(
        self,
        model: InteractionModel,
        inject_at: int = 0,
        pair: Optional[Tuple[int, int]] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(model=model, max_omissions=1, rate=1.0, seed=seed)
        self.inject_at = inject_at
        self.pair = pair

    def interactions_before(
        self, step: int, scheduled: Interaction, n: int
    ) -> List[Interaction]:
        if self.total_injected >= 1 or step != self.inject_at:
            return []
        self.total_injected += 1
        if self.pair is not None:
            starter, reactor = self.pair
            omission = self._rng.choice(self._omissive_kinds)
            return [Interaction(starter, reactor, omission=omission)]
        return [self._make_omissive_interaction(n)]

    def plan_interactions(
        self, step: int, scheduled: Sequence[Interaction], n: int,
        budget: Optional[int] = None,
    ) -> ChunkPlan:
        if self.total_injected >= 1 or not (
            step <= self.inject_at < step + len(scheduled)
        ):
            # The single omission is spent or pinned outside this chunk:
            # pure pass-through, no RNG.  (inject_at < step can only mean
            # "spent or unreachable" since scheduled steps never rewind.)
            return self._pass_through(scheduled, budget)
        # The pinned gap is inside the chunk; the reference walk consults
        # interactions_before per gap, which is exactly NO1's semantics
        # (and costs one method call per gap on at most one chunk per run).
        return plan_interactions_per_step(self, step, scheduled, n, budget)

    def plan_chunk_schedule(
        self, step: int, count: int, n: int, budget: Optional[int] = None,
    ) -> InjectionSchedule:
        if self.total_injected >= 1 or not (
            step <= self.inject_at < step + count
        ):
            return self._pass_through_schedule(count, budget)
        # interactions_before never reads its scheduled argument, so the
        # base reference schedule walk applies verbatim (and pays its
        # per-gap method call on at most one chunk per run).
        return OmissionAdversary.plan_chunk_schedule(self, step, count, n, budget)
