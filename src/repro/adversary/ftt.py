"""Transition Time and Fastest Transition Time (Definitions 6 and 7).

For a simulator ``S``, a simulated protocol ``P`` and a two-agent initial
configuration ``C0``, the Transition Time of an execution is the first
instant at which *both* agents' simulated states have reached
``delta_P(pi_P(C0[0]), pi_P(C0[1]))``; the Fastest Transition Time (FTT) is
the minimum Transition Time over all omission-free runs.  FTT is the
"maximum speed" of a simulator and — this is the point of Lemma 1 — also the
number of omissions that suffices to fool it.

FTT is computed here by breadth-first search over two-agent configurations:
from each configuration the only two possible non-omissive interactions are
``(0, 1)`` and ``(1, 0)``, so the search is a binary-branching BFS whose
depth is the FTT.  The search also returns a witness run achieving it, which
is the run ``I`` that the Lemma 1 construction starts from.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.interaction.models import InteractionModel
from repro.interaction.omissions import NO_OMISSION
from repro.protocols.state import Configuration, State
from repro.scheduling.runs import Interaction, Run


class FTTSearchError(Exception):
    """Raised when the FTT search cannot complete (e.g. depth limit reached)."""


@dataclass
class FTTResult:
    """Outcome of a Fastest Transition Time search."""

    ftt: int
    witness: Run
    initial_configuration: Configuration
    target: Tuple[State, State]
    explored_configurations: int

    def __str__(self) -> str:
        return f"FTT={self.ftt} (explored {self.explored_configurations} configurations)"


def _project_pair(simulator: Any, configuration: Configuration) -> Tuple[State, State]:
    project = getattr(simulator, "project", None)
    if project is None:
        return configuration[0], configuration[1]
    return project(configuration[0]), project(configuration[1])


def transition_time(
    simulator: Any,
    model: InteractionModel,
    initial_configuration: Configuration,
    run: Run,
) -> Optional[int]:
    """The Transition Time of a specific two-agent run (``None`` if it never transitions).

    ``simulator`` must expose ``project`` and ``protocol`` (all simulators
    of :mod:`repro.core` do); the run is executed verbatim, omissive
    interactions included.
    """
    if len(initial_configuration) != 2:
        raise ValueError("transition time is defined for two-agent systems")
    protocol = simulator.protocol
    q0, q1 = _project_pair(simulator, initial_configuration)
    target = protocol.delta(q0, q1)

    configuration = initial_configuration
    if _project_pair(simulator, configuration) == target:
        return 0
    for index, interaction in enumerate(run):
        starter_pre = configuration[interaction.starter]
        reactor_pre = configuration[interaction.reactor]
        starter_post, reactor_post = model.apply(
            simulator, starter_pre, reactor_pre, interaction.omission
        )
        configuration = configuration.apply_interaction(
            interaction.starter, interaction.reactor, starter_post, reactor_post
        )
        if _project_pair(simulator, configuration) == target:
            return index + 1
    return None


def fastest_transition_time(
    simulator: Any,
    model: InteractionModel,
    initial_configuration: Configuration,
    max_depth: int = 64,
) -> FTTResult:
    """Compute the FTT of ``(S, P, C0)`` by BFS over omission-free two-agent runs.

    Raises :class:`FTTSearchError` when no omission-free run of length at
    most ``max_depth`` completes a simulated interaction — for a correct
    simulator this only happens when ``max_depth`` is set too low (or when
    the simulated pair of states is silent, in which case the FTT is 0 and
    is returned immediately).
    """
    if len(initial_configuration) != 2:
        raise ValueError("FTT is defined for two-agent systems")
    protocol = simulator.protocol
    q0, q1 = _project_pair(simulator, initial_configuration)
    target = protocol.delta(q0, q1)

    if _project_pair(simulator, initial_configuration) == target:
        return FTTResult(
            ftt=0,
            witness=Run(),
            initial_configuration=initial_configuration,
            target=target,
            explored_configurations=1,
        )

    moves = (Interaction(0, 1, NO_OMISSION), Interaction(1, 0, NO_OMISSION))
    queue = deque([(initial_configuration, ())])
    visited = {initial_configuration}
    explored = 1

    while queue:
        configuration, path = queue.popleft()
        if len(path) >= max_depth:
            continue
        for interaction in moves:
            starter_pre = configuration[interaction.starter]
            reactor_pre = configuration[interaction.reactor]
            starter_post, reactor_post = model.apply(
                simulator, starter_pre, reactor_pre, interaction.omission
            )
            successor = configuration.apply_interaction(
                interaction.starter, interaction.reactor, starter_post, reactor_post
            )
            if successor in visited:
                continue
            visited.add(successor)
            explored += 1
            new_path = path + (interaction,)
            if _project_pair(simulator, successor) == target:
                return FTTResult(
                    ftt=len(new_path),
                    witness=Run(new_path),
                    initial_configuration=initial_configuration,
                    target=target,
                    explored_configurations=explored,
                )
            queue.append((successor, new_path))

    raise FTTSearchError(
        f"no omission-free run of length <= {max_depth} completes a simulated "
        f"two-way interaction from projections ({q0!r}, {q1!r})"
    )
