"""Omission adversaries and the attack constructions of Section 3.

This subpackage contains:

* the online omission adversaries corresponding to the paper's Definitions 1
  and 2: the malignant :class:`UOAdversary` (may insert omissions forever),
  the benign :class:`NOAdversary` (eventually stops), the extremely limited
  :class:`NO1Adversary` (at most one omission) and a generic
  :class:`BoundedOmissionAdversary` (at most ``o`` omissions — the assumption
  under which the ``SKnO`` simulator of Theorem 4.1 operates);
* the Fastest Transition Time (FTT, Definition 7) breadth-first search;
* the scripted attack-run constructions used by the impossibility proofs:
  :class:`Lemma1Construction` (Lemma 1 / Theorems 3.1 and 3.3) and the
  Theorem 3.2 demonstration for the weak models ``T1``/``I1``/``I2``.
"""

from repro.adversary.omission import (
    ChunkPlan,
    OmissionAdversary,
    NoOmissionAdversary,
    UOAdversary,
    NOAdversary,
    NO1Adversary,
    BoundedOmissionAdversary,
    plan_interactions_per_step,
)
from repro.adversary.ftt import FTTResult, fastest_transition_time, transition_time
from repro.adversary.constructions import (
    Lemma1Construction,
    Lemma1Result,
    no1_liveness_attack,
    NO1AttackResult,
)

__all__ = [
    "ChunkPlan",
    "OmissionAdversary",
    "plan_interactions_per_step",
    "NoOmissionAdversary",
    "UOAdversary",
    "NOAdversary",
    "NO1Adversary",
    "BoundedOmissionAdversary",
    "FTTResult",
    "fastest_transition_time",
    "transition_time",
    "Lemma1Construction",
    "Lemma1Result",
    "no1_liveness_attack",
    "NO1AttackResult",
]
