"""Attack-run constructions from the impossibility proofs of Section 3.

Two artifacts are provided:

* :class:`Lemma1Construction` — the run ``I*`` of Lemma 1.  Given a
  simulator, a symmetric protocol (the Pairing protocol of Definition 5 in
  all our benchmarks) and an omissive two-way model, it

  1. computes the simulator's Fastest Transition Time ``t`` (Definition 7)
     and a witness two-agent run ``I``;
  2. builds, for every ``k < t``, the auxiliary run ``I_k`` (prefix of ``I``,
     one omissive interaction "detected on d1's side", then a fair
     omission-free extension until the consumer-side agent commits its
     simulated transition);
  3. splices the ``I_k`` into the ``2t + 2``-agent run ``I*`` of the paper
     (Figure 2), with exactly ``t`` omissive interactions;
  4. executes ``I*`` and reports how many agents transitioned from ``q1`` to
     ``q1'`` — at least ``t + 1``, violating the safety of Pairing since only
     ``t`` producers exist.

  This is the executable content of Theorems 3.1 and 3.3: *any* simulator is
  fooled by a number of omissions equal to its own FTT.

* :func:`no1_liveness_attack` — the empirical counterpart of Theorem 3.2 for
  the weak models ``T1``/``I1``/``I2``: a *single* omission (the NO1
  adversary) injected while a token is in flight leaves the system unable to
  ever complete a simulated interaction (liveness failure), because those
  models give no agent the detection capability needed to compensate for the
  loss.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.adversary.ftt import FTTResult, fastest_transition_time
from repro.adversary.omission import NO1Adversary
from repro.engine.engine import SimulationEngine
from repro.engine.trace import Trace
from repro.interaction.models import InteractionModel, get_model
from repro.interaction.omissions import Omission
from repro.protocols.state import Configuration, State
from repro.scheduling.runs import Interaction, Run
from repro.scheduling.scheduler import RandomScheduler


class ConstructionError(Exception):
    """Raised when an attack construction cannot be completed."""


# ---------------------------------------------------------------------------------------------
# Lemma 1 (Theorems 3.1 and 3.3)
# ---------------------------------------------------------------------------------------------


@dataclass
class Lemma1Result:
    """Outcome of executing the Lemma 1 run ``I*``."""

    ftt: int
    population: int
    omissions_used: int
    q0: State
    q1: State
    q1_prime: State
    q1_to_q1_prime_transitions: int
    producers: int
    safety_bound: int
    safety_violated: bool
    attack_run: Run
    trace: Trace

    def summary(self) -> str:
        status = "SAFETY VIOLATED" if self.safety_violated else "safety held"
        return (
            f"FTT={self.ftt} n={self.population} omissions={self.omissions_used} "
            f"critical-transitions={self.q1_to_q1_prime_transitions} "
            f"bound={self.safety_bound} -> {status}"
        )


class Lemma1Construction:
    """Build and execute the adversarial run ``I*`` of Lemma 1 against a simulator.

    Parameters
    ----------
    simulator:
        The simulator under attack, presented through the *two-way* program
        interface (wrap one-way simulators with
        :func:`repro.interaction.adapters.one_way_as_two_way`).  It must
        expose ``project`` and ``protocol``.
    model:
        A two-way omissive model, normally ``T3`` (the strongest omissive
        model: impossibility there carries over to every other omissive
        model of Figure 1).
    q0 / q1:
        The two simulated initial states used in the construction; the
        simulated protocol must be symmetric on this pair and
        ``delta(q0, q1)`` must change ``q1``.  For the Pairing protocol,
        ``q0`` is the producer state and ``q1`` the consumer state.
    """

    def __init__(
        self,
        simulator: Any,
        model: InteractionModel,
        q0: State,
        q1: State,
        extension_seed: int = 0,
        max_extension: int = 20_000,
        max_ftt_depth: int = 64,
    ) -> None:
        if not model.allows_omissions or model.one_way:
            raise ConstructionError(
                "Lemma 1 is phrased for the two-way omissive models; use T3 "
                "(impossibility there implies impossibility in every omissive model)"
            )
        self.simulator = simulator
        self.model = model
        self.protocol = simulator.protocol
        if not self.protocol.is_symmetric_on(q0, q1):
            raise ConstructionError(
                f"the simulated protocol must be symmetric on ({q0!r}, {q1!r})"
            )
        if self.protocol.delta(q0, q1)[1] == q1:
            raise ConstructionError(
                f"delta({q0!r}, {q1!r}) leaves {q1!r} unchanged; the construction "
                "needs an interaction that changes the q1-side agent"
            )
        self.q0 = q0
        self.q1 = q1
        self.q1_prime = self.protocol.delta(q0, q1)[1]
        self.extension_seed = extension_seed
        self.max_extension = max_extension
        self.max_ftt_depth = max_ftt_depth

        self._two_agent_c0 = Configuration(
            [simulator.initial_state(q0), simulator.initial_state(q1)]
        )
        self._engine = SimulationEngine(
            simulator, model, scheduler=RandomScheduler(2, seed=extension_seed)
        )

    # -- building blocks -------------------------------------------------------------------------

    def compute_ftt(self) -> FTTResult:
        """The simulator's FTT from (q0, q1), with a witness run ``I``."""
        return fastest_transition_time(
            self.simulator,
            self.model,
            self._two_agent_c0,
            max_depth=self.max_ftt_depth,
        )

    def _apply(self, configuration: Configuration, interaction: Interaction) -> Configuration:
        return self._engine.execute_interaction(configuration, interaction)

    def _d1_projection(self, configuration: Configuration) -> State:
        return self.simulator.project(configuration[1])

    def build_ik(self, witness: Run, k: int) -> Tuple[Run, int]:
        """Build ``I_k`` and its commit time ``t_k`` (Lemma 1, first paragraph of the proof).

        ``I_k`` copies the first ``k`` interactions of the witness run, appends
        one omissive interaction with the same starter as ``I[k]`` and the
        omission detected on agent ``d1``'s side, then extends the run fairly
        (and without further omissions) until ``d1``'s simulated state becomes
        ``q1'``.
        """
        base = witness[k]
        d1_is_starter = base.starter == 1
        omission = (
            Omission(starter_lost=True) if d1_is_starter else Omission(reactor_lost=True)
        )
        interactions: List[Interaction] = list(witness[:k])
        interactions.append(Interaction(base.starter, base.reactor, omission=omission))

        configuration = self._two_agent_c0
        commit_time: Optional[int] = None
        for index, interaction in enumerate(interactions):
            configuration = self._apply(configuration, interaction)
            if self._d1_projection(configuration) == self.q1_prime:
                commit_time = index + 1
                break

        rng = random.Random(self.extension_seed * 1_000_003 + k)
        while commit_time is None:
            if len(interactions) >= self.max_extension:
                raise ConstructionError(
                    f"I_{k}: the simulator did not commit d1's transition within "
                    f"{self.max_extension} interactions after a single omission; "
                    "it is not resilient to one omission from this configuration"
                )
            pair = (0, 1) if rng.random() < 0.5 else (1, 0)
            interaction = Interaction(*pair)
            interactions.append(interaction)
            configuration = self._apply(configuration, interaction)
            if self._d1_projection(configuration) == self.q1_prime:
                commit_time = len(interactions)
        return Run(interactions), commit_time

    def build_attack_run(self) -> Tuple[Run, FTTResult]:
        """Assemble the full ``2t + 2``-agent run ``I*`` (Figure 2 of the paper)."""
        ftt_result = self.compute_ftt()
        witness = ftt_result.witness
        t = ftt_result.ftt
        if t == 0:
            raise ConstructionError("FTT is 0; nothing to attack")

        generator_a = 2 * t      # the paper's a_{2t}: the extra consumer that gets fooled.
        generator_b = 2 * t + 1  # the paper's a_{2t+1}: the omission "generator".

        attack: List[Interaction] = []
        for k in range(t):
            ik_run, commit_time = self.build_ik(witness, k)
            relabel = {0: 2 * k, 1: 2 * k + 1}

            # (a) replicate the first k interactions of I between the pair.
            attack.extend(interaction.relabel(relabel) for interaction in witness[:k])

            # (b) redirect I[k]: a_{2k} interacts with a_{2t}, keeping d0's role.
            base = witness[k]
            if base.starter == 0:
                attack.append(Interaction(2 * k, generator_a))
            else:
                attack.append(Interaction(generator_a, 2 * k))

            # (c) the omissive interaction between a_{2k+1} and a_{2t+1},
            #     with a_{2k+1} keeping d1's role and the omission on its side.
            if base.starter == 1:
                attack.append(
                    Interaction(2 * k + 1, generator_b, omission=Omission(starter_lost=True))
                )
            else:
                attack.append(
                    Interaction(generator_b, 2 * k + 1, omission=Omission(reactor_lost=True))
                )

            # (d) replicate the remainder of I_k until d1's commit time.
            for interaction in ik_run[k + 1 : commit_time]:
                attack.append(interaction.relabel(relabel))

        return Run(attack), ftt_result

    def initial_configuration(self, t: int) -> Configuration:
        """The configuration ``B0``: agents ``a_{2k}`` start in ``q0``, all others in ``q1``."""
        states = []
        for agent in range(2 * t + 2):
            if agent % 2 == 0 and agent < 2 * t:
                states.append(self.simulator.initial_state(self.q0))
            else:
                states.append(self.simulator.initial_state(self.q1))
        return Configuration(states)

    # -- end-to-end execution ---------------------------------------------------------------------------

    def execute(self) -> Lemma1Result:
        """Build ``I*``, run it, and report the resulting safety violation."""
        attack_run, ftt_result = self.build_attack_run()
        t = ftt_result.ftt
        initial = self.initial_configuration(t)
        engine = SimulationEngine(
            self.simulator, self.model, scheduler=RandomScheduler(len(initial), seed=0)
        )
        trace = engine.replay(initial, attack_run)

        final_projected = trace.final_configuration.project(self.simulator.project)
        transitions = final_projected.count(self.q1_prime)
        producers = t
        return Lemma1Result(
            ftt=t,
            population=len(initial),
            omissions_used=attack_run.omission_count(),
            q0=self.q0,
            q1=self.q1,
            q1_prime=self.q1_prime,
            q1_to_q1_prime_transitions=transitions,
            producers=producers,
            safety_bound=producers,
            safety_violated=transitions > producers,
            attack_run=attack_run,
            trace=trace,
        )


# ---------------------------------------------------------------------------------------------
# Theorem 3.2 (NO1 adversary in T1 / I1 / I2)
# ---------------------------------------------------------------------------------------------


@dataclass
class NO1AttackResult:
    """Outcome of the single-omission attack in a weak omission model."""

    model_name: str
    omissions_used: int
    steps_executed: int
    expected_committed: int
    committed: int
    liveness_violated: bool
    safety_violated: bool
    trace: Trace

    def summary(self) -> str:
        if self.safety_violated:
            status = "SAFETY VIOLATED"
        elif self.liveness_violated:
            status = "LIVENESS VIOLATED (stalled)"
        else:
            status = "simulation survived"
        return (
            f"{self.model_name}: omissions={self.omissions_used} "
            f"committed={self.committed}/{self.expected_committed} "
            f"steps={self.steps_executed} -> {status}"
        )


def no1_liveness_attack(
    simulator: Any,
    model_name: str,
    target_state: State,
    expected_committed: int,
    initial_p_configuration: Configuration,
    safety_bound: Optional[int] = None,
    max_steps: int = 40_000,
    seed: int = 0,
) -> NO1AttackResult:
    """Run a simulator in a weak omission model under the NO1 adversary.

    A single omissive interaction is injected at the very beginning of the
    execution (while the first token is in flight); the rest of the run is a
    long fair random schedule with no further omissions.  The attack checks
    whether, despite the overwhelmingly fair continuation, the simulation
    fails to bring ``expected_committed`` agents into ``target_state``
    (liveness violation) or overshoots ``safety_bound`` (safety violation).

    Per Theorem 3.2, in ``T1``, ``I1`` and ``I2`` a correct simulation after
    the single omission is impossible; for the token-based ``SKnO`` the
    failure mode is a stall, because the lost token can never be detected or
    replaced.
    """
    model = get_model(model_name)
    if not model.allows_omissions:
        raise ConstructionError(f"model {model_name} does not admit omissions")

    program = simulator
    initial = Configuration(
        [simulator.initial_state(p_state) for p_state in initial_p_configuration]
    )
    n = len(initial)
    scheduler = RandomScheduler(n, seed=seed)
    adversary = NO1Adversary(model, inject_at=0, pair=(0, 1), seed=seed)
    engine = SimulationEngine(program, model, scheduler, adversary=adversary)
    trace = engine.run(initial, max_steps=max_steps)

    final_projected = trace.final_configuration.project(simulator.project)
    committed = final_projected.count(target_state)
    liveness_violated = committed < expected_committed
    safety_violated = safety_bound is not None and committed > safety_bound

    return NO1AttackResult(
        model_name=model.name,
        omissions_used=trace.omission_count(),
        steps_executed=len(trace),
        expected_committed=expected_committed,
        committed=committed,
        liveness_violated=liveness_violated,
        safety_violated=safety_violated,
        trace=trace,
    )
