"""The Pairing protocol ``PIP`` (Definition 5 and the paragraph below it).

The Pairing Problem partitions the population into *consumers* (initial
state ``c``) and *producers* (initial state ``p``) and asks that eventually
exactly ``min(|Ac|, |Ap|)`` consumers acquire the irrevocable *critical*
state ``cs``, never exceeding ``|Ap|`` at any time (safety) and never
leaving ``cs`` once entered (irrevocability).

The paper's simple two-way solution has the non-trivial rules::

    (c, p) -> (cs, bot)
    (p, c) -> (bot, cs)

Every impossibility proof in Section 3 uses this protocol as the
counterexample: any omission-tolerant simulator can be fooled into creating
more critical consumers than producers, violating safety.
"""

from __future__ import annotations

from typing import Tuple

from repro.protocols.protocol import PopulationProtocol
from repro.protocols.state import Configuration, State

#: Consumer initial state.
CONSUMER = "c"
#: Producer initial state.
PRODUCER = "p"
#: Irrevocable critical state reachable only by consumers.
CRITICAL = "cs"
#: Spent producer.
BOTTOM = "bot"


class PairingProtocol(PopulationProtocol):
    """Two-way protocol solving the Pairing Problem (paper, Section 3).

    The protocol is symmetric on the pair ``(c, p)``: whichever of the two
    agents acts as starter, the consumer becomes critical and the producer
    becomes spent.  This symmetry is precisely what Lemma 1 requires of its
    counterexample protocol.
    """

    def __init__(self) -> None:
        super().__init__(
            states=[CONSUMER, PRODUCER, CRITICAL, BOTTOM],
            initial_states=[CONSUMER, PRODUCER],
            name="pairing",
        )

    def delta(self, starter: State, reactor: State) -> Tuple[State, State]:
        if (starter, reactor) == (CONSUMER, PRODUCER):
            return CRITICAL, BOTTOM
        if (starter, reactor) == (PRODUCER, CONSUMER):
            return BOTTOM, CRITICAL
        return starter, reactor

    def output(self, state: State) -> bool:
        """Output ``True`` exactly for the critical state."""
        return state == CRITICAL

    def state_order(self) -> Tuple[State, ...]:
        """Canonical interning order for the array engine: Definition 5's listing."""
        return (CONSUMER, PRODUCER, CRITICAL, BOTTOM)

    # -- convenience constructors and checks -------------------------------------------

    @staticmethod
    def initial_configuration(consumers: int, producers: int) -> Configuration:
        """An initial configuration with the given number of consumers and producers."""
        if consumers < 0 or producers < 0:
            raise ValueError("population counts must be non-negative")
        return Configuration([CONSUMER] * consumers + [PRODUCER] * producers)

    @staticmethod
    def critical_count(configuration: Configuration) -> int:
        """Number of agents currently in the critical state ``cs``."""
        return configuration.count(CRITICAL)

    @staticmethod
    def expected_stable_critical(consumers: int, producers: int) -> int:
        """The liveness target ``min(|Ac|, |Ap|)`` of Definition 5."""
        return min(consumers, producers)
