"""Counting protocols: threshold ("flock of birds") and modulo counting.

The threshold protocol is the canonical motivating example of the PP model
(a passively mobile sensor network monitoring how many birds in a flock have
an elevated temperature): the population must decide whether the number of
agents whose input bit is 1 is at least a threshold ``k``.  The modulo
protocol decides whether that count is congruent to ``r`` modulo ``m``.
Together with boolean combinations, these generate all semilinear predicates
(reference [5] of the paper).

States carry bounded counters so both protocols are finite-state, which
keeps them usable as simulation workloads with exhaustively checkable
transition tables.
"""

from __future__ import annotations

from typing import Tuple

from repro.protocols.protocol import PopulationProtocol, ProtocolError
from repro.protocols.state import Configuration, State


class ThresholdProtocol(PopulationProtocol):
    """Decide whether at least ``threshold`` agents started with input 1.

    States are integers ``0 .. threshold`` (the amount of "weight" carried by
    the agent, saturating at ``threshold``) tagged with an output flag.  We
    encode a state as the tuple ``(weight, seen_threshold)``:

    * When two agents meet, the starter transfers its whole weight to the
      reactor, saturating at ``threshold``.
    * The flag ``seen_threshold`` is set on any agent that ever carries the
      saturated weight and is propagated epidemically to all other agents.
    """

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ProtocolError("threshold must be at least 1")
        self.threshold = threshold
        states = [
            (weight, flag)
            for weight in range(threshold + 1)
            for flag in (False, True)
        ]
        initial = [(0, False), (1, False)] if threshold > 1 else [(0, False), (1, True)]
        super().__init__(states=states, initial_states=initial, name=f"threshold-{threshold}")

    def _saturate(self, weight: int) -> int:
        return min(weight, self.threshold)

    def delta(self, starter: State, reactor: State) -> Tuple[State, State]:
        s_weight, s_flag = starter
        r_weight, r_flag = reactor
        total = self._saturate(s_weight + r_weight)
        reached = total >= self.threshold
        flag = s_flag or r_flag or reached
        # The starter hands its weight to the reactor and keeps only the flag.
        new_starter = (0, flag)
        new_reactor = (total, flag)
        return new_starter, new_reactor

    def output(self, state: State) -> bool:
        """``True`` when the agent believes the threshold has been reached."""
        weight, flag = state
        return bool(flag or weight >= self.threshold)

    def state_order(self) -> Tuple[State, ...]:
        """Canonical interning order for the array engine: by weight, then flag."""
        return tuple(
            (weight, flag)
            for weight in range(self.threshold + 1)
            for flag in (False, True)
        )

    def initial_state(self, input_bit: int) -> State:
        """Initial state for an agent whose input bit is 0 or 1."""
        if input_bit not in (0, 1):
            raise ProtocolError("input bit must be 0 or 1")
        weight = input_bit
        return (weight, weight >= self.threshold)

    def initial_configuration(self, ones: int, zeros: int) -> Configuration:
        """Initial configuration with ``ones`` agents holding 1 and ``zeros`` holding 0."""
        return Configuration(
            [self.initial_state(1)] * ones + [self.initial_state(0)] * zeros
        )

    def expected_output(self, ones: int) -> bool:
        """The predicate value the population should stabilise to."""
        return ones >= self.threshold


class ModuloCountingProtocol(PopulationProtocol):
    """Decide whether the number of agents with input 1 is ``target (mod modulus)``.

    States are tuples ``(residue, is_collector)``: a single "collector token"
    accumulates residues modulo ``modulus`` while non-collectors remember the
    last residue they observed from a collector.  For robustness under the
    simple pairwise dynamics we use the standard construction in which every
    agent starts as a collector carrying its own input and collectors merge
    pairwise (one keeps the sum, the other becomes a follower that copies the
    surviving collector's residue).
    """

    def __init__(self, modulus: int = 3, target: int = 0) -> None:
        if modulus < 2:
            raise ProtocolError("modulus must be at least 2")
        if not 0 <= target < modulus:
            raise ProtocolError("target must lie in [0, modulus)")
        self.modulus = modulus
        self.target = target
        states = []
        for residue in range(modulus):
            states.append(("collector", residue))
            states.append(("follower", residue))
        super().__init__(
            states=states,
            initial_states=[("collector", 0), ("collector", 1 % modulus)],
            name=f"mod-{modulus}-eq-{target}",
        )

    def delta(self, starter: State, reactor: State) -> Tuple[State, State]:
        s_kind, s_res = starter
        r_kind, r_res = reactor
        if s_kind == "collector" and r_kind == "collector":
            merged = (s_res + r_res) % self.modulus
            return ("follower", merged), ("collector", merged)
        if s_kind == "collector" and r_kind == "follower":
            return starter, ("follower", s_res)
        # Follower-to-follower and follower-to-collector interactions are
        # silent: followers only ever learn residues from collectors, so once
        # a single collector holding the final residue remains, follower
        # residues converge to it and never change again (stability under GF).
        return starter, reactor

    def output(self, state: State) -> bool:
        """``True`` when the agent's current residue equals the target."""
        _, residue = state
        return residue == self.target

    def state_order(self) -> Tuple[State, ...]:
        """Canonical interning order for the array engine: by residue, then kind."""
        return tuple(
            (kind, residue)
            for residue in range(self.modulus)
            for kind in ("collector", "follower")
        )

    def initial_state(self, input_bit: int) -> State:
        if input_bit not in (0, 1):
            raise ProtocolError("input bit must be 0 or 1")
        return ("collector", input_bit % self.modulus)

    def initial_configuration(self, ones: int, zeros: int) -> Configuration:
        return Configuration(
            [self.initial_state(1)] * ones + [self.initial_state(0)] * zeros
        )

    def expected_output(self, ones: int) -> bool:
        return ones % self.modulus == self.target
