"""One-way epidemic (rumour spreading) protocol.

The simplest possible information-dissemination workload: an *informed*
agent infects any *susceptible* agent it interacts with.  Unlike the other
catalog entries this protocol is natively expressible in the one-way models
(only the reactor needs to change state), so it doubles as a sanity workload
for running native IO/IT protocols directly on the weak models without any
simulator, and as the information-propagation primitive referenced by the
counting and predicate protocols.
"""

from __future__ import annotations

from typing import Tuple

from repro.protocols.protocol import OneWayProtocol, PopulationProtocol
from repro.protocols.state import Configuration, State

SUSCEPTIBLE = "S"
INFORMED = "I"


class EpidemicProtocol(PopulationProtocol):
    """Two-way formulation: ``(I, S) -> (I, I)``, everything else silent."""

    def __init__(self) -> None:
        super().__init__(
            states=[SUSCEPTIBLE, INFORMED],
            initial_states=[SUSCEPTIBLE, INFORMED],
            name="epidemic",
        )

    def delta(self, starter: State, reactor: State) -> Tuple[State, State]:
        if starter == INFORMED and reactor == SUSCEPTIBLE:
            return INFORMED, INFORMED
        return starter, reactor

    def output(self, state: State) -> bool:
        return state == INFORMED

    def state_order(self) -> Tuple[State, ...]:
        """Canonical interning order for the array engine."""
        return (SUSCEPTIBLE, INFORMED)

    @staticmethod
    def initial_configuration(informed: int, susceptible: int) -> Configuration:
        return Configuration([INFORMED] * informed + [SUSCEPTIBLE] * susceptible)

    @staticmethod
    def expected_output(informed: int) -> bool:
        """The stable output: any initially informed agent informs everyone.

        Giving the epidemic the standard ``expected_output`` hook lets the
        registry derive its stable-output criterion as a state-count
        predicate (all agents output this value) instead of the
        non-compilable unanimity fallback.
        """
        return informed > 0

    @staticmethod
    def informed_count(configuration: Configuration) -> int:
        return configuration.count(INFORMED)

    @staticmethod
    def all_informed(configuration: Configuration) -> bool:
        return all(s == INFORMED for s in configuration)


class OneWayEpidemicProtocol(OneWayProtocol):
    """Native one-way (IO-compatible) epidemic: ``f(I, S) = I``, ``g = id``."""

    def __init__(self) -> None:
        super().__init__(
            states=[SUSCEPTIBLE, INFORMED],
            initial_states=[SUSCEPTIBLE, INFORMED],
            name="one-way-epidemic",
        )

    def f(self, starter: State, reactor: State) -> State:
        if starter == INFORMED:
            return INFORMED
        return reactor

    def state_order(self) -> Tuple[State, ...]:
        """Canonical interning order for the array engine."""
        return (SUSCEPTIBLE, INFORMED)
