"""Majority population protocols.

Two classic constructions are provided:

* :class:`ApproximateMajorityProtocol` — the three-state approximate
  majority protocol (Angluin, Aspnes, Eisenstat 2008, reference [6] of the
  paper): states ``A``, ``B`` and the undecided blank ``U``; a decided agent
  converts an undecided one, and two opposite decided agents produce an
  undecided reactor.
* :class:`ExactMajorityProtocol` — the four-state exact majority protocol
  with strong/weak opinions (``A``/``B`` strong, ``a``/``b`` weak): strong
  opposite opinions cancel into weak ones, strong opinions overwrite
  opposite weak ones, so the initial majority (when counts differ) wins in
  every globally fair execution.

Both are standard simulation workloads with outputs, convergence predicates
and easily checkable correctness conditions, making them good end-to-end
tests for the simulators.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.protocols.protocol import PopulationProtocol
from repro.protocols.state import Configuration, State

# Approximate majority states.
A = "A"
B = "B"
UNDECIDED = "U"

# Exact majority weak opinions.
WEAK_A = "a"
WEAK_B = "b"


class ApproximateMajorityProtocol(PopulationProtocol):
    """Three-state approximate majority.

    Non-silent rules (both orientations):

    * ``(A, B) -> (A, U)`` and ``(B, A) -> (B, U)``: a decided starter
      "undecides" an opposite reactor.
    * ``(A, U) -> (A, A)`` and ``(B, U) -> (B, B)``: a decided starter
      recruits an undecided reactor.
    """

    def __init__(self) -> None:
        super().__init__(
            states=[A, B, UNDECIDED],
            initial_states=[A, B, UNDECIDED],
            name="approximate-majority",
        )

    def delta(self, starter: State, reactor: State) -> Tuple[State, State]:
        if starter == A and reactor == B:
            return A, UNDECIDED
        if starter == B and reactor == A:
            return B, UNDECIDED
        if starter == A and reactor == UNDECIDED:
            return A, A
        if starter == B and reactor == UNDECIDED:
            return B, B
        return starter, reactor

    def output(self, state: State) -> Optional[State]:
        """Output the opinion letter, or ``None`` for undecided agents."""
        if state in (A, B):
            return state
        return None

    def state_order(self) -> Tuple[State, ...]:
        """Canonical interning order for the array engine."""
        return (A, B, UNDECIDED)

    @staticmethod
    def initial_configuration(count_a: int, count_b: int, undecided: int = 0) -> Configuration:
        """Initial configuration with the given opinion counts."""
        return Configuration([A] * count_a + [B] * count_b + [UNDECIDED] * undecided)

    @staticmethod
    def is_consensus(configuration: Configuration) -> bool:
        """Whether every agent currently holds the same decided opinion."""
        states = set(configuration.states)
        return states == {A} or states == {B}

    @staticmethod
    def consensus_value(configuration: Configuration) -> Optional[State]:
        """The consensus opinion, or ``None`` if the population has not converged."""
        states = set(configuration.states)
        if states == {A}:
            return A
        if states == {B}:
            return B
        return None


class ExactMajorityProtocol(PopulationProtocol):
    """Four-state exact majority with strong (``A``/``B``) and weak (``a``/``b``) opinions.

    Non-silent rules (applied in both orientations by symmetry of the rule
    table below):

    * ``(A, B) -> (a, b)``: strong opposite opinions cancel.
    * ``(A, b) -> (A, a)`` and ``(B, a) -> (B, b)``: a strong opinion
      converts an opposite weak one.

    Weak-weak interactions are silent.  When the initial counts differ, the
    minority's strong opinions are all cancelled, the surviving majority
    strong agents convert every opposite weak agent, and the population
    stabilises with all agents outputting the initial majority.
    """

    def __init__(self) -> None:
        super().__init__(
            states=[A, B, WEAK_A, WEAK_B],
            initial_states=[A, B],
            name="exact-majority",
        )

    def delta(self, starter: State, reactor: State) -> Tuple[State, State]:
        pair = (starter, reactor)
        if pair == (A, B):
            return WEAK_A, WEAK_B
        if pair == (B, A):
            return WEAK_B, WEAK_A
        if pair == (A, WEAK_B):
            return A, WEAK_A
        if pair == (WEAK_B, A):
            return WEAK_A, A
        if pair == (B, WEAK_A):
            return B, WEAK_B
        if pair == (WEAK_A, B):
            return WEAK_B, B
        return starter, reactor

    def output(self, state: State) -> State:
        """Output the opinion (upper-case letter) currently held by the agent."""
        if state in (A, WEAK_A):
            return A
        return B

    def state_order(self) -> Tuple[State, ...]:
        """Canonical interning order for the array engine: strong then weak."""
        return (A, B, WEAK_A, WEAK_B)

    @staticmethod
    def initial_configuration(count_a: int, count_b: int) -> Configuration:
        """Initial configuration with ``count_a`` strong-A and ``count_b`` strong-B agents."""
        return Configuration([A] * count_a + [B] * count_b)

    @staticmethod
    def majority_opinion(count_a: int, count_b: int) -> Optional[State]:
        """The expected stable output: the initial strict majority, or ``None`` on a tie."""
        if count_a > count_b:
            return A
        if count_b > count_a:
            return B
        return None

    def has_converged_to(self, configuration: Configuration, opinion: State) -> bool:
        """Whether every agent currently outputs ``opinion``."""
        return all(self.output(s) == opinion for s in configuration)
