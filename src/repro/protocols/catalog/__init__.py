"""Catalog of concrete two-way population protocols.

These protocols serve three purposes in the reproduction:

1. They are the *workloads* that the simulators of ``repro.core`` are asked
   to simulate on weak interaction models (Theorems 4.1, 4.5, 4.6).
2. The Pairing protocol is the counterexample used by every impossibility
   proof in Section 3 (Definition 5, Theorems 3.1-3.3).
3. They exercise the plain two-way engine, providing the baseline against
   which simulation overhead is measured.
"""

from typing import TYPE_CHECKING

from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.catalog.leader_election import LeaderElectionProtocol
from repro.protocols.catalog.majority import (
    ApproximateMajorityProtocol,
    ExactMajorityProtocol,
)
from repro.protocols.catalog.counting import ThresholdProtocol, ModuloCountingProtocol
from repro.protocols.catalog.predicates import OrProtocol, AndProtocol, ParityProtocol
from repro.protocols.catalog.averaging import AveragingProtocol
from repro.protocols.catalog.epidemic import EpidemicProtocol

if TYPE_CHECKING:
    from repro.protocols.protocol import PopulationProtocol

#: Registry of catalog protocols by name (factories with default parameters).
#: Process-based fan-out resolves these constructors by key through
#: :mod:`repro.protocols.registry`, so entries must stay importable at
#: module top level (no closures).
CATALOG = {
    "pairing": PairingProtocol,
    "leader-election": LeaderElectionProtocol,
    "approximate-majority": ApproximateMajorityProtocol,
    "exact-majority": ExactMajorityProtocol,
    "threshold": ThresholdProtocol,
    "modulo-counting": ModuloCountingProtocol,
    "or": OrProtocol,
    "and": AndProtocol,
    "parity": ParityProtocol,
    "averaging": AveragingProtocol,
    "epidemic": EpidemicProtocol,
}


def get_protocol(name, **kwargs) -> "PopulationProtocol":
    """Instantiate a catalog protocol by name.

    Parameters are forwarded to the protocol constructor, e.g.
    ``get_protocol("threshold", threshold=5)``.
    """
    try:
        factory = CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(CATALOG))
        raise KeyError(f"unknown protocol {name!r}; known protocols: {known}") from None
    return factory(**kwargs)


__all__ = [
    "PairingProtocol",
    "LeaderElectionProtocol",
    "ApproximateMajorityProtocol",
    "ExactMajorityProtocol",
    "ThresholdProtocol",
    "ModuloCountingProtocol",
    "OrProtocol",
    "AndProtocol",
    "ParityProtocol",
    "AveragingProtocol",
    "EpidemicProtocol",
    "CATALOG",
    "get_protocol",
]
