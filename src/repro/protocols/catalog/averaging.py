"""Integer averaging / load-balancing protocol.

Agents hold bounded integer values; when two agents interact they rebalance
their values as evenly as possible (the starter keeps the ceiling, the
reactor the floor).  The population's total value is invariant, so the
protocol converges to a configuration where all values differ by at most 1.

This protocol exercises simulators on a workload with a *conserved quantity*
— a particularly sensitive correctness check, because any simulator bug that
duplicates or drops a simulated interaction changes the total and is
immediately detectable.
"""

from __future__ import annotations

from typing import Tuple

from repro.protocols.protocol import PopulationProtocol, ProtocolError
from repro.protocols.state import Configuration, State


class AveragingProtocol(PopulationProtocol):
    """Pairwise averaging of integer values in ``[0, max_value]``."""

    def __init__(self, max_value: int = 8) -> None:
        if max_value < 1:
            raise ProtocolError("max_value must be at least 1")
        self.max_value = max_value
        states = list(range(max_value + 1))
        super().__init__(states=states, initial_states=states, name=f"averaging-{max_value}")

    def delta(self, starter: State, reactor: State) -> Tuple[State, State]:
        total = starter + reactor
        high = (total + 1) // 2
        low = total // 2
        return high, low

    def output(self, state: State) -> State:
        return state

    def state_order(self) -> Tuple[State, ...]:
        """Canonical interning order for the array engine: the value itself."""
        return tuple(range(self.max_value + 1))

    @staticmethod
    def total(configuration: Configuration) -> int:
        """The conserved total value of the population."""
        return sum(configuration.states)

    @staticmethod
    def is_balanced(configuration: Configuration) -> bool:
        """Whether all values differ by at most one (the stable outcome)."""
        values = configuration.states
        return max(values) - min(values) <= 1

    @staticmethod
    def initial_configuration(values) -> Configuration:
        return Configuration(values)
