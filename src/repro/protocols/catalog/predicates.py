"""Boolean predicate protocols: OR, AND and parity (XOR).

These tiny protocols compute boolean functions of the agents' input bits and
are useful as fast-converging simulation workloads: OR/AND converge after a
single epidemic, parity needs collector merging.  They also provide easily
verifiable end-to-end outputs for the simulator integration tests.
"""

from __future__ import annotations

from typing import Tuple

from repro.protocols.catalog.counting import ModuloCountingProtocol
from repro.protocols.protocol import PopulationProtocol
from repro.protocols.state import Configuration, State


class OrProtocol(PopulationProtocol):
    """Compute the OR of the input bits: state 1 spreads epidemically."""

    def __init__(self) -> None:
        super().__init__(states=[0, 1], initial_states=[0, 1], name="or")

    def delta(self, starter: State, reactor: State) -> Tuple[State, State]:
        if starter == 1 and reactor == 0:
            return 1, 1
        return starter, reactor

    def output(self, state: State) -> bool:
        return bool(state)

    def state_order(self) -> Tuple[State, ...]:
        """Canonical interning order for the array engine."""
        return (0, 1)

    @staticmethod
    def initial_configuration(ones: int, zeros: int) -> Configuration:
        return Configuration([1] * ones + [0] * zeros)

    @staticmethod
    def expected_output(ones: int) -> bool:
        return ones > 0


class AndProtocol(PopulationProtocol):
    """Compute the AND of the input bits: state 0 spreads epidemically."""

    def __init__(self) -> None:
        super().__init__(states=[0, 1], initial_states=[0, 1], name="and")

    def delta(self, starter: State, reactor: State) -> Tuple[State, State]:
        if starter == 0 and reactor == 1:
            return 0, 0
        return starter, reactor

    def output(self, state: State) -> bool:
        return bool(state)

    def state_order(self) -> Tuple[State, ...]:
        """Canonical interning order for the array engine."""
        return (0, 1)

    @staticmethod
    def initial_configuration(ones: int, zeros: int) -> Configuration:
        return Configuration([1] * ones + [0] * zeros)

    @staticmethod
    def expected_output(ones: int, zeros: int) -> bool:
        return zeros == 0


class ParityProtocol(ModuloCountingProtocol):
    """Compute the parity (XOR) of the input bits.

    This is exactly modulo-2 counting with target residue 1: collectors
    carrying input bits merge pairwise, accumulating the sum modulo 2, and
    followers learn the surviving collector's residue.  The population
    stabilises with every agent outputting ``True`` iff the number of 1
    inputs is odd.
    """

    def __init__(self) -> None:
        super().__init__(modulus=2, target=1)
        self.name = "parity"

    @staticmethod
    def expected_output(ones: int) -> bool:
        return ones % 2 == 1
