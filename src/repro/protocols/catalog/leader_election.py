"""Classic leader-election population protocol.

All agents start as leader candidates ``L``; whenever two candidates meet,
the reactor survives and the starter is demoted to follower ``F``.  Under
global fairness exactly one leader eventually remains.  This is one of the
standard workloads of the PP literature and is used here to exercise the
simulators on a protocol that is *not* symmetric in the Pairing sense (the
outcome of ``(L, L)`` depends on the roles).
"""

from __future__ import annotations

from typing import Tuple

from repro.protocols.protocol import PopulationProtocol
from repro.protocols.state import Configuration, State

LEADER = "L"
FOLLOWER = "F"


class LeaderElectionProtocol(PopulationProtocol):
    """Two-way leader election: ``(L, L) -> (F, L)``; everything else silent."""

    def __init__(self) -> None:
        super().__init__(
            states=[LEADER, FOLLOWER],
            initial_states=[LEADER],
            name="leader-election",
        )

    def delta(self, starter: State, reactor: State) -> Tuple[State, State]:
        if starter == LEADER and reactor == LEADER:
            return FOLLOWER, LEADER
        return starter, reactor

    def output(self, state: State) -> bool:
        """Output ``True`` for the leader, ``False`` for followers."""
        return state == LEADER

    def state_order(self) -> Tuple[State, ...]:
        """Canonical interning order for the array engine."""
        return (LEADER, FOLLOWER)

    @staticmethod
    def initial_configuration(n: int) -> Configuration:
        """All ``n`` agents start as leader candidates."""
        return Configuration.uniform(LEADER, n)

    @staticmethod
    def leader_count(configuration: Configuration) -> int:
        """Number of remaining leaders."""
        return configuration.count(LEADER)

    @staticmethod
    def has_converged(configuration: Configuration) -> bool:
        """A configuration is stable for leader election iff exactly one leader remains."""
        return configuration.count(LEADER) == 1
