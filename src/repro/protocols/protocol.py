"""Abstract population protocols (two-way and one-way).

Section 2.1 of the paper defines a protocol ``P`` by a set of local states
``Q_P``, a set of initial states ``Q'_P`` and a transition function
``delta_P : Q_P x Q_P -> Q_P x Q_P`` applied to ordered (starter, reactor)
pairs.  Section 2.2 restricts the shape of ``delta_P`` for the one-way
models: Immediate Transmission requires ``delta(a_s, a_r) = (g(a_s),
f(a_s, a_r))`` and Immediate Observation further forces ``g`` to be the
identity.

This module provides:

* :class:`PopulationProtocol` — the abstract two-way protocol, with helpers
  for enumerating transitions, checking symmetry and evaluating outputs.
* :class:`RuleBasedProtocol` — a concrete two-way protocol built from a
  transition table (missing entries default to "no change").
* :class:`OneWayProtocol` — the abstract native one-way protocol, defined by
  the pair ``(g, f)``; IO protocols simply leave ``g`` as the identity.
* :class:`RuleBasedOneWayProtocol` — table-driven one-way protocol.

All protocol states must be hashable; protocols themselves are stateless and
may be shared freely between agents, engines and processes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.protocols.state import State


class ProtocolError(Exception):
    """Raised when a protocol definition or invocation is invalid."""


def _canonical_state_order(
    states: Optional[FrozenSet[State]], name: str
) -> Tuple[State, ...]:
    """The default canonical ordering of a finite state set.

    Shared by the two protocol base classes so their ``state_order()``
    contracts cannot drift apart: the array engine interns states in this
    order, which must be stable across processes.  Sorting by ``repr``
    provides that stability (``frozenset`` iteration order depends on hash
    randomisation); protocols may override ``state_order()`` with the
    order in which the paper lists their states.
    """
    if states is None:
        raise ProtocolError(
            f"protocol {name!r} has an unbounded state space; "
            "the array engine needs a finite state_order()"
        )
    return tuple(sorted(states, key=repr))


class PopulationProtocol:
    """A two-way population protocol (the standard model, ``TW``).

    Subclasses must implement :meth:`delta`.  ``states`` may be ``None`` for
    protocols with an unbounded state space (e.g. simulators wrapped as
    protocols); finite protocols should enumerate their states so that
    analyses (memory accounting, reachability) can use them.
    """

    #: Human-readable protocol name (used by the catalog and reports).
    name: str = "protocol"

    def __init__(
        self,
        states: Optional[Iterable[State]] = None,
        initial_states: Optional[Iterable[State]] = None,
        name: Optional[str] = None,
    ) -> None:
        self._states: Optional[FrozenSet[State]] = (
            frozenset(states) if states is not None else None
        )
        self._initial_states: Optional[FrozenSet[State]] = (
            frozenset(initial_states) if initial_states is not None else None
        )
        if name is not None:
            self.name = name
        if (
            self._states is not None
            and self._initial_states is not None
            and not self._initial_states <= self._states
        ):
            raise ProtocolError("initial states must be a subset of the state set")

    # -- core interface ------------------------------------------------------------

    def delta(self, starter: State, reactor: State) -> Tuple[State, State]:
        """The transition function ``delta_P(a_s, a_r)``.

        Returns the pair ``(new_starter_state, new_reactor_state)``.
        """
        raise NotImplementedError

    def output(self, state: State) -> Any:
        """The output associated with ``state`` (``None`` when not applicable).

        Predicate-computing protocols override this to map states to the
        boolean (or other) value the population is computing.
        """
        return None

    # -- metadata -------------------------------------------------------------------

    @property
    def states(self) -> Optional[FrozenSet[State]]:
        """The set of local states ``Q_P`` (``None`` when unbounded)."""
        return self._states

    @property
    def initial_states(self) -> Optional[FrozenSet[State]]:
        """The set of initial states ``Q'_P`` (``None`` when unrestricted)."""
        return self._initial_states

    @property
    def is_finite_state(self) -> bool:
        """Whether ``Q_P`` is a known finite set."""
        return self._states is not None

    def state_count(self) -> int:
        """``|Q_P|``; raises :class:`ProtocolError` for unbounded protocols."""
        if self._states is None:
            raise ProtocolError(f"protocol {self.name!r} has an unbounded state space")
        return len(self._states)

    def state_order(self) -> Tuple[State, ...]:
        """A deterministic canonical ordering of ``Q_P``.

        This is the interning order used by the array engine
        (:mod:`repro.engine.backends`): state ``i`` of the returned tuple
        is encoded as code ``i``.  See :func:`_canonical_state_order` for
        the default; raises :class:`ProtocolError` for unbounded protocols.
        """
        return _canonical_state_order(self._states, self.name)

    def validate_initial_state(self, state: State) -> None:
        """Raise :class:`ProtocolError` if ``state`` is not a legal initial state."""
        if self._initial_states is not None and state not in self._initial_states:
            raise ProtocolError(
                f"{state!r} is not an initial state of protocol {self.name!r}"
            )

    # -- derived helpers --------------------------------------------------------------

    def fs(self, starter: State, reactor: State) -> State:
        """The starter-side component ``f_s`` of the transition function."""
        return self.delta(starter, reactor)[0]

    def fr(self, starter: State, reactor: State) -> State:
        """The reactor-side component ``f_r`` of the transition function."""
        return self.delta(starter, reactor)[1]

    def is_symmetric_on(self, q0: State, q1: State) -> bool:
        """Whether ``delta`` is symmetric on the unordered pair ``{q0, q1}``.

        Formally: ``delta(q0, q1) = (q0', q1')`` and ``delta(q1, q0) =
        (q1', q0')``.  Lemma 1 requires the simulated protocol to be
        symmetric on the pair of initial states used in the construction.
        """
        a, b = self.delta(q0, q1)
        c, d = self.delta(q1, q0)
        return (a, b) == (d, c)

    def is_silent_on(self, q0: State, q1: State) -> bool:
        """Whether the interaction ``(q0, q1)`` leaves both agents unchanged."""
        return self.delta(q0, q1) == (q0, q1)

    def enumerate_transitions(self) -> Dict[Tuple[State, State], Tuple[State, State]]:
        """The full transition table (finite-state protocols only)."""
        if self._states is None:
            raise ProtocolError(
                f"cannot enumerate transitions of unbounded protocol {self.name!r}"
            )
        return {
            (s, r): self.delta(s, r) for s in self._states for r in self._states
        }

    def is_closed(self) -> bool:
        """Whether ``delta`` maps ``Q_P x Q_P`` into ``Q_P x Q_P``.

        Unbounded protocols are assumed closed.
        """
        if self._states is None:
            return True
        for (s, r), (s2, r2) in self.enumerate_transitions().items():
            if s2 not in self._states or r2 not in self._states:
                return False
        return True

    def __repr__(self) -> str:
        size = "inf" if self._states is None else str(len(self._states))
        return f"<{type(self).__name__} {self.name!r} |Q|={size}>"


class RuleBasedProtocol(PopulationProtocol):
    """A two-way protocol defined by an explicit transition table.

    Pairs absent from ``rules`` are *silent*: both agents keep their state.
    This matches how protocols are usually written in the PP literature,
    where only the "non-trivial transition rules" are listed (e.g. the
    Pairing protocol of the paper lists only ``(c, p) -> (cs, bot)`` and
    ``(p, c) -> (bot, cs)``).
    """

    def __init__(
        self,
        rules: Mapping[Tuple[State, State], Tuple[State, State]],
        states: Optional[Iterable[State]] = None,
        initial_states: Optional[Iterable[State]] = None,
        name: str = "rule-based",
        output_map: Optional[Mapping[State, Any]] = None,
    ) -> None:
        inferred_states = set()
        for (s, r), (s2, r2) in rules.items():
            inferred_states.update((s, r, s2, r2))
        if states is None:
            states = inferred_states
        else:
            states = set(states) | inferred_states
        super().__init__(states=states, initial_states=initial_states, name=name)
        self._rules: Dict[Tuple[State, State], Tuple[State, State]] = dict(rules)
        self._output_map: Dict[State, Any] = dict(output_map or {})

    @property
    def rules(self) -> Dict[Tuple[State, State], Tuple[State, State]]:
        """A copy of the explicit (non-silent) transition rules."""
        return dict(self._rules)

    def delta(self, starter: State, reactor: State) -> Tuple[State, State]:
        return self._rules.get((starter, reactor), (starter, reactor))

    def output(self, state: State) -> Any:
        return self._output_map.get(state)


class OneWayProtocol:
    """A native one-way protocol, defined by ``(g, f)`` (Section 2.2).

    Under Immediate Transmission the starter applies ``g`` to its own state
    (detecting the proximity of the reactor, but not reading its state) and
    the reactor applies ``f`` to the pair.  Under Immediate Observation the
    starter is oblivious to the interaction, i.e. ``g`` is the identity.

    One-way protocols are what actually executes on the weak models; the
    simulators of ``repro.core`` are one-way protocols whose states embed a
    simulated two-way state.
    """

    name: str = "one-way-protocol"

    def __init__(
        self,
        states: Optional[Iterable[State]] = None,
        initial_states: Optional[Iterable[State]] = None,
        name: Optional[str] = None,
    ) -> None:
        self._states: Optional[FrozenSet[State]] = (
            frozenset(states) if states is not None else None
        )
        self._initial_states: Optional[FrozenSet[State]] = (
            frozenset(initial_states) if initial_states is not None else None
        )
        if name is not None:
            self.name = name

    # -- core one-way interface -------------------------------------------------------

    def g(self, starter: State) -> State:
        """Starter update on a (non-omissive) interaction; identity for IO."""
        return starter

    def f(self, starter: State, reactor: State) -> State:
        """Reactor update given the observed starter state."""
        raise NotImplementedError

    # -- omission handlers (Section 2.3) ------------------------------------------------

    def on_starter_omission(self, starter: State) -> State:
        """The function ``o`` applied starter-side on a *detected* omission.

        Only invoked by models that grant starter-side omission detection
        (``I4``, ``T2``/``T3`` starter side).  Defaults to the identity, i.e.
        "detected but ignored".
        """
        return starter

    def on_reactor_omission(self, reactor: State) -> State:
        """The function ``h`` applied reactor-side on a *detected* omission.

        Only invoked by models that grant reactor-side omission detection
        (``I3``, ``T3``).  Defaults to the identity.
        """
        return reactor

    # -- metadata ------------------------------------------------------------------------

    @property
    def states(self) -> Optional[FrozenSet[State]]:
        return self._states

    @property
    def initial_states(self) -> Optional[FrozenSet[State]]:
        return self._initial_states

    @property
    def is_finite_state(self) -> bool:
        return self._states is not None

    def state_order(self) -> Tuple[State, ...]:
        """A deterministic canonical ordering of the state set.

        Same contract as :meth:`PopulationProtocol.state_order` (the
        shared :func:`_canonical_state_order` default); raises
        :class:`ProtocolError` when the state space is unbounded (e.g.
        every simulator of :mod:`repro.core` except the trivial one).
        """
        return _canonical_state_order(self._states, self.name)

    def __repr__(self) -> str:
        size = "inf" if self._states is None else str(len(self._states))
        return f"<{type(self).__name__} {self.name!r} |Q|={size}>"


class RuleBasedOneWayProtocol(OneWayProtocol):
    """A one-way protocol defined by explicit ``g`` and ``f`` tables / callables."""

    def __init__(
        self,
        f_rules: Mapping[Tuple[State, State], State],
        g_rules: Optional[Mapping[State, State]] = None,
        states: Optional[Iterable[State]] = None,
        initial_states: Optional[Iterable[State]] = None,
        name: str = "rule-based-one-way",
    ) -> None:
        inferred = set()
        for (s, r), r2 in f_rules.items():
            inferred.update((s, r, r2))
        for s, s2 in (g_rules or {}).items():
            inferred.update((s, s2))
        if states is None:
            states = inferred
        else:
            states = set(states) | inferred
        super().__init__(states=states, initial_states=initial_states, name=name)
        self._f_rules = dict(f_rules)
        self._g_rules = dict(g_rules or {})

    def g(self, starter: State) -> State:
        return self._g_rules.get(starter, starter)

    def f(self, starter: State, reactor: State) -> State:
        return self._f_rules.get((starter, reactor), reactor)


def two_way_from_functions(
    fs: Callable[[State, State], State],
    fr: Callable[[State, State], State],
    states: Optional[Iterable[State]] = None,
    initial_states: Optional[Iterable[State]] = None,
    name: str = "functional",
) -> PopulationProtocol:
    """Build a two-way protocol from the pair of component functions ``(f_s, f_r)``."""

    class _FunctionalProtocol(PopulationProtocol):
        def delta(self, starter: State, reactor: State) -> Tuple[State, State]:
            return fs(starter, reactor), fr(starter, reactor)

    return _FunctionalProtocol(states=states, initial_states=initial_states, name=name)
