"""Population-protocol substrate.

This subpackage contains the abstract definition of a population protocol
(Section 2.1 of the paper), concrete configuration machinery, and a catalog
of well-known two-way protocols used as simulation workloads throughout the
library (the Pairing protocol of Definition 5, leader election, majority,
threshold / flock-of-birds counting, modulo counting and boolean predicates).
"""

from repro.protocols.state import Configuration, MutableConfiguration, state_multiset
from repro.protocols.protocol import (
    PopulationProtocol,
    RuleBasedProtocol,
    OneWayProtocol,
    RuleBasedOneWayProtocol,
    ProtocolError,
)
from repro.protocols.catalog import (
    PairingProtocol,
    LeaderElectionProtocol,
    ApproximateMajorityProtocol,
    ExactMajorityProtocol,
    ThresholdProtocol,
    ModuloCountingProtocol,
    OrProtocol,
    AndProtocol,
    ParityProtocol,
    AveragingProtocol,
    EpidemicProtocol,
    CATALOG,
    get_protocol,
)

__all__ = [
    "Configuration",
    "MutableConfiguration",
    "state_multiset",
    "PopulationProtocol",
    "RuleBasedProtocol",
    "OneWayProtocol",
    "RuleBasedOneWayProtocol",
    "ProtocolError",
    "PairingProtocol",
    "LeaderElectionProtocol",
    "ApproximateMajorityProtocol",
    "ExactMajorityProtocol",
    "ThresholdProtocol",
    "ModuloCountingProtocol",
    "OrProtocol",
    "AndProtocol",
    "ParityProtocol",
    "AveragingProtocol",
    "EpidemicProtocol",
    "CATALOG",
    "get_protocol",
]
