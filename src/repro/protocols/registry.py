"""Picklable experiment registry for process-based fan-out.

``ProcessPoolExecutor`` workers cannot receive the closures that the
thread-based ``repeat_experiment`` path shares freely: convergence
predicates close over simulators, adversary factories close over models,
and none of it pickles.  This module is the seam that makes process
fan-out possible — every ingredient of an experiment is addressed by a
**string key** into a module-level registry, and a whole experiment is
described by the picklable, hashable :class:`ExperimentSpec`.  Workers
receive a spec plus a seed, resolve the keys against their own imported
registries, and rebuild the live objects locally; nothing but plain data
crosses the process boundary.

Registries
----------

* :data:`PROTOCOLS` — catalog protocol constructors (re-exported from
  :data:`repro.protocols.catalog.CATALOG`).
* :data:`SIMULATORS` — simulator factories by CLI name
  (``none``/``skno``/``sid``/``known-n``).
* :data:`PREDICATES` — convergence-predicate factories; each is called as
  ``factory(simulator, protocol, initial_projected)`` inside the worker
  and returns a fresh predicate per run (so stateful incremental
  predicates are safe under any backend).
* :data:`SCHEDULERS` — scheduler factories ``factory(n, seed)``.
* :data:`ADVERSARIES` — omission-adversary factories
  ``factory(model, omissions, seed, **kwargs)`` by class name
  (``bounded``/``no1``/``uo``/``no``); built fresh per run because
  adversaries are stateful.

Extending: call :func:`register_protocol` / :func:`register_predicate` /
:func:`register_scheduler` / :func:`register_simulator` /
:func:`register_adversary` at import time of your own module.  Keys resolve *inside each worker process*, so the
registering module must be imported there too — register at module top
level, not inside functions.

Third-party packages do not even need an explicit import: any installed
distribution may advertise ``repro.protocols`` entry points
(:data:`ENTRY_POINT_GROUP`), which this module discovers through
``importlib.metadata`` at import time and loads into the registries — see
:func:`load_entry_points`.  Because discovery runs wherever this module is
imported, entry-point-registered keys resolve in process-pool workers too.
"""

from __future__ import annotations

import importlib.metadata
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.adversary.omission import (
    BoundedOmissionAdversary,
    NO1Adversary,
    NOAdversary,
    UOAdversary,
)
from repro.core.naming import KnownSizeSimulator
from repro.engine.backends import BackendUnavailableError, get_backend, validate_backend
from repro.engine.fastpath import AgentCountPredicate
from repro.core.sid import SIDSimulator
from repro.core.skno import SKnOSimulator
from repro.core.trivial import TrivialTwoWaySimulator
from repro.interaction.models import get_model
from repro.protocols.catalog import CATALOG, get_protocol
from repro.protocols.state import Configuration
from repro.scheduling.graph_scheduler import (
    complete_graph_scheduler,
    ring_scheduler,
    star_scheduler,
)
from repro.scheduling.scheduler import RandomScheduler, RoundRobinScheduler

#: Protocol constructors by catalog name (the catalog registry, re-exported
#: so every registry an :class:`ExperimentSpec` key can hit lives here).
PROTOCOLS: Dict[str, Callable[..., Any]] = CATALOG


def register_protocol(key: str, factory: Callable[..., Any]) -> None:
    """Register a protocol constructor under ``key`` (import-time only)."""
    PROTOCOLS[key] = factory


# ---------------------------------------------------------------------------
# simulators
# ---------------------------------------------------------------------------


def _build_none(protocol, population, omission_bound, model_name) -> TrivialTwoWaySimulator:
    return TrivialTwoWaySimulator(protocol)


def _build_skno(protocol, population, omission_bound, model_name) -> SKnOSimulator:
    variant = "I4" if model_name.upper() == "I4" else "I3"
    return SKnOSimulator(protocol, omission_bound=omission_bound, variant=variant)


def _build_sid(protocol, population, omission_bound, model_name) -> SIDSimulator:
    return SIDSimulator(protocol)


def _build_known_n(protocol, population, omission_bound, model_name) -> KnownSizeSimulator:
    return KnownSizeSimulator(protocol, population_size=population)


#: Simulator factories ``factory(protocol, population, omission_bound,
#: model_name) -> simulator`` by CLI simulator name.
SIMULATORS: Dict[str, Callable[..., Any]] = {
    "none": _build_none,
    "skno": _build_skno,
    "sid": _build_sid,
    "known-n": _build_known_n,
}


def register_simulator(key: str, factory: Callable[..., Any]) -> None:
    """Register a simulator factory under ``key`` (import-time only)."""
    SIMULATORS[key] = factory


def build_simulator(kind: str, protocol, population: int, omission_bound: int,
                    model_name: str) -> Any:
    """Instantiate the simulator registered under ``kind``."""
    try:
        factory = SIMULATORS[kind]
    except KeyError:
        known = ", ".join(sorted(SIMULATORS))
        raise KeyError(f"unknown simulator {kind!r}; known simulators: {known}") from None
    return factory(protocol, population, omission_bound, model_name)


# ---------------------------------------------------------------------------
# initial configurations
# ---------------------------------------------------------------------------


def default_initial_configuration(protocol, population: int,
                                  ones: Optional[int] = None) -> Configuration:
    """A sensible default initial configuration for each catalog protocol.

    ``ones`` overrides the number of agents with input 1 for the
    threshold/modulo/OR/AND/parity families; the other protocols ignore it.
    """
    name = protocol.name
    majority_a = population // 2 + 1
    if name == "pairing":
        consumers = population // 2
        return Configuration(["c"] * consumers + ["p"] * (population - consumers))
    if name == "leader-election":
        return Configuration(["L"] * population)
    if name in ("exact-majority", "approximate-majority"):
        return protocol.initial_configuration(majority_a, population - majority_a)
    if name.startswith("threshold") or name.startswith("mod-") or name == "parity":
        count = ones if ones is not None else majority_a
        return protocol.initial_configuration(count, population - count)
    if name in ("or", "and"):
        count = ones if ones is not None else 1
        return protocol.initial_configuration(count, population - count)
    if name.startswith("averaging"):
        return Configuration([(i * 3) % (protocol.max_value + 1) for i in range(population)])
    if name == "epidemic":
        return Configuration(["I"] + ["S"] * (population - 1))
    raise KeyError(f"no default initial configuration for protocol {name!r}")


# ---------------------------------------------------------------------------
# convergence predicates
# ---------------------------------------------------------------------------


def prepare_stable_output_predicate(
        simulator, protocol, initial_projected: Configuration) -> Callable[[], Any]:
    """Hoist the pure part of :func:`stable_output_predicate` out of the run.

    Deriving the expected stable output is an O(n) scan of the initial
    configuration — pure in (protocol, initial configuration), yet it used
    to run once *per run*, where it dwarfed the actual simulation on
    short runs at large n (the regime the shared-memory result transport
    targets).  This preparer performs the scan once and returns a zero-arg
    maker; each maker call still constructs a **fresh** predicate instance,
    so the statefulness contract of incremental predicates (reset counts
    per run) is untouched.
    """
    project = simulator.project
    output = protocol.output

    def all_output(expected) -> Callable[[], AgentCountPredicate]:
        return lambda: AgentCountPredicate(
            lambda s: output(project(s)) == expected)

    name = protocol.name
    if name == "pairing":
        expected_critical = min(initial_projected.count("c"),
                                initial_projected.count("p"))
        return lambda: AgentCountPredicate(
            lambda s: project(s) == "cs", target=expected_critical)
    if name == "leader-election":
        return lambda: AgentCountPredicate(lambda s: project(s) == "L", target=1)
    if name == "exact-majority":
        count_a = sum(1 for state in initial_projected
                      if output(state) == "A")
        expected = "A" if count_a * 2 > len(initial_projected) else "B"
        return all_output(expected)
    if name.startswith("averaging"):
        def spread_at_most_one(c) -> bool:
            return max(project(s) for s in c) - min(project(s) for s in c) <= 1
        # Stateless plain callable: sharing one instance across runs is safe.
        return lambda: spread_at_most_one
    if name.startswith("threshold"):
        ones = sum(weight for weight, _ in initial_projected)
        return all_output(protocol.expected_output(ones))
    if name.startswith("mod-") or name == "parity":
        ones = sum(residue for _, residue in initial_projected)
        return all_output(protocol.expected_output(ones))
    # Generic boolean predicates: the stable output is determined by the
    # protocol's own expected_output when available.
    expected = None
    if hasattr(protocol, "expected_output"):
        ones = sum(1 for state in initial_projected if output(state))
        try:
            expected = protocol.expected_output(ones)
        except TypeError:
            expected = None
    if expected is not None:
        return all_output(expected)

    def unanimous_output(c) -> bool:
        return len({output(project(s)) for s in c}) == 1
    return lambda: unanimous_output


def stable_output_predicate(simulator, protocol, initial_projected: Configuration) -> "AgentCountPredicate | Callable[[Configuration], bool]":
    """Predicate: every agent's simulated output equals the final stable output.

    The expected stable output is derived from the initial configuration
    where possible (majority opinion, OR/AND value, threshold verdict);
    protocols without a natural scalar output fall back to "outputs stopped
    changing", approximated by unanimity of outputs.  This is the default
    predicate of ``repro run`` for every catalog protocol.

    Wherever the criterion is a *state count* ("``k`` agents satisfy this
    per-state test"), the returned predicate is an
    :class:`~repro.engine.fastpath.AgentCountPredicate`: O(1) per step on
    the python backend (delta-driven instead of an O(n) rescan) and
    compilable by the array backend.  Only the averaging spread criterion
    and the unanimity fallback remain plain configuration callables, which
    the array backend rejects with an actionable error.
    """
    return prepare_stable_output_predicate(simulator, protocol, initial_projected)()


#: Predicate factories ``factory(simulator, protocol, initial_projected) ->
#: predicate`` by name; called once per run, so returning stateful
#: incremental predicates is safe.
PREDICATES: Dict[str, Callable[..., Any]] = {
    "stable-output": stable_output_predicate,
}

#: Optional two-stage twins of :data:`PREDICATES` entries:
#: ``prepare(simulator, protocol, initial_projected)`` runs the pure,
#: possibly O(n) part once per built experiment and returns a zero-arg
#: maker producing a fresh predicate per run.  Factories without an entry
#: here are simply called once per run, as before.
PREDICATE_PREPARERS: Dict[str, Callable[..., Callable[[], Any]]] = {
    "stable-output": prepare_stable_output_predicate,
}


def register_predicate(key: str, factory: Callable[..., Any],
                       prepare: Optional[Callable[..., Callable[[], Any]]] = None) -> None:
    """Register a convergence-predicate factory under ``key`` (import-time only).

    ``prepare``, when given, registers a two-stage twin (see
    :data:`PREDICATE_PREPARERS`) that lets repeated runs of one spec skip
    the factory's per-run setup cost.
    """
    PREDICATES[key] = factory
    if prepare is not None:
        PREDICATE_PREPARERS[key] = prepare
    else:
        PREDICATE_PREPARERS.pop(key, None)


# ---------------------------------------------------------------------------
# schedulers
# ---------------------------------------------------------------------------


def _random_scheduler(n, seed=None) -> RandomScheduler:
    return RandomScheduler(n, seed=seed)


def _round_robin_scheduler(n, seed=None) -> RoundRobinScheduler:
    return RoundRobinScheduler(n)


#: Scheduler factories ``factory(n, seed) -> scheduler`` by name.
SCHEDULERS: Dict[str, Callable[..., Any]] = {
    "random": _random_scheduler,
    "round-robin": _round_robin_scheduler,
    "ring-graph": ring_scheduler,
    "star-graph": star_scheduler,
    "complete-graph": complete_graph_scheduler,
}


def register_scheduler(key: str, factory: Callable[..., Any]) -> None:
    """Register a scheduler factory under ``key`` (import-time only)."""
    SCHEDULERS[key] = factory


# ---------------------------------------------------------------------------
# adversaries
# ---------------------------------------------------------------------------


def _bounded_adversary(model, omissions, seed=None, **kwargs) -> BoundedOmissionAdversary:
    return BoundedOmissionAdversary(model, max_omissions=omissions, seed=seed, **kwargs)


def _no1_adversary(model, omissions, seed=None, **kwargs) -> NO1Adversary:
    return NO1Adversary(model, seed=seed, **kwargs)


def _uo_adversary(model, omissions, seed=None, **kwargs) -> UOAdversary:
    return UOAdversary(model, seed=seed, **kwargs)


def _no_adversary(model, omissions, seed=None, **kwargs) -> NOAdversary:
    return NOAdversary(model, seed=seed, **kwargs)


#: Adversary factories ``factory(model, omissions, seed, **kwargs) ->
#: adversary`` by name.  ``omissions`` is the spec's omission budget: it is
#: the hard budget for ``bounded``, fixed at one for ``no1``, and for the
#: budgetless classes (``uo`` injects forever, ``no`` stops after its
#: ``active_steps``) any positive value merely activates the adversary.
ADVERSARIES: Dict[str, Callable[..., Any]] = {
    "bounded": _bounded_adversary,
    "no1": _no1_adversary,
    "uo": _uo_adversary,
    "no": _no_adversary,
}


def register_adversary(key: str, factory: Callable[..., Any]) -> None:
    """Register an adversary factory under ``key`` (import-time only)."""
    ADVERSARIES[key] = factory


# ---------------------------------------------------------------------------
# the picklable experiment description
# ---------------------------------------------------------------------------


def _as_items(kwargs) -> Tuple[Tuple[str, Any], ...]:
    """Normalise a kwargs mapping to a sorted, hashable tuple of pairs."""
    if kwargs is None:
        return ()
    if isinstance(kwargs, dict):
        return tuple(sorted(kwargs.items()))
    return tuple(sorted(tuple(pair) for pair in kwargs))


@dataclass(frozen=True)
class ExperimentSpec:
    """A fully picklable, hashable description of one experiment family.

    Every field is plain data; live objects (protocol, simulator, model,
    predicate, scheduler, adversary) are rebuilt from the registries via
    :meth:`build` — in the parent for the sequential/thread backends, in
    each worker for the process backend.  Equal specs build behaviourally
    identical systems, which is why a spec plus a seed fully determines a
    run and the process backend merges deterministically.

    ``protocol_kwargs``/``scheduler_kwargs`` accept dicts for convenience
    and are normalised to sorted tuples of pairs so specs stay hashable
    (the per-process build cache keys on the spec itself).

    ``chunk_size`` is the engine's batched-draw chunk (``None`` = the
    engine default).  It is carried on the spec so the CLI and the
    process backend can thread it to every worker, but it is purely a
    performance knob: results are chunking-independent by the batched
    protocols' equivalence contracts.

    ``backend`` selects the execution backend
    (:data:`repro.engine.backends.ENGINE_BACKENDS`) each run's engine is
    built with.  Like every other field it is plain data, so it pickles
    across the process fan-out and workers resolve the backend — including
    its numpy dependency for ``"array"`` — locally.  The pseudo-backend
    ``"auto"`` is accepted as spec data but must be pinned to a concrete
    backend via :func:`resolve_backend` / :func:`resolved_spec` before the
    spec reaches an engine — the experiment runner and campaign planner do
    this up front (before cell hashing), so content addresses and resumes
    never depend on which machine resolved the spec.
    """

    protocol: str
    population: int
    protocol_kwargs: Tuple[Tuple[str, Any], ...] = ()
    model: str = "TW"
    simulator: str = "none"
    omission_bound: int = 0
    omissions: int = 0
    ones: Optional[int] = None
    predicate: str = "stable-output"
    scheduler: str = "random"
    scheduler_kwargs: Tuple[Tuple[str, Any], ...] = ()
    adversary: str = "bounded"
    adversary_kwargs: Tuple[Tuple[str, Any], ...] = ()
    chunk_size: Optional[int] = None
    backend: str = "python"

    def __post_init__(self) -> None:
        object.__setattr__(self, "protocol_kwargs", _as_items(self.protocol_kwargs))
        object.__setattr__(self, "scheduler_kwargs", _as_items(self.scheduler_kwargs))
        object.__setattr__(self, "adversary_kwargs", _as_items(self.adversary_kwargs))
        if self.population < 2:
            raise ValueError("a population needs at least two agents to interact")
        if self.omissions < 0 or self.omission_bound < 0:
            raise ValueError("omission counts must be non-negative")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        validate_backend(self.backend)

    def build(self) -> "BuiltExperiment":
        """Resolve every key and construct the live per-experiment objects."""
        protocol = get_protocol(self.protocol, **dict(self.protocol_kwargs))
        model = get_model(self.model)
        if self.omissions > 0 and not model.allows_omissions:
            raise ValueError(f"model {model.name} does not admit omissions")
        initial_projected = default_initial_configuration(
            protocol, self.population, ones=self.ones)
        simulator = build_simulator(
            self.simulator, protocol, self.population, self.omission_bound, self.model)
        initial_configuration = simulator.initial_configuration(initial_projected)
        if self.predicate not in PREDICATES:
            known = ", ".join(sorted(PREDICATES))
            raise KeyError(
                f"unknown predicate {self.predicate!r}; known predicates: {known}")
        if self.scheduler not in SCHEDULERS:
            known = ", ".join(sorted(SCHEDULERS))
            raise KeyError(
                f"unknown scheduler {self.scheduler!r}; known schedulers: {known}")
        if self.adversary not in ADVERSARIES:
            known = ", ".join(sorted(ADVERSARIES))
            raise KeyError(
                f"unknown adversary {self.adversary!r}; known adversaries: {known}")
        return BuiltExperiment(
            spec=self,
            protocol=protocol,
            model=model,
            program=simulator,
            initial_projected=initial_projected,
            initial_configuration=initial_configuration,
        )


@dataclass
class BuiltExperiment:
    """The live (non-picklable) objects resolved from an :class:`ExperimentSpec`.

    ``program`` and ``model`` are stateless and shared across the runs of a
    worker; predicates, schedulers and adversaries are stateful and built
    fresh per run through the ``make_*`` factories.
    """

    spec: ExperimentSpec
    protocol: Any
    model: Any
    program: Any
    initial_projected: Configuration
    initial_configuration: Configuration
    #: Lazily cached zero-arg predicate maker (see
    #: :data:`PREDICATE_PREPARERS`): the pure preparation scan runs once
    #: per built experiment, while every :meth:`make_predicate` call still
    #: returns a fresh (possibly stateful) predicate instance.
    _predicate_maker: Optional[Callable[[], Any]] = field(
        default=None, init=False, repr=False, compare=False)

    def make_predicate(self) -> Any:
        """A fresh convergence predicate for one run."""
        maker = self._predicate_maker
        if maker is None:
            prepare = PREDICATE_PREPARERS.get(self.spec.predicate)
            if prepare is not None:
                maker = prepare(self.program, self.protocol, self.initial_projected)
            else:
                factory = PREDICATES[self.spec.predicate]
                maker = lambda: factory(
                    self.program, self.protocol, self.initial_projected)
            self._predicate_maker = maker
        return maker()

    def make_scheduler(self, seed: Optional[int]) -> Any:
        """A fresh scheduler for one run."""
        return SCHEDULERS[self.spec.scheduler](
            len(self.initial_configuration), seed=seed,
            **dict(self.spec.scheduler_kwargs))

    def make_adversary(self, seed: Optional[int]) -> Optional[Any]:
        """A fresh omission adversary for one run (``None`` when ``omissions == 0``)."""
        if self.spec.omissions <= 0:
            return None
        return ADVERSARIES[self.spec.adversary](
            self.model, self.spec.omissions, seed=seed,
            **dict(self.spec.adversary_kwargs))


#: Per-process cache of built experiments: a process-pool worker receives
#: the same spec for every run it executes, and the build (protocol +
#: simulator + initial configuration) is pure, so one build serves them all.
_BUILD_CACHE: Dict[ExperimentSpec, BuiltExperiment] = {}


def build_cached(spec: ExperimentSpec) -> BuiltExperiment:
    """Build ``spec`` once per process and memoise the result."""
    built = _BUILD_CACHE.get(spec)
    if built is None:
        built = _BUILD_CACHE[spec] = spec.build()
    return built


# ---------------------------------------------------------------------------
# automatic backend selection
# ---------------------------------------------------------------------------


class BackendResolution(NamedTuple):
    """Outcome of resolving a spec's ``"auto"`` backend to a concrete one.

    ``backend`` is a member of
    :data:`repro.engine.backends.ENGINE_BACKENDS`; ``reason`` is ``None``
    when the fastest backend compiled, else the human-readable
    :class:`~repro.engine.backends.base.BackendCompileError` (or
    numpy-unavailability) message explaining the fallback to ``python``.
    Callers surface the reason instead of discarding it — auto selection
    must never silently hide *why* a run is on the slow path.
    """

    backend: str
    reason: Optional[str]


#: Memoised resolutions: probing compiles the spec's program tables, so a
#: campaign planning hundreds of cells over the same few specs should probe
#: each distinct (spec, trace_policy) once.
_RESOLUTION_CACHE: Dict[Tuple[ExperimentSpec, str], BackendResolution] = {}


def resolve_backend(
    spec: ExperimentSpec, trace_policy: str = "counts-only"
) -> BackendResolution:
    """Pin ``spec.backend == "auto"`` to the fastest backend that compiles.

    Probes every ingredient of the experiment (program, scheduler,
    adversary, predicate, trace policy) against the array backend's compile
    checks (:func:`repro.engine.backends.array_backend.probe_compile`) and
    returns ``array`` when everything compiles, else ``python`` with the
    first compile error as the ``reason``.  A missing numpy installation is
    itself a recorded reason, never an exception.

    Non-``auto`` specs pass through unchanged (reason ``None``), so callers
    may resolve unconditionally.  Resolution is deterministic in the spec
    and trace policy — it never consults timings or machine load — which is
    what keeps campaign cell hashes and resumes stable across machines with
    the same install profile.

    May raise the spec's own build errors (unknown keys, invalid models):
    resolution builds the experiment once via :func:`build_cached`, sharing
    the cache with the runs that follow.
    """
    if spec.backend != "auto":
        return BackendResolution(spec.backend, None)
    key = (spec, trace_policy)
    cached = _RESOLUTION_CACHE.get(key)
    if cached is not None:
        return cached
    try:
        get_backend("array")
    except BackendUnavailableError as error:
        resolution = BackendResolution("python", str(error))
        _RESOLUTION_CACHE[key] = resolution
        return resolution
    from repro.engine.backends.array_backend import probe_compile

    built = build_cached(spec)
    reason = probe_compile(
        built.program,
        built.model,
        scheduler=built.make_scheduler(seed=0),
        adversary=built.make_adversary(seed=0),
        predicate=built.make_predicate(),
        population=len(built.initial_configuration),
        trace_policy=trace_policy,
    )
    resolution = BackendResolution("python" if reason else "array", reason)
    _RESOLUTION_CACHE[key] = resolution
    return resolution


def resolved_spec(
    spec: ExperimentSpec, trace_policy: str = "counts-only"
) -> Tuple[ExperimentSpec, Optional[str]]:
    """Return ``spec`` with ``"auto"`` replaced by its resolved backend.

    Convenience wrapper over :func:`resolve_backend`: returns the (possibly
    unchanged) spec plus the fallback reason, ``None`` when no fallback
    happened.  The returned spec is safe to hand to engines, workers and
    cell hashing.
    """
    if spec.backend != "auto":
        return spec, None
    resolution = resolve_backend(spec, trace_policy)
    return replace(spec, backend=resolution.backend), resolution.reason


# ---------------------------------------------------------------------------
# entry-point discovery
# ---------------------------------------------------------------------------

#: The ``importlib.metadata`` entry-point group third-party distributions
#: use to extend the registries without being imported explicitly.
ENTRY_POINT_GROUP = "repro.protocols"

#: Entry points already loaded (``(name, value)`` pairs), so repeated
#: discovery — e.g. a test calling :func:`load_entry_points` after the
#: import-time pass — stays idempotent.
_LOADED_ENTRY_POINTS: set = set()

#: Entry points that failed to load at import time, by name.  One broken
#: third-party distribution must not break ``import repro``; failures are
#: recorded here instead of raised (and re-raised only when
#: :func:`load_entry_points` is called with ``strict=True``).
ENTRY_POINT_ERRORS: Dict[str, str] = {}


def load_entry_points(
    entries: Optional[Iterable[Any]] = None, *, strict: bool = False
) -> List[str]:
    """Discover and load ``repro.protocols`` entry points into the registries.

    Each entry point's value is loaded with ``EntryPoint.load()``.  A
    loaded *callable* is invoked with no arguments — the conventional shape
    is a ``register()`` function calling :func:`register_protocol` /
    :func:`register_predicate` / :func:`register_scheduler` /
    :func:`register_simulator`.  Any other loaded object (typically a
    module) is assumed to have registered itself as an import side effect,
    which is exactly the contract the ``register_*`` hooks already demand.

    ``entries`` overrides discovery (used by tests to inject stub entry
    points); by default the installed distributions are scanned via
    ``importlib.metadata.entry_points``.  Returns the names loaded by this
    call; entries seen before are skipped.  Load failures are recorded in
    :data:`ENTRY_POINT_ERRORS` (or raised when ``strict``).
    """
    if entries is None:
        entries = importlib.metadata.entry_points(group=ENTRY_POINT_GROUP)
    loaded: List[str] = []
    for entry_point in entries:
        key = (entry_point.name, entry_point.value)
        if key in _LOADED_ENTRY_POINTS:
            continue
        try:
            target = entry_point.load()
            if callable(target):
                target()
        # repro-lint: disable=RPL003 reason=entry-point isolation must survive arbitrarily broken third-party dists; failures are recorded in ENTRY_POINT_ERRORS and surfaced by `repro list`
        except Exception as error:
            if strict:
                raise
            ENTRY_POINT_ERRORS[entry_point.name] = f"{type(error).__name__}: {error}"
            continue
        _LOADED_ENTRY_POINTS.add(key)
        loaded.append(entry_point.name)
    return loaded


# Import-time discovery: runs in every process that imports the registry,
# so entry-point keys resolve inside process-pool workers too.
load_entry_points()
