"""Configurations of population-protocol systems.

A configuration ``C`` of a system ``(P, n)`` is the n-tuple of the local
states of the agents (Section 2.1).  Agents are anonymous, so most of the
semantics of a protocol only depends on the *multiset* of states; the
:class:`Configuration` class therefore exposes both the indexed view (needed
to apply interactions, which are ordered pairs of agent indices) and the
multiset view (needed for closed-set / fairness reasoning and for comparing
configurations up to agent permutation).

Configurations are immutable and hashable so that they can be used as keys
in reachability searches (e.g. the FTT breadth-first search of
``repro.adversary.ftt``) and deduplicated inside execution traces.

For the columnar array engine (:mod:`repro.engine.backends.array_backend`)
this module additionally provides the dense state encoding:

* :class:`StateInterner` — a bijection between a finite state set and the
  codes ``0 .. k-1``, fixed in a deterministic order so the same protocol
  compiles to the same encoding in every process;
* :class:`ArrayConfiguration` — a read-only view over a sequence of interned
  codes that mirrors the :class:`Configuration` read API and decodes states
  on access, so columnar runs freeze back to ordinary configurations only at
  explicit boundaries.

Neither class depends on numpy: the interner is plain-Python and the view
accepts any integer sequence (a list as well as an ``ndarray``), which keeps
``import repro`` working on installs without the ``repro[fast]`` extra.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple

State = Hashable


def state_multiset(states: Iterable[State]) -> Counter:
    """Return the multiset (as a :class:`collections.Counter`) of ``states``."""
    return Counter(states)


class Configuration:
    """An immutable n-tuple of agent states.

    Parameters
    ----------
    states:
        The local state of each agent, indexed by agent identifier
        ``0 .. n-1``.
    """

    __slots__ = ("_states", "_hash", "_multiset")

    def __init__(self, states: Iterable[State]) -> None:
        self._states: Tuple[State, ...] = tuple(states)
        self._hash = None
        self._multiset = None

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[State]:
        return iter(self._states)

    def __getitem__(self, index: int) -> State:
        return self._states[index]

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Configuration):
            return self._states == other._states
        if isinstance(other, tuple):
            return self._states == other
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._states)
        return self._hash

    def __repr__(self) -> str:
        return f"Configuration({list(self._states)!r})"

    # -- views ---------------------------------------------------------------------

    @property
    def states(self) -> Tuple[State, ...]:
        """The underlying tuple of states."""
        return self._states

    def _cached_multiset(self) -> Counter:
        """The lazily built state Counter; callers must not mutate it."""
        if self._multiset is None:
            self._multiset = Counter(self._states)
        return self._multiset

    def multiset(self) -> Counter:
        """The multiset of states (anonymous view of the configuration).

        The Counter is built once per configuration and cached (configurations
        are immutable); each call returns a fresh copy, so mutating the result
        cannot corrupt the cache.
        """
        return Counter(self._cached_multiset())

    def count(self, state: State) -> int:
        """Number of agents currently in ``state``."""
        return self._cached_multiset()[state]

    def count_if(self, predicate: Callable[[State], bool]) -> int:
        """Number of agents whose state satisfies ``predicate``."""
        return sum(1 for s in self._states if predicate(s))

    def indices_of(self, state: State) -> Tuple[int, ...]:
        """Indices of the agents currently in ``state``."""
        return tuple(i for i, s in enumerate(self._states) if s == state)

    def histogram(self) -> Dict[State, int]:
        """A plain ``dict`` mapping each present state to its multiplicity."""
        return dict(self._cached_multiset())

    # -- functional updates ----------------------------------------------------------

    def replace(self, index: int, new_state: State) -> "Configuration":
        """Return a new configuration with agent ``index`` set to ``new_state``."""
        if not 0 <= index < len(self._states):
            raise IndexError(f"agent index {index} out of range for n={len(self)}")
        states = list(self._states)
        states[index] = new_state
        return Configuration(states)

    def replace_many(self, updates: Dict[int, State]) -> "Configuration":
        """Return a new configuration applying several indexed updates at once."""
        states = list(self._states)
        for index, new_state in updates.items():
            if not 0 <= index < len(states):
                raise IndexError(f"agent index {index} out of range for n={len(self)}")
            states[index] = new_state
        return Configuration(states)

    def apply_interaction(
        self, starter: int, reactor: int, new_starter: State, new_reactor: State
    ) -> "Configuration":
        """Apply the outcome of an interaction ``(starter, reactor)``."""
        if starter == reactor:
            raise ValueError("an agent cannot interact with itself")
        return self.replace_many({starter: new_starter, reactor: new_reactor})

    def project(self, projection: Callable[[State], State]) -> "Configuration":
        """Apply ``projection`` to every agent state (e.g. ``pi_P`` of Section 2.4)."""
        return Configuration(projection(s) for s in self._states)

    def permuted(self, permutation: Iterable[int]) -> "Configuration":
        """Return the configuration with agent states permuted.

        ``permutation[i]`` is the index in ``self`` whose state becomes the
        state of agent ``i`` in the result.  Used for reasoning about closed
        sets of configurations, which are invariant under permutation.
        """
        perm = tuple(permutation)
        if sorted(perm) != list(range(len(self))):
            raise ValueError("not a permutation of agent indices")
        return Configuration(self._states[i] for i in perm)

    def same_multiset(self, other: "Configuration") -> bool:
        """``True`` when the two configurations are equal up to agent permutation."""
        return self._cached_multiset() == other._cached_multiset()

    # -- constructors ---------------------------------------------------------------

    @classmethod
    def uniform(cls, state: State, n: int) -> "Configuration":
        """A configuration of ``n`` agents, all in ``state``."""
        if n < 0:
            raise ValueError("population size must be non-negative")
        return cls([state] * n)

    @classmethod
    def from_counts(cls, counts: Dict[State, int]) -> "Configuration":
        """Build a configuration from a ``state -> multiplicity`` mapping.

        Agents are laid out in the iteration order of ``counts``; because
        agents are anonymous this ordering is semantically irrelevant, but it
        is deterministic, which keeps experiments reproducible.
        """
        states = []
        for state, count in counts.items():
            if count < 0:
                raise ValueError(f"negative multiplicity for state {state!r}")
            states.extend([state] * count)
        return cls(states)


class MutableConfiguration:
    """An array-backed, mutable run buffer over agent states.

    The immutable :class:`Configuration` pays an O(n) tuple copy per applied
    interaction, which makes a T-step run O(n·T).  The execution core of
    :mod:`repro.engine.fastpath` instead threads a single
    ``MutableConfiguration`` through the whole run: applying an interaction
    is two O(1) in-place list writes, and an immutable :class:`Configuration`
    is only materialised at explicit freeze points (trace construction,
    convergence records, hashing for reachability).

    The read API mirrors :class:`Configuration` (``len``, iteration,
    indexing, ``count``, ``multiset``, ``project``, ...) so configuration
    predicates written against the immutable class also accept the live
    buffer.  Unlike :class:`Configuration`, instances are unhashable and any
    view of the buffer is only valid until the next mutation.
    """

    __slots__ = ("_states",)

    def __init__(self, states: Iterable[State]) -> None:
        self._states: list = list(states)

    @classmethod
    def from_configuration(cls, configuration: "Configuration") -> "MutableConfiguration":
        """A mutable copy of an immutable configuration."""
        return cls(configuration.states)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[State]:
        return iter(self._states)

    def __getitem__(self, index: int) -> State:
        return self._states[index]

    def __setitem__(self, index: int, new_state: State) -> None:
        self._states[index] = new_state

    __hash__ = None  # mutable buffers must not be used as dict keys

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, MutableConfiguration):
            return self._states == other._states
        if isinstance(other, Configuration):
            return tuple(self._states) == other.states
        if isinstance(other, tuple):
            return tuple(self._states) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"MutableConfiguration({self._states!r})"

    # -- mutation -----------------------------------------------------------

    def apply_interaction(
        self, starter: int, reactor: int, new_starter: State, new_reactor: State
    ) -> None:
        """Apply the outcome of an interaction in place (O(1))."""
        if starter == reactor:
            raise ValueError("an agent cannot interact with itself")
        states = self._states
        states[starter] = new_starter
        states[reactor] = new_reactor

    # -- freeze boundary ----------------------------------------------------

    def freeze(self) -> Configuration:
        """An immutable snapshot of the current buffer contents."""
        return Configuration(self._states)

    # -- read API mirroring Configuration ------------------------------------

    @property
    def states(self) -> Tuple[State, ...]:
        """A tuple snapshot of the current states."""
        return tuple(self._states)

    def _cached_multiset(self) -> Counter:
        # No caching is possible on a mutable buffer; the method only exists
        # so Configuration.same_multiset accepts either class.
        return Counter(self._states)

    def multiset(self) -> Counter:
        """The multiset of states currently in the buffer."""
        return Counter(self._states)

    def count(self, state: State) -> int:
        """Number of agents currently in ``state``."""
        return sum(1 for s in self._states if s == state)

    def count_if(self, predicate: Callable[[State], bool]) -> int:
        """Number of agents whose state satisfies ``predicate``."""
        return sum(1 for s in self._states if predicate(s))

    def indices_of(self, state: State) -> Tuple[int, ...]:
        """Indices of the agents currently in ``state``."""
        return tuple(i for i, s in enumerate(self._states) if s == state)

    def histogram(self) -> Dict[State, int]:
        """A plain ``dict`` mapping each present state to its multiplicity."""
        return dict(Counter(self._states))

    def project(self, projection: Callable[[State], State]) -> Configuration:
        """An immutable snapshot with ``projection`` applied to every state."""
        return Configuration(projection(s) for s in self._states)

    def same_multiset(self, other: Any) -> bool:
        """``True`` when equal to ``other`` up to agent permutation."""
        return Counter(self._states) == other._cached_multiset()


class InterningError(KeyError):
    """Raised when a state cannot be interned (not part of the finite set)."""


class StateInterner:
    """A dense ``state <-> int`` bijection over a finite state set.

    The array engine executes protocols over columnar integer arrays, so
    every finite state space must first be *interned*: state ``i`` of the
    construction order receives code ``i``.  The order is fixed by the
    caller (protocols export a canonical order through ``state_order()``),
    which makes the encoding deterministic across processes — unlike the
    iteration order of a ``frozenset`` of strings, which varies with hash
    randomisation.

    Interners are immutable once built; duplicate states in the input are
    collapsed to their first occurrence, preserving order.
    """

    __slots__ = ("_states", "_codes")

    def __init__(self, states: Iterable[State]) -> None:
        ordered: List[State] = []
        codes: Dict[State, int] = {}
        for state in states:
            if state not in codes:
                codes[state] = len(ordered)
                ordered.append(state)
        if not ordered:
            raise ValueError("cannot intern an empty state set")
        self._states: Tuple[State, ...] = tuple(ordered)
        self._codes = codes

    # -- introspection -------------------------------------------------------

    @property
    def states(self) -> Tuple[State, ...]:
        """The interned states, indexed by their code."""
        return self._states

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, state: State) -> bool:
        return state in self._codes

    def __repr__(self) -> str:
        return f"StateInterner({list(self._states)!r})"

    # -- encoding ------------------------------------------------------------

    def encode(self, state: State) -> int:
        """The code of ``state``; raises :class:`InterningError` when unknown."""
        try:
            return self._codes[state]
        except KeyError:
            known = ", ".join(repr(s) for s in self._states[:8])
            suffix = ", ..." if len(self._states) > 8 else ""
            raise InterningError(
                f"state {state!r} is not in the interned state set "
                f"[{known}{suffix}]"
            ) from None

    def encode_all(self, states: Iterable[State]) -> List[int]:
        """Encode a sequence of states (e.g. a configuration) to codes."""
        codes = self._codes
        try:
            return [codes[state] for state in states]
        except KeyError as error:
            raise self._unknown(error.args[0])

    def _unknown(self, state: State) -> "InterningError":
        try:
            self.encode(state)
        except InterningError as error:
            return error
        raise AssertionError("state was interned after all")  # pragma: no cover

    # -- decoding ------------------------------------------------------------

    def decode(self, code: int) -> State:
        """The state carrying ``code``."""
        return self._states[code]

    def decode_all(self, codes: Iterable[int]) -> List[State]:
        """Decode a sequence of codes back to states."""
        states = self._states
        return [states[code] for code in codes]


class ArrayConfiguration:
    """A read-only configuration view over interned state codes.

    Wraps a sequence of codes (a plain list or a numpy array — this class
    never imports numpy) plus the :class:`StateInterner` that produced them,
    and mirrors the :class:`Configuration` read API by decoding on access.
    Like :class:`MutableConfiguration` it is unhashable and only valid while
    the underlying code array is not mutated; :meth:`freeze` materialises an
    immutable :class:`Configuration` of the original states.
    """

    __slots__ = ("_codes", "_interner")

    def __init__(self, codes: Sequence[int], interner: StateInterner) -> None:
        self._codes = codes
        self._interner = interner

    @property
    def interner(self) -> StateInterner:
        return self._interner

    @property
    def codes(self) -> Sequence[int]:
        """The underlying code sequence (not a copy; do not mutate)."""
        return self._codes

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._codes)

    def __iter__(self) -> Iterator[State]:
        states = self._interner.states
        return (states[code] for code in self._codes)

    def __getitem__(self, index: int) -> State:
        return self._interner.states[self._codes[index]]

    __hash__ = None  # a live view must not be used as a dict key

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, ArrayConfiguration):
            return list(self) == list(other)
        if isinstance(other, (Configuration, MutableConfiguration)):
            return tuple(self) == tuple(other.states)
        if isinstance(other, tuple):
            return tuple(self) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"ArrayConfiguration({list(self)!r})"

    # -- read API mirroring Configuration ------------------------------------

    @property
    def states(self) -> Tuple[State, ...]:
        """A decoded tuple snapshot of the current states."""
        return tuple(self)

    def _cached_multiset(self) -> Counter:
        # No caching on a live view; exists so same_multiset interoperates.
        return Counter(self)

    def multiset(self) -> Counter:
        """The multiset of states currently in the view."""
        return Counter(self)

    def count(self, state: State) -> int:
        """Number of agents currently in ``state`` (0 for unknown states)."""
        if state not in self._interner:
            return 0
        code = self._interner.encode(state)
        return sum(1 for c in self._codes if c == code)

    def count_if(self, predicate: Callable[[State], bool]) -> int:
        """Number of agents whose decoded state satisfies ``predicate``."""
        return sum(1 for s in self if predicate(s))

    def histogram(self) -> Dict[State, int]:
        """A plain ``dict`` mapping each present state to its multiplicity."""
        return dict(Counter(self))

    def project(self, projection: Callable[[State], State]) -> Configuration:
        """An immutable snapshot with ``projection`` applied to every state."""
        return Configuration(projection(s) for s in self)

    def same_multiset(self, other: Any) -> bool:
        """``True`` when equal to ``other`` up to agent permutation."""
        return Counter(self) == other._cached_multiset()

    # -- freeze boundary -----------------------------------------------------

    def freeze(self) -> Configuration:
        """An immutable :class:`Configuration` of the decoded states."""
        states = self._interner.states
        return Configuration(states[code] for code in self._codes)
