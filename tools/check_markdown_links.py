#!/usr/bin/env python3
"""Check that relative markdown links resolve to files in the repository.

Usage::

    python tools/check_markdown_links.py README.md ROADMAP.md docs/

Directories are scanned recursively for ``*.md``.  For every inline link
``[text](target)``:

* external targets (``http(s)://``, ``mailto:``) are skipped — CI must not
  depend on the network;
* pure-anchor targets (``#section``) are skipped;
* everything else is resolved relative to the linking file (any
  ``#fragment`` stripped) and must exist on disk.

Exit status 1 when any link is broken, listing every offender.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links only; reference-style links are not used in this repo.
# Matches [text](target) while ignoring images' leading "!" (checked the same
# way) and stopping at the first unbalanced ")".
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:")

# Documents that must be part of every full check: scanning a directory
# picks them up implicitly, but if one is deleted or renamed the directory
# scan would silently shrink, so their presence is asserted explicitly.
REQUIRED_DOCS = (
    "docs/architecture.md",
    "docs/campaigns.md",
    "docs/invariants.md",
    "docs/observability.md",
    "docs/performance.md",
)


def iter_markdown_files(arguments: list) -> list:
    files = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def check_file(path: Path) -> list:
    """Return ``(line_number, target)`` for every broken link in ``path``."""
    broken = []
    text = path.read_text(encoding="utf-8")
    in_code_fence = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in LINK_PATTERN.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append((line_number, target))
    return broken


def main(argv: list) -> int:
    arguments = argv or ["README.md", "ROADMAP.md", "docs"]
    missing_inputs = [a for a in arguments if not Path(a).exists()]
    if missing_inputs:
        print(f"no such file or directory: {', '.join(missing_inputs)}", file=sys.stderr)
        return 1
    files = iter_markdown_files(arguments)
    covered = {path.as_posix() for path in files}
    missing_docs = [doc for doc in REQUIRED_DOCS
                    if any(Path(a).is_dir() and doc.startswith(f"{a.rstrip('/')}/")
                           for a in arguments) and doc not in covered]
    if missing_docs:
        print(f"required document(s) missing: {', '.join(missing_docs)}",
              file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        for line_number, target in check_file(path):
            print(f"{path}:{line_number}: broken link -> {target}", file=sys.stderr)
            failures += 1
    checked = len(files)
    if failures:
        print(f"{failures} broken link(s) across {checked} file(s)", file=sys.stderr)
        return 1
    print(f"all relative links resolve ({checked} file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
