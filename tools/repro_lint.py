#!/usr/bin/env python
"""Standalone entry point for the determinism-contracts lint pass.

Equivalent to ``repro lint`` but runnable from a checkout without
installing the package::

    python tools/repro_lint.py [paths ...] [--format json]
    python tools/repro_lint.py --select RPL001,RPL004

Exit codes: 0 clean, 1 findings, 2 usage error.  See
``docs/invariants.md`` for the rule catalogue.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.lint.cli import main  # noqa: E402  (path bootstrap must run first)

if __name__ == "__main__":
    sys.exit(main())
