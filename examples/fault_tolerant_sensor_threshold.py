"""Fault-tolerant flock monitoring: threshold counting under omission failures.

The motivating scenario of the population-protocol literature: a flock of
birds, each carrying a tiny sensor; sensors interact when two birds come
close.  The flock must decide whether at least ``k`` birds have an elevated
temperature.  Radio contacts are one-way and lossy: the receiving sensor
sometimes gets nothing (an *omission*), though it can detect that the
transfer failed (model ``I3``).

Knowing an upper bound ``o`` on how many transfers can fail, the ``SKnO``
simulator (Theorem 4.1) runs the standard two-way threshold protocol on this
unreliable one-way substrate — and the answer is still correct, which this
example demonstrates together with the price paid in extra interactions.

Run with::

    python examples/fault_tolerant_sensor_threshold.py
"""

from __future__ import annotations

from repro import (
    BoundedOmissionAdversary,
    RandomScheduler,
    SimulationEngine,
    SKnOSimulator,
    ThresholdProtocol,
    get_model,
    verify_simulation,
)
from repro.engine import run_until_stable
from repro.problems import ThresholdProblem


def monitor_flock(sick_birds: int, healthy_birds: int, threshold: int,
                  omission_bound: int, seed: int = 0):
    """Run one monitoring campaign and return (decision, stats)."""
    protocol = ThresholdProtocol(threshold=threshold)
    problem = ThresholdProblem(ones=sick_birds, zeros=healthy_birds,
                               threshold=threshold, protocol=protocol)
    simulator = SKnOSimulator(protocol, omission_bound=omission_bound)
    model = get_model("I3")

    population = simulator.initial_configuration(problem.initial_configuration())
    n = len(population)
    adversary = BoundedOmissionAdversary(model, max_omissions=omission_bound, seed=seed)
    engine = SimulationEngine(simulator, model, RandomScheduler(n, seed=seed),
                              adversary=adversary)

    expected = problem.expected
    predicate = lambda c: all(
        protocol.output(simulator.project(s)) == expected for s in c)
    outcome = run_until_stable(engine, population, predicate,
                               max_steps=400_000, stability_window=300)
    report = verify_simulation(simulator, outcome.trace)
    final_projected = outcome.trace.final_projected(simulator.project)

    decision = all(
        protocol.output(simulator.project(s)) == expected
        for s in outcome.trace.final_configuration) and expected
    return {
        "n": n,
        "expected": expected,
        "converged": outcome.converged,
        "interactions": outcome.steps_executed,
        "omissions": outcome.trace.omission_count(),
        "verified": report.ok,
        "stable": problem.is_live(final_projected),
        "decision": decision,
    }


def main() -> None:
    threshold = 4
    omission_bound = 2
    scenarios = [
        ("outbreak", 5, 7, 11),      # 5 sick birds >= threshold 4  -> alarm
        ("all clear", 2, 10, 23),    # 2 sick birds < threshold 4   -> no alarm
    ]

    print(f"Flock monitoring: alarm when at least {threshold} birds are sick.")
    print(f"Communication: one-way, lossy (model I3), at most {omission_bound} lost transfers.")
    print()

    for name, sick, healthy, seed in scenarios:
        stats = monitor_flock(sick, healthy, threshold, omission_bound, seed=seed)
        alarm = "ALARM" if stats["decision"] else "no alarm"
        print(f"Scenario {name!r}: {sick} sick / {healthy} healthy birds "
              f"(n={stats['n']})")
        print(f"  expected answer : {'alarm' if stats['expected'] else 'no alarm'}")
        print(f"  flock decided   : {alarm}")
        print(f"  interactions    : {stats['interactions']}")
        print(f"  lost transfers  : {stats['omissions']} (budget {omission_bound})")
        print(f"  simulation OK   : {stats['verified']}, output stable: {stats['stable']}")
        print()

    print("Despite lossy one-way contacts, the simulated two-way protocol reaches the")
    print("correct decision in both scenarios — the content of Theorem 4.1.")


if __name__ == "__main__":
    main()
