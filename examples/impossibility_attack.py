"""The Lemma 1 attack: why omission tolerance is impossible without extra power.

This example makes Theorem 3.1 concrete.  It takes the ``SKnO`` simulator —
perfectly correct as long as the number of omissions stays within its
announced bound ``o`` — and constructs, following Lemma 1 of the paper, a
run with exactly FTT = 2(o+1) omissions that fools it into violating the
safety of the Pairing problem: more consumers enter the irrevocable critical
state than there are producers to pair them with.

The attack is *generic*: it only needs the simulator's Fastest Transition
Time (the number of interactions it needs to simulate a single two-way
interaction between two agents) and then splices together prefixes of that
fastest two-agent run across 2·FTT + 2 agents, redirecting one interaction
per pair to a "victim" agent and masking the redirection with one omission.

Run with::

    python examples/impossibility_attack.py
"""

from __future__ import annotations

from repro import (
    Lemma1Construction,
    PairingProtocol,
    SKnOSimulator,
    get_model,
    one_way_as_two_way,
)
from repro.problems import PairingProblem


def attack(omission_bound: int):
    protocol = PairingProtocol()
    simulator = one_way_as_two_way(SKnOSimulator(protocol, omission_bound=omission_bound))
    construction = Lemma1Construction(simulator, get_model("T3"), q0="p", q1="c")
    result = construction.execute()

    problem = PairingProblem(
        consumers=result.population - result.producers, producers=result.producers)
    problem_report = problem.check(
        result.trace.projected_configurations(simulator.project))
    return result, problem_report


def main() -> None:
    print("Theorem 3.1, executed: fooling SKnO with exactly FTT omissions.")
    print()
    for omission_bound in (1, 2):
        result, problem_report = attack(omission_bound)
        print(f"SKnO announced omission bound o = {omission_bound}")
        print(f"  fastest transition time (FTT)     : {result.ftt} interactions")
        print(f"  attack population                 : {result.population} agents "
              f"({result.producers} producers, {result.population - result.producers} consumers)")
        print(f"  omissions used by the attack      : {result.omissions_used} "
              f"(> o = {omission_bound})")
        print(f"  consumers driven into 'cs'        : {result.q1_to_q1_prime_transitions} "
              f"(safety bound is {result.safety_bound})")
        print(f"  Pairing safety violated           : {result.safety_violated}")
        print(f"  checker verdict                   : "
              f"{len(problem_report.safety_violations)} safety violations recorded")
        print()
    print("Raising the announced bound only raises the attack's cost (FTT = 2(o+1));")
    print("it never removes the vulnerability — which is exactly why the paper proves")
    print("simulation impossible under omissions without additional assumptions.")


if __name__ == "__main__":
    main()
