"""Quickstart: run a two-way protocol directly, then through a simulator.

This example walks through the core workflow of the library:

1. pick a two-way population protocol from the catalog (exact majority);
2. run it on the standard two-way model ``TW`` as ground truth;
3. wrap it in the ``SKnO`` simulator and run it on the weaker Immediate
   Transmission model ``IT`` (one-way communication, Corollary 1);
4. verify that the weak-model execution really is a simulation: extract the
   events, build the perfect matching, replay the derived run
   (Definitions 3 and 4 of the paper).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ExactMajorityProtocol,
    RandomScheduler,
    SimulationEngine,
    SKnOSimulator,
    TrivialTwoWaySimulator,
    get_model,
    verify_simulation,
)
from repro.engine import run_until_stable, stable_output_condition


def run_on_two_way(protocol, count_a: int, count_b: int, seed: int = 1):
    """Ground truth: the protocol on the standard two-way model."""
    baseline = TrivialTwoWaySimulator(protocol)
    config = baseline.initial_configuration(protocol.initial_configuration(count_a, count_b))
    engine = SimulationEngine(baseline, get_model("TW"), RandomScheduler(len(config), seed=seed))
    predicate = stable_output_condition(protocol, "A", projection=baseline.project)
    result = run_until_stable(engine, config, predicate, max_steps=100_000, stability_window=200)
    report = verify_simulation(baseline, result.trace)
    return result, report


def run_on_immediate_transmission(protocol, count_a: int, count_b: int, seed: int = 1):
    """The same protocol, simulated on the one-way IT model by SKnO with o = 0."""
    simulator = SKnOSimulator(protocol, omission_bound=0)
    config = simulator.initial_configuration(protocol.initial_configuration(count_a, count_b))
    engine = SimulationEngine(simulator, get_model("IT"), RandomScheduler(len(config), seed=seed))
    predicate = stable_output_condition(protocol, "A", projection=simulator.project)
    result = run_until_stable(engine, config, predicate, max_steps=200_000, stability_window=200)
    report = verify_simulation(simulator, result.trace)
    return result, report


def main() -> None:
    protocol = ExactMajorityProtocol()
    count_a, count_b = 7, 4   # strict A-majority: the population must stabilise on "A"

    print("Workload: exact majority with", count_a, "A-agents and", count_b, "B-agents")
    print()

    tw_result, tw_report = run_on_two_way(protocol, count_a, count_b)
    print("[TW ]", "converged" if tw_result.converged else "did NOT converge",
          f"after {tw_result.steps_to_convergence} interactions")
    print("[TW ]", tw_report.summary())
    print()

    it_result, it_report = run_on_immediate_transmission(protocol, count_a, count_b)
    print("[IT ]", "converged" if it_result.converged else "did NOT converge",
          f"after {it_result.steps_to_convergence} interactions (through SKnO, o=0)")
    print("[IT ]", it_report.summary())
    print()

    overhead = (it_result.steps_to_convergence or 0) / max(1, tw_result.steps_to_convergence or 1)
    print(f"Price of one-way communication on this run: ~{overhead:.1f}x more interactions")
    print("Both executions stabilise on the correct majority, and the IT trace passes")
    print("the Definition 3/4 verification: the weak model faithfully simulates TW.")


if __name__ == "__main__":
    main()
