"""Simulation on Immediate Observation with unique IDs (Theorem 4.5).

Scenario: a warehouse full of battery-powered asset tags.  A tag can read
nearby tags' broadcasts but never knows whether anyone heard its own
(Immediate Observation: only the reactor learns anything, the starter is
oblivious).  Each tag has a factory-assigned serial number — a unique ID.

Two coordination tasks are run through the ``SID`` simulator:

* leader election — electing a single coordinator tag;
* exact majority — deciding which of two firmware versions is installed on
  more tags, so the minority can be scheduled for update.

Both are plain two-way protocols from the catalog; ``SID`` makes them work
on the observation-only substrate, and the example verifies the executions
against Definitions 3 and 4.

Run with::

    python examples/id_based_simulation.py
"""

from __future__ import annotations

from repro import (
    ExactMajorityProtocol,
    LeaderElectionProtocol,
    RandomScheduler,
    SIDSimulator,
    SimulationEngine,
    get_model,
    verify_simulation,
)
from repro.engine import run_until_stable


def elect_coordinator(serial_numbers, seed=0):
    """Leader election over tags identified by their serial numbers."""
    protocol = LeaderElectionProtocol()
    simulator = SIDSimulator(protocol)
    n = len(serial_numbers)
    config = simulator.initial_configuration(
        protocol.initial_configuration(n), ids=serial_numbers)
    engine = SimulationEngine(simulator, get_model("IO"), RandomScheduler(n, seed=seed))
    predicate = lambda c: sum(1 for s in c if simulator.project(s) == "L") == 1
    outcome = run_until_stable(engine, config, predicate, max_steps=300_000,
                               stability_window=300)
    report = verify_simulation(simulator, outcome.trace)
    leaders = [
        serial for serial, state in zip(serial_numbers, outcome.trace.final_configuration)
        if simulator.project(state) == "L"
    ]
    return leaders, outcome, report


def firmware_majority(version_a_tags, version_b_tags, seed=0):
    """Exact majority between two firmware versions."""
    protocol = ExactMajorityProtocol()
    simulator = SIDSimulator(protocol)
    n = version_a_tags + version_b_tags
    config = simulator.initial_configuration(
        protocol.initial_configuration(version_a_tags, version_b_tags))
    engine = SimulationEngine(simulator, get_model("IO"), RandomScheduler(n, seed=seed))
    expected = protocol.majority_opinion(version_a_tags, version_b_tags)
    predicate = lambda c: all(
        protocol.output(simulator.project(s)) == expected for s in c)
    outcome = run_until_stable(engine, config, predicate, max_steps=300_000,
                               stability_window=300)
    report = verify_simulation(simulator, outcome.trace)
    return expected, outcome, report


def main() -> None:
    serials = [f"TAG-{index:04d}" for index in (17, 23, 42, 57, 61, 88, 91, 99)]
    print(f"Fleet of {len(serials)} asset tags, observation-only radio (IO model).")
    print()

    leaders, outcome, report = elect_coordinator(serials, seed=3)
    print("Leader election through SID:")
    print(f"  coordinator     : {leaders[0] if leaders else 'none'}")
    print(f"  interactions    : {outcome.steps_to_convergence}")
    print(f"  verification    : {report.summary()}")
    print()

    expected, outcome, report = firmware_majority(5, 3, seed=4)
    print("Firmware majority (5 tags on version A, 3 on version B) through SID:")
    print(f"  majority        : version {expected}")
    print(f"  interactions    : {outcome.steps_to_convergence}")
    print(f"  verification    : {report.summary()}")
    print()
    print("Unique IDs are exactly the extra power needed: without them, constant-space")
    print("IO protocols are strictly weaker than two-way ones (see the paper, Section 1.3).")


if __name__ == "__main__":
    main()
