"""Campaigns: declarative parameter sweeps that survive interruption.

This example drives the shipped Figure-4 omission-budget sweep slice
(``figure4_omission_sweep.json``) through the :mod:`repro.campaign` API
and demonstrates the resume contract:

1. run the campaign but stop after three cells (a deterministic stand-in
   for a crash or Ctrl-C mid-grid);
2. ``resume`` — completed cells are skipped by content-addressed id, the
   rest execute;
3. render the report, and check it is byte-identical to the report of an
   uninterrupted run of the same campaign into a second store.

The same flow is available without Python::

    repro campaign run examples/figure4_omission_sweep.json --max-cells 3
    repro campaign resume examples/figure4_omission_sweep.json
    repro campaign report examples/figure4_omission_sweep.json
"""

import os
import tempfile

from repro.campaign import (
    ResultStore,
    campaign_status,
    plan_campaign,
    render_report,
    run_campaign,
)
from repro.campaign.spec import campaign_from_file

SPEC_PATH = os.path.join(os.path.dirname(__file__), "figure4_omission_sweep.json")


def main() -> int:
    campaign = campaign_from_file(SPEC_PATH)
    plan = plan_campaign(campaign)
    print(f"campaign {campaign.name}: {plan.total} cells, "
          f"grid hash {plan.campaign_hash}")

    with tempfile.TemporaryDirectory() as workdir:
        # -- 1. an "interrupted" pass: stop after three cells -----------------
        store_path = os.path.join(workdir, "sweep.results.jsonl")
        store = ResultStore.create(store_path, campaign.name, plan.campaign_hash)
        status = run_campaign(plan, store, max_cells=3)
        assert status.interrupted and status.pending, "expected an early stop"
        print(f"after the interrupted pass: {status.summary()}")

        # -- 2. resume: done cells are skipped, pending ones run --------------
        store = ResultStore.open(store_path, campaign.name, plan.campaign_hash)
        before = len(store.completed_ids())
        status = run_campaign(plan, store, progress=print)
        assert status.complete, "the resumed campaign must finish the grid"
        print(f"resume skipped {before} done cells and executed "
              f"{status.executed_now} more")

        # -- 3. the resumed report is byte-identical to an uninterrupted run --
        resumed_report = render_report(plan, store.cell_records)
        fresh_path = os.path.join(workdir, "fresh.results.jsonl")
        fresh = ResultStore.create(fresh_path, campaign.name, plan.campaign_hash)
        run_campaign(plan, fresh)
        fresh_report = render_report(plan, fresh.cell_records)
        assert resumed_report == fresh_report, "resume must not change the report"
        assert campaign_status(plan, fresh).complete

        print()
        print(resumed_report, end="")
        print()
        print("interrupted+resumed and uninterrupted reports are byte-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
