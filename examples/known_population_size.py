"""Simulation on Immediate Observation knowing only the population size (Theorem 4.6).

Scenario: a sealed batch of exactly ``n`` identical, anonymous sensor motes
is deployed.  The motes have no serial numbers, but the batch size ``n`` is
printed on the box.  Communication is observation-only (IO).

The ``KnownSizeSimulator`` first runs the naming protocol ``Nn`` (agents
bootstrap unique ids 1..n from collisions, using only the knowledge of
``n``), then hands over to ``SID``.  The example shows both phases: how long
naming takes, that the ids really end up being a permutation of 1..n, and
that the simulated two-way protocol (exact majority) then stabilises to the
right answer.

Run with::

    python examples/known_population_size.py
"""

from __future__ import annotations

from repro import (
    ExactMajorityProtocol,
    KnownSizeSimulator,
    RandomScheduler,
    SimulationEngine,
    get_model,
    verify_simulation,
)
from repro.engine import run_until_stable


def run_batch(count_a: int, count_b: int, seed: int = 0):
    protocol = ExactMajorityProtocol()
    n = count_a + count_b
    simulator = KnownSizeSimulator(protocol, population_size=n)
    config = simulator.initial_configuration(protocol.initial_configuration(count_a, count_b))
    engine = SimulationEngine(simulator, get_model("IO"), RandomScheduler(n, seed=seed))

    expected = protocol.majority_opinion(count_a, count_b)
    predicate = lambda c: all(
        protocol.output(simulator.project(s)) == expected for s in c)
    outcome = run_until_stable(engine, config, predicate, max_steps=500_000,
                               stability_window=300)
    report = verify_simulation(simulator, outcome.trace)

    naming_steps = None
    for index, configuration in enumerate(outcome.trace.configurations()):
        if KnownSizeSimulator.naming_complete(configuration):
            naming_steps = index
            break
    ids = KnownSizeSimulator.assigned_ids(outcome.trace.final_configuration)
    return {
        "n": n,
        "expected": expected,
        "converged": outcome.converged,
        "naming_steps": naming_steps,
        "total_steps": outcome.steps_to_convergence,
        "ids": sorted(ids),
        "report": report,
    }


def main() -> None:
    count_a, count_b = 6, 4
    print(f"Sealed batch of {count_a + count_b} anonymous motes; only n is known.")
    print(f"Task: decide the majority firmware ({count_a} x A vs {count_b} x B) on IO.")
    print()

    stats = run_batch(count_a, count_b, seed=11)
    print(f"Naming phase (protocol Nn):")
    print(f"  interactions to assign unique ids : {stats['naming_steps']}")
    print(f"  assigned ids                      : {stats['ids']}")
    print()
    print(f"Simulation phase (SID with the bootstrapped ids):")
    print(f"  majority decided                  : {stats['expected']}")
    print(f"  total interactions to stabilise   : {stats['total_steps']}")
    print(f"  converged                         : {stats['converged']}")
    print(f"  verification                      : {stats['report'].summary()}")
    print()
    print("Knowing n alone is enough to simulate any two-way protocol on IO —")
    print("Theorem 4.6, built as: naming (Lemma 3) + SID (Theorem 4.5).")


if __name__ == "__main__":
    main()
