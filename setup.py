"""Packaging for the ``repro`` library.

The core install is dependency-light on purpose: the python execution
backend, the protocol catalog, the simulators and the verification
machinery need nothing beyond ``networkx`` (interaction graphs).  The
columnar numpy array engine (``--engine-backend array``,
:mod:`repro.engine.backends.array_backend`) lives behind the ``fast``
extra::

    pip install repro          # core, python backend only
    pip install 'repro[fast]'  # + numpy for the array engine

Without the extra, everything imports and runs; requesting the array
backend then fails with an actionable
:class:`~repro.engine.backends.base.BackendUnavailableError`.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Fault-tolerant simulation of population protocols "
        "(ICDCS 2017 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "networkx>=2.6",
    ],
    extras_require={
        # The array engine: Generator.integers chunk draws and the
        # SeedSequence.spawn stream-splitting contract it relies on are
        # stable from numpy 1.22 onward.
        "fast": ["numpy>=1.22"],
    },
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
)
