"""Setuptools shim.

The project is fully described in ``pyproject.toml``; this file exists so
that editable installs keep working on environments without the ``wheel``
package (offline machines where ``pip install -e . --no-use-pep517`` is the
only available editable-install path).
"""

from setuptools import setup

setup()
