"""Unit tests for the simulation engine."""

import pytest

from repro.core.trivial import TrivialTwoWaySimulator
from repro.engine.engine import EngineError, SimulationEngine
from repro.interaction.models import IO, TW, get_model
from repro.interaction.omissions import REACTOR_OMISSION
from repro.protocols.catalog.epidemic import (
    INFORMED,
    SUSCEPTIBLE,
    EpidemicProtocol,
    OneWayEpidemicProtocol,
)
from repro.protocols.catalog.leader_election import LEADER, LeaderElectionProtocol
from repro.protocols.state import Configuration
from repro.scheduling.runs import Interaction, Run
from repro.scheduling.scheduler import RandomScheduler, RoundRobinScheduler, ScriptedScheduler


@pytest.fixture
def tw_epidemic_engine():
    protocol = EpidemicProtocol()
    program = TrivialTwoWaySimulator(protocol)
    return SimulationEngine(program, TW, RoundRobinScheduler(3))


class TestExecuteInteraction:
    def test_two_way_interaction(self, tw_epidemic_engine):
        config = Configuration([INFORMED, SUSCEPTIBLE, SUSCEPTIBLE])
        updated = tw_epidemic_engine.execute_interaction(config, Interaction(0, 1))
        assert updated == Configuration([INFORMED, INFORMED, SUSCEPTIBLE])

    def test_out_of_range_agent(self, tw_epidemic_engine):
        config = Configuration([INFORMED, SUSCEPTIBLE])
        with pytest.raises(EngineError):
            tw_epidemic_engine.execute_interaction(config, Interaction(0, 5))

    def test_one_way_interaction(self):
        engine = SimulationEngine(OneWayEpidemicProtocol(), IO, RoundRobinScheduler(2))
        config = Configuration([INFORMED, SUSCEPTIBLE])
        updated = engine.execute_interaction(config, Interaction(0, 1))
        assert updated == Configuration([INFORMED, INFORMED])


class TestRun:
    def test_run_records_every_interaction(self, tw_epidemic_engine):
        config = Configuration([INFORMED, SUSCEPTIBLE, SUSCEPTIBLE])
        trace = tw_epidemic_engine.run(config, max_steps=10)
        assert len(trace) == 10
        assert trace.initial_configuration == config

    def test_epidemic_spreads_under_round_robin(self, tw_epidemic_engine):
        config = Configuration([INFORMED, SUSCEPTIBLE, SUSCEPTIBLE])
        trace = tw_epidemic_engine.run(config, max_steps=12)
        assert all(state == INFORMED for state in trace.final_configuration)

    def test_stop_condition(self, tw_epidemic_engine):
        config = Configuration([INFORMED, SUSCEPTIBLE, SUSCEPTIBLE])
        trace = tw_epidemic_engine.run(
            config,
            max_steps=100,
            stop_condition=lambda c: all(s == INFORMED for s in c),
        )
        assert len(trace) < 100
        assert all(state == INFORMED for state in trace.final_configuration)

    def test_zero_steps(self, tw_epidemic_engine):
        config = Configuration([INFORMED, SUSCEPTIBLE, SUSCEPTIBLE])
        trace = tw_epidemic_engine.run(config, max_steps=0)
        assert len(trace) == 0
        assert trace.final_configuration == config

    def test_negative_steps_rejected(self, tw_epidemic_engine):
        with pytest.raises(EngineError):
            tw_epidemic_engine.run(Configuration([INFORMED, SUSCEPTIBLE]), max_steps=-1)

    def test_single_agent_population_rejected(self, tw_epidemic_engine):
        with pytest.raises(EngineError):
            tw_epidemic_engine.run(Configuration([INFORMED]), max_steps=5)

    def test_scripted_scheduler_ends_run_early(self):
        protocol = EpidemicProtocol()
        program = TrivialTwoWaySimulator(protocol)
        scheduler = ScriptedScheduler(Run.from_pairs([(0, 1), (1, 2)]))
        engine = SimulationEngine(program, TW, scheduler)
        trace = engine.run(Configuration([INFORMED, SUSCEPTIBLE, SUSCEPTIBLE]), max_steps=50)
        assert len(trace) == 2

    def test_leader_election_reaches_single_leader(self):
        protocol = LeaderElectionProtocol()
        program = TrivialTwoWaySimulator(protocol)
        engine = SimulationEngine(program, TW, RandomScheduler(6, seed=2))
        trace = engine.run(
            Configuration([LEADER] * 6),
            max_steps=5_000,
            stop_condition=lambda c: c.count(LEADER) == 1,
        )
        assert trace.final_configuration.count(LEADER) == 1

    def test_determinism_given_seeded_scheduler(self):
        protocol = LeaderElectionProtocol()
        program = TrivialTwoWaySimulator(protocol)
        config = Configuration([LEADER] * 5)
        traces = []
        for _ in range(2):
            engine = SimulationEngine(program, TW, RandomScheduler(5, seed=77))
            traces.append(engine.run(config, max_steps=200))
        assert traces[0].final_configuration == traces[1].final_configuration
        assert traces[0].run() == traces[1].run()


class TestAdversaryIntegration:
    class OneShotAdversary:
        """Injects a single fixed omissive interaction before scheduled step 2."""

        def __init__(self):
            self.done = False

        def interactions_before(self, step, scheduled, n):
            if step == 2 and not self.done:
                self.done = True
                return [Interaction(0, 1, omission=REACTOR_OMISSION)]
            return []

    def test_adversary_injections_are_executed_and_counted(self):
        protocol = OneWayEpidemicProtocol()
        engine = SimulationEngine(
            protocol, get_model("I1"), RoundRobinScheduler(3), adversary=self.OneShotAdversary()
        )
        config = Configuration([INFORMED, SUSCEPTIBLE, SUSCEPTIBLE])
        trace = engine.run(config, max_steps=20)
        assert trace.omission_count() == 1
        assert len(trace) == 20

    def test_injected_interactions_count_toward_max_steps(self):
        protocol = OneWayEpidemicProtocol()
        engine = SimulationEngine(
            protocol, get_model("I1"), RoundRobinScheduler(3), adversary=self.OneShotAdversary()
        )
        config = Configuration([INFORMED, SUSCEPTIBLE, SUSCEPTIBLE])
        trace = engine.run(config, max_steps=3)
        assert len(trace) == 3


class TestReplay:
    def test_replay_executes_run_verbatim(self):
        protocol = OneWayEpidemicProtocol()
        engine = SimulationEngine(protocol, get_model("I1"), RoundRobinScheduler(2))
        run = Run(
            [
                Interaction(0, 1, omission=REACTOR_OMISSION),
                Interaction(0, 1),
            ]
        )
        trace = engine.replay(Configuration([INFORMED, SUSCEPTIBLE]), run)
        assert len(trace) == 2
        # The omissive observation does not inform agent 1; the second one does.
        assert trace.configuration_at(1) == Configuration([INFORMED, SUSCEPTIBLE])
        assert trace.final_configuration == Configuration([INFORMED, INFORMED])


class FailingScheduler(RoundRobinScheduler):
    """Raises a real (non-exhaustion) error after ``fail_at`` draws."""

    def __init__(self, n, fail_at):
        super().__init__(n)
        self.fail_at = fail_at

    def next_interaction(self, step):
        if step >= self.fail_at:
            raise ValueError("scheduler backend exploded")
        return super().next_interaction(step)


class TestSchedulerErrorPropagation:
    """Real scheduler errors must not be swallowed or re-wrapped as exhaustion."""

    def test_run_propagates_scheduler_errors(self):
        engine = SimulationEngine(
            TrivialTwoWaySimulator(EpidemicProtocol()), TW, FailingScheduler(3, fail_at=2)
        )
        with pytest.raises(ValueError, match="scheduler backend exploded"):
            engine.run(Configuration([INFORMED, SUSCEPTIBLE, SUSCEPTIBLE]), max_steps=10)


class TestBudgetSemantics:
    """max_steps accounting when the budget lands mid-injection-batch."""

    class FloodingAdversary:
        """Injects three omissive interactions before every scheduled one."""

        def interactions_before(self, step, scheduled, n):
            return [Interaction(0, 1, omission=REACTOR_OMISSION) for _ in range(3)]

    def test_trace_when_budget_lands_mid_injection_batch(self):
        # Budget 2, adversary wants 3 injections before the first scheduled
        # interaction: one injection survives (the scheduled interaction has
        # one budget unit reserved), then the scheduled interaction executes.
        engine = SimulationEngine(
            OneWayEpidemicProtocol(),
            get_model("I1"),
            RoundRobinScheduler(3),
            adversary=self.FloodingAdversary(),
        )
        trace = engine.run(Configuration([INFORMED, SUSCEPTIBLE, SUSCEPTIBLE]), max_steps=2)
        assert len(trace) == 2
        interactions = [step.interaction for step in trace]
        assert interactions[0] == Interaction(0, 1, omission=REACTOR_OMISSION)
        assert interactions[1] == Interaction(0, 1)  # the scheduled round-robin pair
        assert trace.omission_count() == 1

    def test_drawn_scheduled_interaction_always_executes(self):
        # Whatever the adversary floods, the last executed interaction of a
        # budget-bounded run is never an injection that starved a drawn
        # scheduled interaction.
        engine = SimulationEngine(
            OneWayEpidemicProtocol(),
            get_model("I1"),
            RoundRobinScheduler(3),
            adversary=self.FloodingAdversary(),
        )
        for budget in (1, 2, 3, 4, 5):
            engine_fresh = SimulationEngine(
                OneWayEpidemicProtocol(),
                get_model("I1"),
                RoundRobinScheduler(3),
                adversary=self.FloodingAdversary(),
            )
            trace = engine_fresh.run(
                Configuration([INFORMED, SUSCEPTIBLE, SUSCEPTIBLE]), max_steps=budget
            )
            assert len(trace) == budget
            assert not trace[-1].interaction.is_omissive


class TestTracePolicies:
    def test_counts_only_matches_full(self):
        def build_engine():
            return SimulationEngine(
                TrivialTwoWaySimulator(LeaderElectionProtocol()),
                TW,
                RandomScheduler(6, seed=9),
            )

        full = build_engine().execute(Configuration([LEADER] * 6), max_steps=500)
        counts = build_engine().execute(
            Configuration([LEADER] * 6), max_steps=500, trace_policy="counts-only"
        )
        assert counts.trace is None
        assert counts.steps == full.steps == len(full.trace)
        assert counts.omissions == full.omissions
        assert counts.final_configuration == full.final_configuration

    def test_ring_keeps_last_k_steps_with_global_indices(self):
        engine = SimulationEngine(
            TrivialTwoWaySimulator(LeaderElectionProtocol()),
            TW,
            RandomScheduler(5, seed=4),
        )
        result = engine.execute(
            Configuration([LEADER] * 5), max_steps=100, trace_policy="ring", ring_size=8
        )
        assert result.trace is None
        assert len(result.last_steps) == 8
        assert [step.index for step in result.last_steps] == list(range(92, 100))
        assert result.steps == 100

    def test_unknown_policy_rejected(self):
        engine = SimulationEngine(
            TrivialTwoWaySimulator(LeaderElectionProtocol()),
            TW,
            RandomScheduler(5, seed=4),
        )
        with pytest.raises(ValueError):
            engine.execute(Configuration([LEADER] * 5), max_steps=10, trace_policy="bogus")
