"""Unit tests for the Figure 1 hierarchy graph."""

import networkx as nx
import pytest

from repro.interaction.hierarchy import (
    HIERARCHY_EDGES,
    OMISSION_AVOIDANCE,
    SPECIAL_CASE,
    edges_with_justification,
    hierarchy_graph,
    is_at_most_as_powerful,
    stronger_models,
    topological_order,
    weaker_models,
)


class TestGraphStructure:
    def test_all_ten_models_are_nodes(self):
        graph = hierarchy_graph()
        assert set(graph.nodes) == {
            "TW", "T1", "T2", "T3", "IT", "IO", "I1", "I2", "I3", "I4"}

    def test_graph_is_a_dag(self):
        assert nx.is_directed_acyclic_graph(hierarchy_graph())

    def test_every_edge_has_justification(self):
        graph = hierarchy_graph()
        for _, _, data in graph.edges(data=True):
            assert data["justification"] in (SPECIAL_CASE, OMISSION_AVOIDANCE)

    def test_tw_is_a_sink(self):
        """TW is the strongest model: no edge leaves it."""
        graph = hierarchy_graph()
        assert graph.out_degree("TW") == 0

    def test_every_model_reaches_tw(self):
        graph = hierarchy_graph()
        for node in graph.nodes:
            assert node == "TW" or nx.has_path(graph, node, "TW")

    def test_node_attributes(self):
        graph = hierarchy_graph()
        assert graph.nodes["IO"]["one_way"] is True
        assert graph.nodes["T3"]["allows_omissions"] is True
        assert graph.nodes["TW"]["allows_omissions"] is False


class TestQueries:
    def test_io_weaker_than_it_and_tw(self):
        assert is_at_most_as_powerful("IO", "IT")
        assert is_at_most_as_powerful("IO", "TW")

    def test_model_is_as_powerful_as_itself(self):
        assert is_at_most_as_powerful("I3", "I3")

    def test_tw_not_weaker_than_io(self):
        assert not is_at_most_as_powerful("TW", "IO")

    def test_t1_chain(self):
        assert is_at_most_as_powerful("T1", "T2")
        assert is_at_most_as_powerful("T1", "T3")
        assert is_at_most_as_powerful("T1", "TW")

    def test_omissive_one_way_weaker_than_it(self):
        for model in ("I1", "I2", "I3", "I4"):
            assert is_at_most_as_powerful(model, "IT")

    def test_weaker_models_of_tw_is_everything(self):
        assert set(weaker_models("TW")) == {
            "T1", "T2", "T3", "IT", "IO", "I1", "I2", "I3", "I4"}

    def test_stronger_models_of_io(self):
        assert "IT" in stronger_models("IO")
        assert "TW" in stronger_models("IO")

    def test_topological_order_ends_with_tw(self):
        order = topological_order()
        assert order[-1] == "TW"
        assert len(order) == 10

    def test_edges_with_justification_partition(self):
        special = edges_with_justification(SPECIAL_CASE)
        avoidance = edges_with_justification(OMISSION_AVOIDANCE)
        assert len(special) + len(avoidance) == len(HIERARCHY_EDGES)
        assert ("T3", "TW") in avoidance
        assert ("IO", "IT") in special

    def test_case_insensitive_lookup(self):
        assert is_at_most_as_powerful("io", "tw")
