"""Integration tests for Theorems 4.5 (SID on IO) and 4.6 (Nn + SID on IO)."""

import pytest

from repro.core.naming import KnownSizeSimulator
from repro.core.sid import SIDSimulator
from repro.core.verification import verify_simulation
from repro.engine.convergence import run_until_stable
from repro.engine.engine import SimulationEngine
from repro.interaction.models import IO, get_model
from repro.problems.pairing import PairingProblem
from repro.protocols.catalog.leader_election import LeaderElectionProtocol
from repro.protocols.catalog.majority import ExactMajorityProtocol
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.state import Configuration
from repro.scheduling.scheduler import RandomScheduler

MAX_STEPS = 200_000
WINDOW = 300


def simulate_and_verify(simulator, config, predicate, seed=0, model=IO):
    engine = SimulationEngine(simulator, model, RandomScheduler(len(config), seed=seed))
    result = run_until_stable(engine, config, predicate, max_steps=MAX_STEPS,
                              stability_window=WINDOW)
    report = verify_simulation(simulator, result.trace)
    return result, report


class TestTheorem45SID:
    def test_exact_majority_on_io(self):
        protocol = ExactMajorityProtocol()
        simulator = SIDSimulator(protocol)
        config = simulator.initial_configuration(protocol.initial_configuration(5, 3))
        predicate = lambda c: all(
            protocol.output(simulator.project(s)) == "A" for s in c)
        result, report = simulate_and_verify(simulator, config, predicate, seed=1)
        assert result.converged
        assert report.ok, report.errors

    def test_leader_election_on_io(self):
        protocol = LeaderElectionProtocol()
        simulator = SIDSimulator(protocol)
        config = simulator.initial_configuration(protocol.initial_configuration(7))
        predicate = lambda c: sum(1 for s in c if simulator.project(s) == "L") == 1
        result, report = simulate_and_verify(simulator, config, predicate, seed=2)
        assert result.converged
        assert report.ok, report.errors

    def test_pairing_on_io_safety_and_liveness(self):
        protocol = PairingProtocol()
        problem = PairingProblem(consumers=3, producers=2)
        simulator = SIDSimulator(protocol)
        config = simulator.initial_configuration(problem.initial_configuration())
        predicate = lambda c: problem.is_live(c.project(simulator.project))
        result, report = simulate_and_verify(simulator, config, predicate, seed=3)
        assert result.converged
        assert report.ok, report.errors
        problem_report = problem.check(
            result.trace.projected_configurations(simulator.project))
        assert problem_report.safe
        assert problem_report.live

    def test_non_integer_ids_are_fine(self):
        """Theorem 4.5 only needs distinct IDs, whatever their type."""
        protocol = LeaderElectionProtocol()
        simulator = SIDSimulator(protocol)
        config = simulator.initial_configuration(
            protocol.initial_configuration(4), ids=["north", "south", "east", "west"])
        predicate = lambda c: sum(1 for s in c if simulator.project(s) == "L") == 1
        result, report = simulate_and_verify(simulator, config, predicate, seed=4)
        assert result.converged
        assert report.ok, report.errors

    def test_sid_tolerates_omissions_inserted_by_uo_adversary(self):
        """Omissions are no-ops for SID under IO-like models (g is the identity):
        the UO adversary slows it down but cannot break it."""
        from repro.adversary.omission import UOAdversary

        protocol = ExactMajorityProtocol()
        simulator = SIDSimulator(protocol)
        config = simulator.initial_configuration(protocol.initial_configuration(4, 2))
        model = get_model("I1")  # IO plus undetectable omissions
        adversary = UOAdversary(model, rate=0.3, seed=5)
        engine = SimulationEngine(simulator, model, RandomScheduler(6, seed=6),
                                  adversary=adversary)
        predicate = lambda c: all(
            protocol.output(simulator.project(s)) == "A" for s in c)
        result = run_until_stable(engine, config, predicate, max_steps=MAX_STEPS,
                                  stability_window=WINDOW)
        report = verify_simulation(simulator, result.trace)
        assert result.converged
        assert result.trace.omission_count() > 0
        assert report.ok, report.errors


class TestTheorem46KnownSize:
    def test_exact_majority_with_knowledge_of_n(self):
        protocol = ExactMajorityProtocol()
        n = 8
        simulator = KnownSizeSimulator(protocol, population_size=n)
        config = simulator.initial_configuration(protocol.initial_configuration(5, 3))
        predicate = lambda c: all(
            protocol.output(simulator.project(s)) == "A" for s in c)
        result, report = simulate_and_verify(simulator, config, predicate, seed=7)
        assert result.converged
        assert report.ok, report.errors

    def test_leader_election_with_knowledge_of_n(self):
        protocol = LeaderElectionProtocol()
        n = 6
        simulator = KnownSizeSimulator(protocol, population_size=n)
        config = simulator.initial_configuration(protocol.initial_configuration(n))
        predicate = lambda c: sum(1 for s in c if simulator.project(s) == "L") == 1
        result, report = simulate_and_verify(simulator, config, predicate, seed=8)
        assert result.converged
        assert report.ok, report.errors

    def test_pairing_with_knowledge_of_n(self):
        protocol = PairingProtocol()
        problem = PairingProblem(consumers=2, producers=2)
        n = 4
        simulator = KnownSizeSimulator(protocol, population_size=n)
        config = simulator.initial_configuration(problem.initial_configuration())
        predicate = lambda c: problem.is_live(c.project(simulator.project))
        result, report = simulate_and_verify(simulator, config, predicate, seed=9)
        assert result.converged
        assert report.ok, report.errors
        problem_report = problem.check(
            result.trace.projected_configurations(simulator.project))
        assert problem_report.safe
        assert problem_report.live

    def test_ids_assigned_before_any_simulated_progress(self):
        """No simulated interaction can complete before both partners are named."""
        protocol = PairingProtocol()
        n = 6
        simulator = KnownSizeSimulator(protocol, population_size=n)
        problem = PairingProblem(consumers=3, producers=3)
        config = simulator.initial_configuration(problem.initial_configuration())
        engine = SimulationEngine(simulator, IO, RandomScheduler(n, seed=10))
        trace = engine.run(config, max_steps=60_000)
        saw_unnamed_progress = False
        for configuration in trace.configurations():
            named = KnownSizeSimulator.naming_complete(configuration)
            critical = configuration.project(simulator.project).count("cs")
            if critical > 0 and not named:
                # Progress before naming completes is possible only among
                # agents that are already named; safety must still hold.
                pass
            if critical > problem.producers:
                saw_unnamed_progress = True
        assert not saw_unnamed_progress, "safety violated during the naming phase"
