"""Unit tests for Interaction and Run datatypes."""

import pytest

from repro.interaction.omissions import NO_OMISSION, REACTOR_OMISSION, Omission
from repro.scheduling.runs import Interaction, Run


class TestInteraction:
    def test_basic_construction(self):
        interaction = Interaction(0, 1)
        assert interaction.pair == (0, 1)
        assert not interaction.is_omissive

    def test_self_interaction_rejected(self):
        with pytest.raises(ValueError):
            Interaction(2, 2)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Interaction(-1, 0)

    def test_omissive_flag(self):
        interaction = Interaction(0, 1, omission=REACTOR_OMISSION)
        assert interaction.is_omissive

    def test_unordered_pair(self):
        assert Interaction(3, 1).unordered_pair == (1, 3)
        assert Interaction(1, 3).unordered_pair == (1, 3)

    def test_involves(self):
        interaction = Interaction(2, 5)
        assert interaction.involves(2)
        assert interaction.involves(5)
        assert not interaction.involves(3)

    def test_with_omission(self):
        interaction = Interaction(0, 1).with_omission(REACTOR_OMISSION)
        assert interaction.is_omissive
        assert interaction.pair == (0, 1)

    def test_relabel(self):
        interaction = Interaction(0, 1, omission=REACTOR_OMISSION)
        relabeled = interaction.relabel({0: 4, 1: 5})
        assert relabeled.pair == (4, 5)
        assert relabeled.is_omissive

    def test_relabel_partial_mapping(self):
        assert Interaction(0, 1).relabel({0: 9}).pair == (9, 1)

    def test_str_mentions_omission(self):
        assert "omission" in str(Interaction(0, 1, omission=REACTOR_OMISSION))
        assert "omission" not in str(Interaction(0, 1))

    def test_hashable_and_frozen(self):
        assert len({Interaction(0, 1), Interaction(0, 1)}) == 1


class TestOmission:
    def test_no_omission_properties(self):
        assert not NO_OMISSION.is_omissive
        assert not NO_OMISSION.is_full

    def test_full_omission(self):
        omission = Omission(True, True)
        assert omission.is_omissive
        assert omission.is_full

    def test_str(self):
        assert str(NO_OMISSION) == "no-omission"
        assert "starter" in str(Omission(starter_lost=True))
        assert "reactor" in str(Omission(reactor_lost=True))


class TestRun:
    def test_empty_run(self):
        run = Run()
        assert len(run) == 0
        assert run.omission_count() == 0
        assert run.agents() == ()

    def test_from_pairs(self):
        run = Run.from_pairs([(0, 1), (1, 2)])
        assert len(run) == 2
        assert run[0] == Interaction(0, 1)

    def test_indexing_and_slicing(self):
        run = Run.from_pairs([(0, 1), (1, 2), (2, 0)])
        assert run[1].pair == (1, 2)
        assert isinstance(run[:2], Run)
        assert len(run[:2]) == 2

    def test_omission_count(self):
        run = Run([Interaction(0, 1), Interaction(1, 0, omission=REACTOR_OMISSION)])
        assert run.omission_count() == 1

    def test_agents(self):
        run = Run.from_pairs([(0, 3), (3, 5)])
        assert run.agents() == (0, 3, 5)

    def test_restricted_to(self):
        run = Run.from_pairs([(0, 1), (1, 2), (0, 2)])
        restricted = run.restricted_to({0, 1})
        assert len(restricted) == 1
        assert restricted[0].pair == (0, 1)

    def test_interactions_involving(self):
        run = Run.from_pairs([(0, 1), (1, 2), (2, 3)])
        assert len(run.interactions_involving(1)) == 2

    def test_append_and_extend_are_pure(self):
        run = Run.from_pairs([(0, 1)])
        longer = run.append(Interaction(1, 2)).extend([Interaction(2, 0)])
        assert len(run) == 1
        assert len(longer) == 3

    def test_concatenate(self):
        first = Run.from_pairs([(0, 1)])
        second = Run.from_pairs([(1, 2)])
        assert len(first.concatenate(second)) == 2

    def test_insert(self):
        run = Run.from_pairs([(0, 1), (1, 2)])
        inserted = run.insert(1, [Interaction(2, 3)])
        assert [i.pair for i in inserted] == [(0, 1), (2, 3), (1, 2)]

    def test_relabel(self):
        run = Run.from_pairs([(0, 1)])
        assert run.relabel({0: 7, 1: 8})[0].pair == (7, 8)

    def test_without_omissions(self):
        run = Run([Interaction(0, 1, omission=REACTOR_OMISSION)])
        assert run.without_omissions().omission_count() == 0
        assert run.omission_count() == 1

    def test_equality_and_hash(self):
        assert Run.from_pairs([(0, 1)]) == Run.from_pairs([(0, 1)])
        assert len({Run.from_pairs([(0, 1)]), Run.from_pairs([(0, 1)])}) == 1

    def test_repr_contains_length(self):
        assert "len=2" in repr(Run.from_pairs([(0, 1), (1, 0)]))
