"""Property-based tests for SKnO's token bookkeeping invariants (hypothesis).

The liveness and safety arguments of Theorem 4.1 rest on conservation
properties of tokens and jokers; these tests check them over randomly
generated executions with randomly placed (bounded) omissions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.skno import ChangeToken, JokerToken, SKnOSimulator, StateToken
from repro.engine.engine import SimulationEngine
from repro.interaction.models import get_model
from repro.interaction.omissions import NO_OMISSION, REACTOR_OMISSION
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.state import Configuration
from repro.scheduling.runs import Interaction, Run

protocol = PairingProtocol()


def random_run(draw_pairs, omission_positions, n):
    interactions = []
    for index, (starter, reactor) in enumerate(draw_pairs):
        starter, reactor = starter % n, reactor % n
        if starter == reactor:
            reactor = (reactor + 1) % n
        omission = REACTOR_OMISSION if index in omission_positions else NO_OMISSION
        interactions.append(Interaction(starter, reactor, omission=omission))
    return Run(interactions)


@st.composite
def skno_scenario(draw):
    omission_bound = draw(st.integers(min_value=0, max_value=2))
    n = draw(st.integers(min_value=2, max_value=5))
    length = draw(st.integers(min_value=0, max_value=60))
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)),
            min_size=length, max_size=length,
        )
    )
    omission_positions = set(
        draw(
            st.lists(
                st.integers(0, max(0, length - 1)),
                min_size=0, max_size=omission_bound,
                unique=True,
            )
        )
    )
    consumers = draw(st.integers(min_value=1, max_value=n - 1))
    return omission_bound, n, pairs, omission_positions, consumers


def run_scenario(omission_bound, n, pairs, omission_positions, consumers):
    simulator = SKnOSimulator(protocol, omission_bound=omission_bound)
    p_config = Configuration(["c"] * consumers + ["p"] * (n - consumers))
    config = simulator.initial_configuration(p_config)
    run = random_run(pairs, omission_positions, n)
    engine = SimulationEngine(simulator, get_model("I3"), scheduler=None)
    trace = engine.replay(config, run)
    return simulator, p_config, trace


def all_tokens(configuration):
    for state in configuration:
        for token in state.sending:
            yield token


class TestTokenInvariants:
    @given(skno_scenario())
    @settings(max_examples=60, deadline=None)
    def test_joker_count_never_exceeds_omissions(self, scenario):
        simulator, _, trace = run_scenario(*scenario)
        omissions = trace.omission_count()
        for configuration in trace.configurations():
            jokers = sum(1 for token in all_tokens(configuration) if isinstance(token, JokerToken))
            assert jokers <= omissions

    @given(skno_scenario())
    @settings(max_examples=60, deadline=None)
    def test_per_run_token_count_never_exceeds_run_length(self, scenario):
        """No run of tokens <q, *> (or change tokens) ever has more than o+1
        distinct indices in circulation."""
        simulator, _, trace = run_scenario(*scenario)
        run_length = simulator.run_length
        for configuration in trace.configurations():
            index_sets = {}
            for token in all_tokens(configuration):
                if isinstance(token, StateToken):
                    key = ("state", token.state)
                    index_sets.setdefault(key, set()).add(token.index)
                elif isinstance(token, ChangeToken):
                    key = ("change", token.starter_state, token.reactor_old_state)
                    index_sets.setdefault(key, set()).add(token.index)
            for indices in index_sets.values():
                assert max(indices) <= run_length

    @given(skno_scenario())
    @settings(max_examples=60, deadline=None)
    def test_pairing_safety_holds_within_omission_bound(self, scenario):
        """Within the announced bound, the simulated Pairing safety is never violated."""
        simulator, p_config, trace = run_scenario(*scenario)
        producers = p_config.count("p")
        for configuration in trace.projected_configurations(simulator.project):
            assert configuration.count("cs") <= producers

    @given(skno_scenario())
    @settings(max_examples=60, deadline=None)
    def test_simulated_multiset_reachable(self, scenario):
        """Consumer-side and producer-side populations are conserved."""
        simulator, p_config, trace = run_scenario(*scenario)
        consumers = p_config.count("c")
        producers = p_config.count("p")
        final = trace.final_projected(simulator.project)
        assert final.count("c") + final.count("cs") == consumers
        assert final.count("p") + final.count("bot") == producers

    @given(skno_scenario())
    @settings(max_examples=40, deadline=None)
    def test_verification_never_reports_violation_within_bound(self, scenario):
        from repro.core.verification import verify_simulation

        simulator, _, trace = run_scenario(*scenario)
        report = verify_simulation(simulator, trace)
        assert report.invalid_pairs == 0
        assert report.derived_consistent, report.errors

    @given(skno_scenario())
    @settings(max_examples=40, deadline=None)
    def test_states_remain_hashable_and_projectable(self, scenario):
        simulator, _, trace = run_scenario(*scenario)
        final = trace.final_configuration
        assert len({hash(state) for state in final}) >= 1
        for state in final:
            assert simulator.project(state) in protocol.states
