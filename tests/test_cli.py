"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "exact-majority"
        assert args.model == "TW"
        assert args.simulator == "none"

    def test_attack_kinds(self):
        args = build_parser().parse_args(["attack", "lemma1"])
        assert args.kind == "lemma1"
        args = build_parser().parse_args(["attack", "no1", "--model", "I2"])
        assert args.model == "I2"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "nonsense"])


class TestRunCommand:
    def test_two_way_baseline(self, capsys):
        exit_code = main([
            "run", "--protocol", "exact-majority", "--model", "TW",
            "--population", "8", "--seed", "1", "--max-steps", "50000",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "converged" in output
        assert "OK" in output

    def test_skno_on_i3_with_omissions(self, capsys):
        exit_code = main([
            "run", "--protocol", "leader-election", "--model", "I3",
            "--simulator", "skno", "--omission-bound", "1", "--omissions", "1",
            "--population", "6", "--seed", "2", "--max-steps", "150000",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "SKnO" in output

    def test_sid_on_io(self, capsys):
        exit_code = main([
            "run", "--protocol", "exact-majority", "--model", "IO",
            "--simulator", "sid", "--population", "6", "--seed", "3",
            "--max-steps", "150000",
        ])
        assert exit_code == 0
        assert "SID" in capsys.readouterr().out

    def test_known_n_on_io(self, capsys):
        exit_code = main([
            "run", "--protocol", "pairing", "--model", "IO",
            "--simulator", "known-n", "--population", "4", "--seed", "4",
            "--max-steps", "200000",
        ])
        assert exit_code == 0
        assert "Nn+SID" in capsys.readouterr().out

    def test_weak_model_without_simulator_is_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--protocol", "exact-majority", "--model", "IO"])

    def test_omissions_on_non_omissive_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--protocol", "exact-majority", "--model", "TW", "--omissions", "2"])

    def test_threshold_protocol_with_parameters(self, capsys):
        exit_code = main([
            "run", "--protocol", "threshold", "--threshold", "3", "--ones", "4",
            "--model", "TW", "--population", "7", "--seed", "5", "--max-steps", "50000",
        ])
        assert exit_code == 0
        assert "threshold-3" in capsys.readouterr().out


class TestRunBackendsAndRing:
    def test_runs_with_process_backend(self, capsys):
        exit_code = main([
            "run", "--protocol", "exact-majority", "--population", "8",
            "--runs", "4", "--jobs", "2", "--backend", "process",
            "--trace-policy", "counts-only", "--max-steps", "50000", "--seed", "5",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "process" in output
        assert "4/4" in output

    def test_thread_and_process_backends_report_identical_statistics(self, capsys):
        common = [
            "run", "--protocol", "exact-majority", "--population", "8",
            "--runs", "4", "--jobs", "2", "--trace-policy", "counts-only",
            "--max-steps", "50000", "--seed", "5",
        ]
        assert main(common + ["--backend", "thread"]) == 0
        thread_out = capsys.readouterr().out
        assert main(common + ["--backend", "process"]) == 0
        process_out = capsys.readouterr().out

        def stats(output):
            return [line for line in output.splitlines()
                    if "interactions to stabilise" in line or "successes" in line]

        assert stats(thread_out) == stats(process_out)

    def test_run_chunk_and_chunk_size_preserve_statistics(self, capsys):
        common = [
            "run", "--protocol", "exact-majority", "--population", "8",
            "--runs", "5", "--jobs", "2", "--trace-policy", "counts-only",
            "--max-steps", "50000", "--seed", "5", "--backend", "process",
        ]
        assert main(common) == 0
        reference_out = capsys.readouterr().out
        assert main(common + ["--run-chunk", "2", "--chunk-size", "16"]) == 0
        chunked_out = capsys.readouterr().out

        def stats(output):
            return [line for line in output.splitlines()
                    if "interactions to stabilise" in line or "successes" in line]

        assert stats(chunked_out) == stats(reference_out)

    def test_chunk_size_on_single_runs(self, capsys):
        exit_code = main([
            "run", "--protocol", "exact-majority", "--population", "8",
            "--seed", "1", "--max-steps", "50000", "--chunk-size", "1",
        ])
        assert exit_code == 0
        assert "converged" in capsys.readouterr().out

    def test_invalid_run_chunk_rejected(self):
        with pytest.raises(SystemExit, match="run-chunk"):
            main(["run", "--runs", "2", "--run-chunk", "0"])

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(SystemExit, match="chunk-size"):
            main(["run", "--chunk-size", "0"])

    def test_ring_policy_dumps_last_interactions_on_non_convergence(self, capsys):
        exit_code = main([
            "run", "--protocol", "leader-election", "--population", "6",
            "--trace-policy", "ring", "--ring-size", "5", "--max-steps", "40",
            "--stability-window", "300", "--seed", "7",
        ])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "crash dump" in output
        assert "last 5 interactions" in output

    def test_ring_dump_with_repeated_runs(self, capsys):
        """--runs > 1 honours --ring-size and dumps failing runs' windows."""
        exit_code = main([
            "run", "--protocol", "leader-election", "--population", "6",
            "--runs", "2", "--trace-policy", "ring", "--ring-size", "4",
            "--max-steps", "40", "--stability-window", "300", "--seed", "7",
        ])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "run 0 did not converge" in output
        assert "last 4 interactions" in output

    def test_ring_policy_silent_on_convergence(self, capsys):
        exit_code = main([
            "run", "--protocol", "leader-election", "--population", "4",
            "--trace-policy", "ring", "--max-steps", "100000", "--seed", "1",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "crash dump" not in output


class TestAttackCommand:
    def test_lemma1_attack_reports_violation(self, capsys):
        exit_code = main(["attack", "lemma1", "--omission-bound", "1"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "safety violated" in output
        assert "True" in output

    def test_no1_attack_in_weak_model(self, capsys):
        exit_code = main(["attack", "no1", "--model", "I1", "--max-steps", "15000"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "VIOLATED" in output


class TestInformationCommands:
    def test_map(self, capsys):
        assert main(["map"]) == 0
        output = capsys.readouterr().out
        assert "TW" in output and "I3" in output and "?" in output

    def test_hierarchy(self, capsys):
        assert main(["hierarchy"]) == 0
        output = capsys.readouterr().out
        assert "IO -> IT" in output
        assert "weakest to strongest" in output
