"""Unit tests for the schedulers."""

import pytest

from repro.scheduling.runs import Interaction, Run
from repro.scheduling.scheduler import (
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    SchedulerExhausted,
    WeightedPairScheduler,
)


class TestRandomScheduler:
    def test_requires_two_agents(self):
        with pytest.raises(ValueError):
            RandomScheduler(1)

    def test_generates_valid_interactions(self):
        scheduler = RandomScheduler(5, seed=0)
        for step in range(200):
            interaction = scheduler.next_interaction(step)
            assert 0 <= interaction.starter < 5
            assert 0 <= interaction.reactor < 5
            assert interaction.starter != interaction.reactor
            assert not interaction.is_omissive

    def test_deterministic_with_seed(self):
        first = [RandomScheduler(4, seed=42).next_interaction(i) for i in range(50)]
        second = [RandomScheduler(4, seed=42).next_interaction(i) for i in range(50)]
        assert first == second

    def test_different_seeds_differ(self):
        first = [RandomScheduler(4, seed=1).next_interaction(i) for i in range(50)]
        second = [RandomScheduler(4, seed=2).next_interaction(i) for i in range(50)]
        assert first != second

    def test_reset_restores_sequence(self):
        scheduler = RandomScheduler(4, seed=7)
        first = [scheduler.next_interaction(i) for i in range(20)]
        scheduler.reset()
        second = [scheduler.next_interaction(i) for i in range(20)]
        assert first == second

    def test_covers_all_ordered_pairs_eventually(self):
        scheduler = RandomScheduler(3, seed=3)
        seen = {scheduler.next_interaction(i).pair for i in range(500)}
        assert seen == {(s, r) for s in range(3) for r in range(3) if s != r}

    def test_roughly_uniform(self):
        scheduler = RandomScheduler(3, seed=11)
        counts = {}
        total = 6000
        for step in range(total):
            pair = scheduler.next_interaction(step).pair
            counts[pair] = counts.get(pair, 0) + 1
        expected = total / 6
        for pair, count in counts.items():
            assert abs(count - expected) < expected * 0.3, f"pair {pair} far from uniform"


class TestScriptedScheduler:
    def test_replays_run_in_order(self):
        run = Run.from_pairs([(0, 1), (1, 2), (2, 0)])
        scheduler = ScriptedScheduler(run)
        assert [scheduler.next_interaction(i).pair for i in range(3)] == [
            (0, 1), (1, 2), (2, 0)]

    def test_exhaustion(self):
        scheduler = ScriptedScheduler(Run.from_pairs([(0, 1)]))
        scheduler.next_interaction(0)
        with pytest.raises(SchedulerExhausted):
            scheduler.next_interaction(1)

    def test_continuation(self):
        scheduler = ScriptedScheduler(
            Run.from_pairs([(0, 1)]), continuation=RoundRobinScheduler(3)
        )
        assert scheduler.next_interaction(0).pair == (0, 1)
        assert scheduler.next_interaction(1).pair == (0, 1)  # round-robin's first pair
        assert scheduler.next_interaction(2).pair == (0, 2)

    def test_iteration_stops_at_exhaustion(self):
        scheduler = ScriptedScheduler(Run.from_pairs([(0, 1), (1, 0)]))
        assert len(list(scheduler)) == 2


class TestWeightedScheduler:
    def test_zero_weight_pairs_never_chosen(self):
        scheduler = WeightedPairScheduler(
            3, weights={(0, 1): 1.0, (1, 2): 0.0}, seed=0)
        pairs = {scheduler.next_interaction(i).pair for i in range(200)}
        assert pairs == {(0, 1)}

    def test_rejects_self_pairs(self):
        with pytest.raises(ValueError):
            WeightedPairScheduler(3, weights={(1, 1): 1.0})

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            WeightedPairScheduler(3, weights={(0, 9): 1.0})

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            WeightedPairScheduler(3, weights={(0, 1): -1.0})

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            WeightedPairScheduler(3, weights={(0, 1): 0.0})

    def test_respects_relative_weights(self):
        scheduler = WeightedPairScheduler(
            3, weights={(0, 1): 3.0, (1, 2): 1.0}, seed=5)
        counts = {(0, 1): 0, (1, 2): 0}
        for step in range(4000):
            counts[scheduler.next_interaction(step).pair] += 1
        ratio = counts[(0, 1)] / counts[(1, 2)]
        assert 2.0 < ratio < 4.5

    def test_reset(self):
        scheduler = WeightedPairScheduler(3, weights={(0, 1): 1.0, (1, 2): 1.0}, seed=9)
        first = [scheduler.next_interaction(i).pair for i in range(30)]
        scheduler.reset()
        second = [scheduler.next_interaction(i).pair for i in range(30)]
        assert first == second


class TestRoundRobinScheduler:
    def test_cycles_through_all_pairs(self):
        scheduler = RoundRobinScheduler(3)
        pairs = [scheduler.next_interaction(i).pair for i in range(6)]
        assert pairs == [(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)]

    def test_wraps_around(self):
        scheduler = RoundRobinScheduler(3)
        assert scheduler.next_interaction(6).pair == (0, 1)

    def test_requires_two_agents(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(1)
