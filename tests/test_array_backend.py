"""Equivalence suite for the columnar numpy array backend.

The array engine's contract (:mod:`repro.engine.backends.array_backend`)
has four legs, each pinned here:

1. **Internal determinism** — bitwise self-reproducibility for a given
   seed, and full independence from ``chunk_size`` (including the numpy
   ``Generator.integers`` stream-consumption property the draw kernels
   rely on).
2. **Exact semantic agreement** with the python backend on everything
   deterministic: budget exhaustion, immediate convergence, stop-at-streak
   semantics, and — on the deterministic round-robin scheduler, where both
   backends execute the *same* interaction sequence — bit-for-bit equality
   of final configurations, step counts and convergence points.
3. **Distributional agreement** on stochastic runs: the backends use
   different RNGs (``random.Random`` vs ``PCG64``), so convergence-step
   samples are compared with a rank-sum test (fixed seeds, deterministic).
4. **Clear refusal** of everything non-compilable: unbounded programs,
   unsupported schedulers, non-catalog adversary classes, non-count
   predicates, the full trace policy, arbitrary stop conditions.
   (Catalog adversaries and the ring trace policy compile since the
   injection-schedule lowering; their equivalence suite lives in
   ``tests/test_array_adversary_equivalence.py``.)

Plus the new experiment surface: ``--engine-backend`` through the CLI, and
``ExperimentSpec.backend`` through the thread and process fan-outs.
"""

from __future__ import annotations

import math
import pickle

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.skno import SKnOSimulator
from repro.core.trivial import TrivialTwoWaySimulator
from repro.engine.backends import BackendCompileError, get_backend
from repro.engine.convergence import run_until_stable
from repro.engine.engine import SimulationEngine
from repro.engine.experiment import repeat_experiment
from repro.engine.fastpath import AgentCountPredicate
from repro.interaction.models import get_model
from repro.protocols.catalog.epidemic import EpidemicProtocol, OneWayEpidemicProtocol
from repro.protocols.catalog.leader_election import LeaderElectionProtocol
from repro.protocols.catalog.majority import ExactMajorityProtocol
from repro.protocols.registry import ExperimentSpec
from repro.protocols.state import Configuration
from repro.scheduling.array_draws import compile_scheduler
from repro.scheduling.graph_scheduler import ring_scheduler
from repro.scheduling.runs import Interaction, Run
from repro.scheduling.scheduler import (
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    WeightedPairScheduler,
)

TW = get_model("TW")


def epidemic_system(n):
    program = TrivialTwoWaySimulator(EpidemicProtocol())
    initial = Configuration(["I"] + ["S"] * (n - 1))
    predicate = lambda: AgentCountPredicate(lambda s: s == "I")  # noqa: E731
    return program, initial, predicate


def leader_system(n):
    program = TrivialTwoWaySimulator(LeaderElectionProtocol())
    initial = Configuration(["L"] * n)
    predicate = lambda: AgentCountPredicate(lambda s: s == "L", target=1)  # noqa: E731
    return program, initial, predicate


def majority_system(n):
    program = TrivialTwoWaySimulator(ExactMajorityProtocol())
    count_a = n // 2 + 1
    initial = Configuration(["A"] * count_a + ["B"] * (n - count_a))
    output = ExactMajorityProtocol().output
    predicate = lambda: AgentCountPredicate(lambda s: output(s) == "A")  # noqa: E731
    return program, initial, predicate


SYSTEMS = {
    "epidemic": epidemic_system,
    "leader-election": leader_system,
    "exact-majority": majority_system,
}


def result_fingerprint(result):
    return (
        result.converged,
        result.steps_executed,
        result.steps_to_convergence,
        result.final_configuration.states,
        result.omissions,
    )


# ---------------------------------------------------------------------------
# 1. internal determinism
# ---------------------------------------------------------------------------


class TestInternalDeterminism:
    @pytest.mark.parametrize("system", sorted(SYSTEMS))
    def test_seed_reproducibility(self, system):
        fingerprints = set()
        for _ in range(2):
            program, initial, predicate = SYSTEMS[system](40)
            engine = SimulationEngine(
                program, TW, RandomScheduler(40, seed=11), backend="array")
            outcome = run_until_stable(
                engine, initial, predicate(), max_steps=30_000,
                stability_window=5, trace_policy="counts-only")
            fingerprints.add(result_fingerprint(outcome))
        assert len(fingerprints) == 1

    def test_engine_reuse_continues_the_draw_stream(self):
        # Like the python backend's random.Random state, the kernel stream
        # advances across runs on one engine: back-to-back runs must not
        # replay the same interaction sequence from the seed.
        program, initial, _ = SYSTEMS["leader-election"](40)
        engine = SimulationEngine(
            program, TW, RandomScheduler(40, seed=2), backend="array")
        first = engine.execute(initial, 400, trace_policy="counts-only")
        second = engine.execute(initial, 400, trace_policy="counts-only")
        assert (first.final_configuration.states
                != second.final_configuration.states)

    def test_scheduler_reset_replays_the_stream_from_the_seed(self):
        program, initial, _ = SYSTEMS["leader-election"](40)
        scheduler = RandomScheduler(40, seed=2)
        engine = SimulationEngine(program, TW, scheduler, backend="array")
        first = engine.execute(initial, 400, trace_policy="counts-only")
        scheduler.reset()
        replayed = engine.execute(initial, 400, trace_policy="counts-only")
        assert (first.final_configuration.states
                == replayed.final_configuration.states)

    def test_different_seeds_differ(self):
        finals = set()
        for seed in range(6):
            program, initial, _ = SYSTEMS["leader-election"](30)
            engine = SimulationEngine(
                program, TW, RandomScheduler(30, seed=seed), backend="array")
            outcome = engine.execute(initial, 5_000, trace_policy="counts-only")
            finals.add(outcome.final_configuration.states)
        assert len(finals) > 1, "seeds should produce different leaders"

    @settings(max_examples=20, deadline=None)
    @given(
        chunk=st.integers(min_value=1, max_value=700),
        seed=st.integers(min_value=0, max_value=50),
        system=st.sampled_from(sorted(SYSTEMS)),
    )
    def test_chunk_size_independence_random_scheduler(self, chunk, seed, system):
        def run(chunk_size):
            program, initial, predicate = SYSTEMS[system](25)
            engine = SimulationEngine(
                program, TW, RandomScheduler(25, seed=seed), backend="array")
            return result_fingerprint(run_until_stable(
                engine, initial, predicate(), max_steps=4_000,
                stability_window=3, trace_policy="counts-only",
                chunk_size=chunk_size))

        assert run(chunk) == run(None)

    @pytest.mark.parametrize("chunk", [1, 7, 256, 4096])
    def test_chunk_size_independence_graph_scheduler(self, chunk):
        def run(chunk_size):
            program, initial, predicate = SYSTEMS["epidemic"](24)
            engine = SimulationEngine(
                program, TW, ring_scheduler(24, seed=9), backend="array")
            return result_fingerprint(run_until_stable(
                engine, initial, predicate(), max_steps=8_000,
                stability_window=4, trace_policy="counts-only",
                chunk_size=chunk_size))

        assert run(chunk) == run(None)


# ---------------------------------------------------------------------------
# 2. exact agreement with the python backend
# ---------------------------------------------------------------------------


def run_both(system, scheduler_factory, n, max_steps, window, chunk=None):
    outcomes = []
    for backend in ("python", "array"):
        program, initial, predicate = SYSTEMS[system](n)
        engine = SimulationEngine(
            program, TW, scheduler_factory(), backend=backend)
        outcomes.append(run_until_stable(
            engine, initial, predicate(), max_steps=max_steps,
            stability_window=window, trace_policy="counts-only",
            chunk_size=chunk))
    return outcomes


class TestExactAgreement:
    @pytest.mark.parametrize("system", sorted(SYSTEMS))
    @pytest.mark.parametrize("window", [0, 3, 17])
    def test_round_robin_runs_agree_bit_for_bit(self, system, window):
        python, array = run_both(
            system, lambda: RoundRobinScheduler(18), 18,
            max_steps=6_000, window=window)
        assert result_fingerprint(python) == result_fingerprint(array)

    @pytest.mark.parametrize("max_steps", [0, 1, 37, 2_000])
    def test_round_robin_execute_agrees_at_every_budget(self, max_steps):
        finals = []
        for backend in ("python", "array"):
            program, initial, _ = SYSTEMS["exact-majority"](12)
            engine = SimulationEngine(
                program, TW, RoundRobinScheduler(12), backend=backend)
            outcome = engine.execute(
                initial, max_steps, trace_policy="counts-only")
            assert outcome.steps == max_steps
            finals.append(outcome.final_configuration.states)
        assert finals[0] == finals[1]

    def test_budget_exhaustion_is_exact(self):
        # Leader election among n=2 from a single leader can never converge
        # to... it already has 1 leader; use a predicate that never holds.
        program, initial, _ = SYSTEMS["epidemic"](20)
        impossible = AgentCountPredicate(lambda s: s == "I", target=21)
        engine = SimulationEngine(
            program, TW, RandomScheduler(20, seed=3), backend="array")
        outcome = run_until_stable(
            engine, initial, impossible, max_steps=1_234,
            trace_policy="counts-only")
        assert not outcome.converged
        assert outcome.steps_executed == 1_234
        assert outcome.steps_to_convergence is None

    def test_immediate_convergence_matches_python(self):
        for backend in ("python", "array"):
            program, initial, _ = SYSTEMS["epidemic"](10)
            all_susceptible_or_informed = AgentCountPredicate(
                lambda s: s in ("S", "I"))
            engine = SimulationEngine(
                program, TW, RandomScheduler(10, seed=0), backend=backend)
            outcome = run_until_stable(
                engine, initial, all_susceptible_or_informed,
                max_steps=100, trace_policy="counts-only")
            assert outcome.converged
            assert outcome.steps_executed == 0
            assert outcome.steps_to_convergence == 0
            assert outcome.final_configuration == initial

    def test_stop_is_at_the_first_streak_completion(self):
        # On round-robin the exact stop step is reproducible: re-running
        # with the stop step as the budget must land on the same final
        # configuration, and one step less must not yet have converged.
        python, array = run_both(
            "leader-election", lambda: RoundRobinScheduler(9), 9,
            max_steps=2_000, window=6)
        assert array.converged
        assert result_fingerprint(python) == result_fingerprint(array)
        program, initial, predicate = SYSTEMS["leader-election"](9)
        engine = SimulationEngine(
            program, TW, RoundRobinScheduler(9), backend="array")
        shorter = run_until_stable(
            engine, initial, predicate(),
            max_steps=array.steps_executed - 1,
            stability_window=6, trace_policy="counts-only")
        assert not shorter.converged

    def test_one_way_epidemic_on_io_model(self):
        # The array backend compiles one-way programs through their model
        # exactly like two-way ones.
        io_model = get_model("IO")
        for backend in ("python", "array"):
            engine = SimulationEngine(
                OneWayEpidemicProtocol(), io_model, RoundRobinScheduler(12),
                backend=backend)
            outcome = run_until_stable(
                engine, Configuration(["I"] + ["S"] * 11),
                AgentCountPredicate(lambda s: s == "I"),
                max_steps=2_000, trace_policy="counts-only")
            assert outcome.converged
            assert outcome.final_configuration == Configuration(["I"] * 12)


# ---------------------------------------------------------------------------
# 3. distributional agreement
# ---------------------------------------------------------------------------


def rank_sum_z(sample_a, sample_b):
    """Normal-approximation Mann-Whitney z statistic (midranks for ties)."""
    combined = sorted(
        [(value, 0) for value in sample_a] + [(value, 1) for value in sample_b])
    ranks = {}
    index = 0
    while index < len(combined):
        upper = index
        while upper < len(combined) and combined[upper][0] == combined[index][0]:
            upper += 1
        midrank = (index + upper + 1) / 2  # 1-based average rank of the tie group
        for position in range(index, upper):
            ranks.setdefault(position, midrank)
        index = upper
    rank_sum = sum(
        ranks[position] for position, (_, group) in enumerate(combined)
        if group == 0)
    size_a, size_b = len(sample_a), len(sample_b)
    mean = size_a * (size_a + size_b + 1) / 2
    variance = size_a * size_b * (size_a + size_b + 1) / 12
    return (rank_sum - mean) / math.sqrt(variance)


def convergence_sample(system, backend, n, seeds, max_steps):
    sample = []
    for seed in seeds:
        program, initial, predicate = SYSTEMS[system](n)
        engine = SimulationEngine(
            program, TW, RandomScheduler(n, seed=seed), backend=backend)
        outcome = run_until_stable(
            engine, initial, predicate(), max_steps=max_steps,
            stability_window=2, trace_policy="counts-only")
        assert outcome.converged, f"seed {seed} did not converge"
        sample.append(outcome.steps_to_convergence)
    return sample


class TestDistributionalAgreement:
    """Same convergence-step distribution despite different RNG families.

    Seeds are fixed, so these tests are deterministic; the |z| < 3.5 bound
    was chosen with ~40 samples per side, where a systematic distribution
    shift (e.g. an off-by-one in the reactor shift) produces |z| >> 10.
    """

    @pytest.mark.parametrize("system,n,max_steps", [
        ("epidemic", 150, 40_000),
        ("leader-election", 120, 60_000),
    ])
    def test_convergence_steps_distribution_matches(self, system, n, max_steps):
        seeds = range(40)
        python_sample = convergence_sample(system, "python", n, seeds, max_steps)
        array_sample = convergence_sample(system, "array", n, seeds, max_steps)
        z = rank_sum_z(python_sample, array_sample)
        assert abs(z) < 3.5, (
            f"convergence distributions diverge: z={z:.2f}, "
            f"python mean={sum(python_sample)/len(python_sample):.0f}, "
            f"array mean={sum(array_sample)/len(array_sample):.0f}")

    def test_graph_kernel_draws_only_graph_edges_both_orientations(self):
        scheduler = ring_scheduler(12, seed=4)
        kernel = compile_scheduler(scheduler)
        starters, reactors = kernel.draw(0, 4_000)
        admissible = set(scheduler.ordered_pairs())
        drawn = set(zip(starters.tolist(), reactors.tolist()))
        assert drawn <= admissible
        assert drawn == admissible, "4000 draws on 24 ordered pairs must cover all"

    def test_uniform_kernel_is_uniform_over_ordered_pairs(self):
        kernel = compile_scheduler(RandomScheduler(5, seed=8))
        starters, reactors = kernel.draw(0, 40_000)
        assert (starters != reactors).all()
        counts = np.bincount(starters * 5 + reactors, minlength=25)
        pair_counts = counts[counts > 0]
        assert len(pair_counts) == 20
        expected = 40_000 / 20
        assert (np.abs(pair_counts - expected) < 6 * math.sqrt(expected)).all()


# ---------------------------------------------------------------------------
# 4. refusal of non-compilable ingredients
# ---------------------------------------------------------------------------


class TestCompileErrors:
    def _engine(self, **kwargs):
        program, initial, predicate = SYSTEMS["epidemic"](10)
        defaults = dict(
            program=program, model=TW,
            scheduler=RandomScheduler(10, seed=0), adversary=None)
        defaults.update(kwargs)
        engine = SimulationEngine(
            defaults["program"], defaults["model"], defaults["scheduler"],
            adversary=defaults["adversary"], backend="array")
        return engine, initial, predicate()

    def test_unbounded_program_is_refused(self):
        simulator = SKnOSimulator(EpidemicProtocol(), omission_bound=1)
        engine = SimulationEngine(
            simulator, get_model("I3"), RandomScheduler(10, seed=0),
            backend="array")
        with pytest.raises(BackendCompileError, match="unbounded"):
            engine.execute(
                Configuration([simulator.initial_state("S")] * 10), 100,
                trace_policy="counts-only")

    @pytest.mark.parametrize("scheduler_factory", [
        lambda: ScriptedScheduler(Run([Interaction(0, 1)])),
        lambda: WeightedPairScheduler(10, {(0, 1): 1.0}),
    ])
    def test_unsupported_scheduler_is_refused(self, scheduler_factory):
        engine, initial, predicate = self._engine(scheduler=scheduler_factory())
        with pytest.raises(BackendCompileError, match="no array draw kernel"):
            engine.execute(initial, 100, trace_policy="counts-only")

    def test_subclassed_scheduler_is_refused(self):
        class TweakedScheduler(RandomScheduler):
            pass

        engine, initial, _ = self._engine(scheduler=TweakedScheduler(10, seed=0))
        with pytest.raises(BackendCompileError, match="no array draw kernel"):
            engine.execute(initial, 100, trace_policy="counts-only")

    def test_subclassed_adversary_is_refused(self):
        # The catalog adversaries compile via injection schedules; dispatch
        # is on the exact class, so a subclass (which may have overridden
        # the injection law) must be refused with the fixing flag named.
        from repro.adversary.omission import BoundedOmissionAdversary

        class TweakedAdversary(BoundedOmissionAdversary):
            pass

        adversary = TweakedAdversary(get_model("I3"), max_omissions=1, seed=0)
        engine = SimulationEngine(
            OneWayEpidemicProtocol(), get_model("I3"),
            RandomScheduler(10, seed=0), adversary=adversary, backend="array")
        with pytest.raises(BackendCompileError,
                           match="no array lowering.*--engine-backend python"):
            engine.execute(
                Configuration(["I"] + ["S"] * 9), 100,
                trace_policy="counts-only")

    def test_catalog_adversary_now_compiles(self):
        from repro.adversary.omission import BoundedOmissionAdversary

        adversary = BoundedOmissionAdversary(get_model("I3"), max_omissions=2, seed=0)
        engine = SimulationEngine(
            OneWayEpidemicProtocol(), get_model("I3"),
            RandomScheduler(10, seed=0), adversary=adversary, backend="array")
        outcome = engine.execute(
            Configuration(["I"] + ["S"] * 9), 500, trace_policy="counts-only")
        assert outcome.steps == 500
        assert outcome.omissions == 2

    def test_full_trace_policy_is_refused(self):
        engine, initial, _ = self._engine()
        with pytest.raises(BackendCompileError, match="counts-only"):
            engine.execute(initial, 100, trace_policy="full")

    def test_ring_trace_policy_now_compiles(self):
        engine, initial, _ = self._engine()
        outcome = engine.execute(
            initial, 100, trace_policy="ring", ring_size=8)
        assert outcome.policy == "ring"
        assert len(outcome.last_steps) == 8
        assert outcome.last_steps[-1].index == 99

    def test_stop_condition_is_refused(self):
        engine, initial, _ = self._engine()
        with pytest.raises(BackendCompileError, match="stop condition"):
            engine.execute(
                initial, 100, stop_condition=lambda c: False,
                trace_policy="counts-only")

    def test_plain_predicate_is_refused(self):
        engine, initial, _ = self._engine()
        with pytest.raises(BackendCompileError, match="state-count predicate"):
            run_until_stable(
                engine, initial, lambda c: True, max_steps=100,
                trace_policy="counts-only")

    def test_foreign_initial_state_is_refused(self):
        engine, _, _ = self._engine()
        with pytest.raises(BackendCompileError, match="initial configuration"):
            engine.execute(
                Configuration(["I", "S", "R", "S"]), 100,
                trace_policy="counts-only")

    def test_open_transition_table_is_refused(self):
        from repro.protocols.protocol import RuleBasedProtocol

        leaky = RuleBasedProtocol(
            {("a", "a"): ("a", "b")}, name="leaky")

        class LyingProtocol(RuleBasedProtocol):
            def state_order(self):
                return ("a",)  # hides "b" from the interner

        lying = LyingProtocol({("a", "a"): ("a", "b")}, name="lying")
        program = TrivialTwoWaySimulator(lying)
        engine = SimulationEngine(
            program, TW, RandomScheduler(4, seed=0), backend="array")
        with pytest.raises(BackendCompileError, match="leaves its declared"):
            engine.execute(
                Configuration(["a"] * 4), 10, trace_policy="counts-only")
        del leaky

    def test_invalid_chunk_size_raises_like_the_python_backend(self):
        # Regression: chunk_size=0 used to spin forever (k clipped to 0
        # every iteration) where the python backend raises.
        engine, initial, _ = self._engine()
        with pytest.raises(ValueError, match="chunk_size"):
            engine.execute(
                initial, 100, trace_policy="counts-only", chunk_size=0)

    def test_infinite_budget_is_refused(self):
        engine, initial, predicate = self._engine()
        with pytest.raises(BackendCompileError, match="finite"):
            run_until_stable(
                engine, initial, predicate, max_steps=float("inf"),
                trace_policy="counts-only")


# ---------------------------------------------------------------------------
# experiment surface: spec, fan-out, CLI
# ---------------------------------------------------------------------------


def array_spec(**overrides):
    fields = dict(
        protocol="epidemic", population=60, backend="array",
        scheduler="random")
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestExperimentSurface:
    def test_spec_backend_round_trips_through_pickle(self):
        spec = array_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.backend == "array"
        assert hash(clone) == hash(spec)

    def test_backend_is_part_of_spec_identity(self):
        assert array_spec() != array_spec(backend="python")

    @pytest.mark.parametrize("jobs_backend", ["thread", "process"])
    def test_fanout_matches_sequential(self, jobs_backend):
        kwargs = dict(
            spec=array_spec(), runs=6, max_steps=20_000, stability_window=3,
            base_seed=7, trace_policy="counts-only")
        sequential = repeat_experiment(jobs=1, **kwargs)
        fanned = repeat_experiment(
            jobs=2, jobs_backend=jobs_backend, run_chunk=2, **kwargs)
        assert fanned.runs == sequential.runs == 6
        assert fanned.successes == sequential.successes == 6
        assert fanned.convergence_steps == sequential.convergence_steps

    def test_array_spec_runs_match_python_spec_distribution_loosely(self):
        # Not a statistical test — just that both backends converge the
        # same spec with the same run count (the distributional agreement
        # suite above does the heavy lifting).
        for backend in ("python", "array"):
            result = repeat_experiment(
                spec=array_spec(backend=backend), runs=3, max_steps=20_000,
                stability_window=2, base_seed=1, trace_policy="counts-only")
            assert result.all_succeeded

    def test_graph_scheduler_spec_on_array_backend(self):
        result = repeat_experiment(
            spec=array_spec(scheduler="ring-graph", population=24),
            runs=3, max_steps=30_000, stability_window=2, base_seed=2,
            trace_policy="counts-only")
        assert result.all_succeeded

    def test_compile_error_surfaces_through_repeat_experiment(self):
        spec = array_spec(scheduler="round-robin", omissions=2, model="I3",
                          simulator="skno", omission_bound=2)
        with pytest.raises(BackendCompileError):
            repeat_experiment(
                spec=spec, runs=2, max_steps=1_000,
                trace_policy="counts-only")


class TestArrayBackendCLI:
    def test_run_with_engine_backend_array(self, capsys):
        from repro.cli import main

        exit_code = main([
            "run", "--protocol", "epidemic", "--population", "500",
            "--engine-backend", "array", "--trace-policy", "counts-only",
            "--max-steps", "100000", "--seed", "4",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "converged" in output

    def test_runs_with_engine_backend_array_process(self, capsys):
        from repro.cli import main

        exit_code = main([
            "run", "--protocol", "leader-election", "--population", "40",
            "--engine-backend", "array", "--trace-policy", "counts-only",
            "--runs", "4", "--jobs", "2", "--backend", "process",
            "--max-steps", "50000", "--seed", "1",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "4/4" in output

    def test_full_trace_policy_fails_with_actionable_message(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit, match="counts-only"):
            main([
                "run", "--protocol", "epidemic", "--population", "50",
                "--engine-backend", "array", "--max-steps", "1000",
            ])

    def test_compile_error_names_the_first_failing_component(self):
        # Adversaries compile now, so the first failing component of this
        # run is the SKnO program (unbounded state space) — the message
        # must name it, not a generic category.
        from repro.cli import main

        with pytest.raises(SystemExit,
                           match="SKnOSimulator.*unbounded.*--engine-backend python"):
            main([
                "run", "--protocol", "leader-election", "--model", "I3",
                "--simulator", "skno", "--omission-bound", "1",
                "--omissions", "1", "--population", "10",
                "--engine-backend", "array", "--trace-policy", "counts-only",
                "--max-steps", "1000",
            ])

    def test_non_compilable_simulator_fails_with_actionable_message(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unbounded"):
            main([
                "run", "--protocol", "epidemic", "--model", "IO",
                "--simulator", "sid", "--population", "10",
                "--engine-backend", "array", "--trace-policy", "counts-only",
                "--max-steps", "1000",
            ])
