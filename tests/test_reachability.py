"""Unit tests for the exhaustive reachability analysis."""

import pytest

from repro.analysis.reachability import (
    ReachabilityLimitError,
    check_invariant,
    check_stabilisation,
    explore,
)
from repro.core.skno import SKnOSimulator
from repro.core.sid import SIDSimulator
from repro.core.trivial import TrivialTwoWaySimulator
from repro.interaction.models import IO, TW, get_model
from repro.protocols.catalog.leader_election import LEADER, LeaderElectionProtocol
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.catalog.predicates import OrProtocol
from repro.protocols.state import Configuration


class TestExplore:
    def test_leader_election_reachable_set(self):
        protocol = LeaderElectionProtocol()
        program = TrivialTwoWaySimulator(protocol)
        result = explore(program, TW, Configuration([LEADER] * 3))
        # Reachable leader counts are 3, 2 and 1 over 3 agents; configurations
        # are position-sensitive: LLL, and all placements of F with 1 or 2 Fs.
        leader_counts = {config.count(LEADER) for config in result.configurations}
        assert leader_counts == {1, 2, 3}
        assert result.configuration_count == 1 + 3 + 3
        assert not result.truncated

    def test_omission_budget_enlarges_reachable_set(self):
        protocol = PairingProtocol()
        simulator = SKnOSimulator(protocol, omission_bound=1)
        initial = Configuration([simulator.initial_state("p"), simulator.initial_state("c")])
        without = explore(simulator, get_model("I3"), initial, omission_budget=0)
        with_budget = explore(simulator, get_model("I3"), initial, omission_budget=1)
        assert with_budget.configuration_count > without.configuration_count
        assert without.configurations <= with_budget.configurations

    def test_omission_budget_requires_omissive_model(self):
        protocol = PairingProtocol()
        program = TrivialTwoWaySimulator(protocol)
        with pytest.raises(ValueError):
            explore(program, TW, Configuration(["c", "p"]), omission_budget=1)

    def test_limit_raises(self):
        protocol = PairingProtocol()
        simulator = SKnOSimulator(protocol, omission_bound=1)
        initial = simulator.initial_configuration(Configuration(["c", "c", "p", "p"]))
        with pytest.raises(ReachabilityLimitError):
            explore(simulator, get_model("I3"), initial, max_configurations=10)

    def test_limit_truncates_when_requested(self):
        protocol = PairingProtocol()
        simulator = SKnOSimulator(protocol, omission_bound=1)
        initial = simulator.initial_configuration(Configuration(["c", "c", "p", "p"]))
        result = explore(simulator, get_model("I3"), initial, max_configurations=10,
                         on_error="truncate")
        assert result.truncated
        assert result.configuration_count <= 11


class TestInvariants:
    def test_pairing_safety_is_an_invariant_under_tw(self):
        protocol = PairingProtocol()
        program = TrivialTwoWaySimulator(protocol)
        initial = Configuration(["c", "c", "p"])
        report = check_invariant(
            program, TW, initial,
            invariant=lambda c: c.count("cs") <= 1,
        )
        assert report.holds
        assert report.configurations_checked > 1

    def test_pairing_safety_invariant_through_skno_with_omissions(self):
        """Exhaustive check of Theorem 4.1's safety over ALL schedules, 2 agents, o=1."""
        protocol = PairingProtocol()
        simulator = SKnOSimulator(protocol, omission_bound=1)
        initial = Configuration([simulator.initial_state("p"), simulator.initial_state("c")])
        report = check_invariant(
            simulator, get_model("I3"), initial,
            invariant=lambda c: c.count("cs") <= 1,
            omission_budget=1,
            projection=simulator.project,
        )
        assert report.holds, report.counterexamples

    def test_pairing_safety_invariant_through_sid_exhaustively(self):
        protocol = PairingProtocol()
        simulator = SIDSimulator(protocol)
        initial = simulator.initial_configuration(Configuration(["p", "c", "c"]))
        report = check_invariant(
            simulator, IO, initial,
            invariant=lambda c: c.count("cs") <= 1,
            projection=simulator.project,
        )
        assert report.holds, report.counterexamples

    def test_violated_invariant_is_reported_with_counterexamples(self):
        protocol = PairingProtocol()
        program = TrivialTwoWaySimulator(protocol)
        initial = Configuration(["c", "p"])
        report = check_invariant(
            program, TW, initial,
            invariant=lambda c: c.count("cs") == 0,  # false once the pairing happens
        )
        assert not report.holds
        assert report.counterexamples


class TestStabilisation:
    def test_leader_election_stabilises_exhaustively(self):
        protocol = LeaderElectionProtocol()
        program = TrivialTwoWaySimulator(protocol)
        report = check_stabilisation(
            program, TW, Configuration([LEADER] * 4),
            target=lambda c: c.count(LEADER) == 1,
        )
        assert report.stabilises
        assert report.target_always_reachable
        assert report.target_closed

    def test_or_protocol_stabilises_exhaustively(self):
        protocol = OrProtocol()
        program = TrivialTwoWaySimulator(protocol)
        report = check_stabilisation(
            program, TW, Configuration([1, 0, 0, 0]),
            target=lambda c: all(s == 1 for s in c),
        )
        assert report.stabilises

    def test_pairing_through_skno_stabilises_exhaustively(self):
        """Exhaustive liveness for the 2-agent SKnO system (no omissions)."""
        protocol = PairingProtocol()
        simulator = SKnOSimulator(protocol, omission_bound=0)
        initial = Configuration([simulator.initial_state("p"), simulator.initial_state("c")])
        report = check_stabilisation(
            simulator, get_model("IT"), initial,
            target=lambda c: c.count("cs") == 1,
            projection=simulator.project,
        )
        assert report.stabilises, (report.unreachable_from, report.escapes_from)

    def test_wrong_target_is_rejected(self):
        protocol = LeaderElectionProtocol()
        program = TrivialTwoWaySimulator(protocol)
        report = check_stabilisation(
            program, TW, Configuration([LEADER] * 3),
            target=lambda c: c.count(LEADER) == 0,  # unreachable: leaders never vanish
        )
        assert not report.stabilises
        assert report.unreachable_from
