"""Shared multi-campaign store tests: cross-campaign dedup, crash/torn-write
fault injection on the append path, and compaction semantics.

The fault injection goes through a monkeypatched ``os.write`` that tears
the append mid-record (writes a prefix, then "crashes"), exactly the
failure the store's single-``write``-per-line discipline is designed to
survive: recovery must keep every complete record, and compaction must be
idempotent (``compact(compact(s)) == compact(s)`` byte for byte) and
invisible to reports.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.campaign.planner import plan_campaign
from repro.campaign.report import render_report
from repro.campaign.runner import run_campaign
from repro.campaign.spec import campaign_from_dict
from repro.campaign.store import (
    ResultStore,
    SharedResultStore,
    StoreError,
    compact_store,
    store_kind,
)
from repro.cli import main


def small_campaign(name: str = "first", populations=(4, 6)) -> dict:
    return {
        "name": name,
        "base": {"protocol": "epidemic"},
        "axes": {
            "scheduler": ["random", "round-robin"],
            "population": list(populations),
        },
        "runs": 2,
        "base_seed": 3,
        "max_steps": 20_000,
        "stability_window": 8,
    }


def overlapping_plans():
    """Two campaigns sharing four cells; the second has two more."""
    return (plan_campaign(campaign_from_dict(small_campaign("first"))),
            plan_campaign(campaign_from_dict(
                small_campaign("second", populations=(4, 6, 8)))))


def run_into_pool(plan, pool, **kwargs):
    pool.register_campaign(plan.campaign.name, plan.campaign_hash,
                           plan.cell_ids())
    return run_campaign(plan, pool, **kwargs)


def store_bytes(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def cell_record(cell_id: str, status: str = "na") -> dict:
    return {"kind": "cell", "cell_id": cell_id, "index": 0,
            "coordinates": {}, "status": status, "reason": "synthetic"}


# ---------------------------------------------------------------------------
# store kinds and opening discipline
# ---------------------------------------------------------------------------


class TestStoreKinds:
    def test_store_kind_dispatches_on_the_manifest(self, tmp_path):
        exclusive = str(tmp_path / "exclusive.jsonl")
        ResultStore.create(exclusive, "camp", "hash")
        shared = str(tmp_path / "shared.jsonl")
        SharedResultStore.create(shared)
        assert store_kind(exclusive) == "exclusive"
        assert store_kind(shared) == "shared"

    def test_store_kind_rejects_foreign_files(self, tmp_path):
        foreign = tmp_path / "notes.txt"
        foreign.write_text("just some text\n", encoding="utf-8")
        with pytest.raises(StoreError, match="manifest"):
            store_kind(str(foreign))
        with pytest.raises(StoreError, match="no result store"):
            store_kind(str(tmp_path / "missing.jsonl"))

    def test_exclusive_open_rejects_a_shared_pool(self, tmp_path):
        path = str(tmp_path / "pool.jsonl")
        SharedResultStore.create(path)
        with pytest.raises(StoreError, match="shared multi-campaign store"):
            ResultStore.open(path, "camp", "hash")

    def test_shared_open_rejects_an_exclusive_store(self, tmp_path):
        path = str(tmp_path / "solo.jsonl")
        ResultStore.create(path, "camp", "hash")
        with pytest.raises(StoreError, match="exclusive single-campaign"):
            SharedResultStore.open(path)

    def test_registration_supersede_and_orphans(self, tmp_path):
        pool = SharedResultStore.create(str(tmp_path / "pool.jsonl"))
        pool.append_cell(cell_record("aaa"))
        pool.append_cell(cell_record("bbb"))
        assert pool.register_campaign("camp", "h1", ["aaa", "bbb"])
        # Identical re-registration is a no-op append.
        assert not pool.register_campaign("camp", "h1", ["bbb", "aaa"])
        # A changed grid supersedes; the dropped cell becomes an orphan.
        assert pool.register_campaign("camp", "h2", ["aaa"])
        assert pool.orphaned_ids() == {"bbb"}
        reopened = SharedResultStore.open(pool.path)
        assert reopened.registration_for("camp")["campaign_hash"] == "h2"
        assert reopened.orphaned_ids() == {"bbb"}


# ---------------------------------------------------------------------------
# cross-campaign dedup
# ---------------------------------------------------------------------------


def counting_runner(monkeypatch):
    """Count the cells the serial runner actually executes."""
    import repro.campaign.runner as runner_module
    real = runner_module.build_cell_record
    executed = []

    def counted(cell, plan, **kwargs):
        executed.append(cell.cell_id)
        return real(cell, plan, **kwargs)

    monkeypatch.setattr(runner_module, "build_cell_record", counted)
    return executed


class TestCrossCampaignDedup:
    def test_second_campaign_executes_only_the_set_difference(
            self, tmp_path, monkeypatch):
        plan_a, plan_b = overlapping_plans()
        pool = SharedResultStore.create(str(tmp_path / "pool.jsonl"))
        run_into_pool(plan_a, pool)

        executed = counting_runner(monkeypatch)
        status = run_into_pool(plan_b, pool)
        assert status.complete
        fresh = sorted(set(plan_b.cell_ids()) - set(plan_a.cell_ids()))
        assert sorted(executed) == fresh
        assert status.executed_now == len(fresh) == 2

        # A third pass over either campaign recomputes nothing.
        executed.clear()
        assert run_into_pool(plan_a, pool).executed_now == 0
        assert run_into_pool(plan_b, pool).executed_now == 0
        assert executed == []

    def test_shared_reports_byte_match_isolated_stores(self, tmp_path):
        plan_a, plan_b = overlapping_plans()
        pool = SharedResultStore.create(str(tmp_path / "pool.jsonl"))
        run_into_pool(plan_a, pool)
        run_into_pool(plan_b, pool)

        for plan in (plan_a, plan_b):
            isolated = ResultStore.create(
                str(tmp_path / f"isolated-{plan.campaign.name}.jsonl"),
                plan.campaign.name, plan.campaign_hash)
            run_campaign(plan, isolated)
            assert render_report(plan, pool.cell_records) == render_report(
                plan, isolated.cell_records)

    def test_parallel_execution_into_the_pool(self, tmp_path):
        plan_a, plan_b = overlapping_plans()
        pool = SharedResultStore.create(str(tmp_path / "pool.jsonl"))
        run_into_pool(plan_a, pool, cell_jobs=4)
        status = run_into_pool(plan_b, pool, cell_jobs=4)
        assert status.complete and status.executed_now == 2


# ---------------------------------------------------------------------------
# crash / torn-write fault injection
# ---------------------------------------------------------------------------


def arm_torn_write(monkeypatch, cut: int):
    """Make the next cell-record append crash after ``cut`` bytes.

    Patches ``os.write`` (the store's one write syscall) with a wrapper
    that recognises the cell-record payload, writes only a prefix, and
    raises — everything else passes through untouched.
    """
    real = os.write
    state = {"armed": True}

    def torn(fd, data):
        if state["armed"] and isinstance(data, bytes) \
                and data.startswith(b'{"cell_id"'):
            state["armed"] = False
            real(fd, data[:cut])
            raise OSError("simulated crash mid-append")
        return real(fd, data)

    monkeypatch.setattr("repro.campaign.store.os.write", torn)
    return state


class TestTornWriteRecovery:
    @pytest.mark.parametrize("cut", [0, 1, 17, 40])
    def test_recovery_keeps_every_complete_record(self, tmp_path,
                                                  monkeypatch, cut):
        pool = SharedResultStore.create(str(tmp_path / "pool.jsonl"))
        pool.append_cell(cell_record("aaa"))
        pool.append_cell(cell_record("bbb"))
        arm_torn_write(monkeypatch, cut)
        with pytest.raises(OSError, match="simulated crash"):
            pool.append_cell(cell_record("ccc"))

        recovered = SharedResultStore.open(str(tmp_path / "pool.jsonl"))
        assert recovered.completed_ids() == {"aaa", "bbb"}
        # Recovery truncated the torn tail, so the next append lands on a
        # clean line boundary and the store stays parseable.
        recovered.append_cell(cell_record("ccc"))
        final = SharedResultStore.open(str(tmp_path / "pool.jsonl"))
        assert final.completed_ids() == {"aaa", "bbb", "ccc"}

    def test_torn_append_interleaved_with_a_concurrent_appender(
            self, tmp_path, monkeypatch):
        # Two store handles on one pool file model two appender processes:
        # O_APPEND + one write per record means a crash in one appender
        # never corrupts records the other one wrote.
        path = str(tmp_path / "pool.jsonl")
        first = SharedResultStore.create(path)
        second = SharedResultStore.open(path)
        first.append_cell(cell_record("aaa"))
        second.append_cell(cell_record("bbb"))
        arm_torn_write(monkeypatch, 23)
        with pytest.raises(OSError, match="simulated crash"):
            first.append_cell(cell_record("ccc"))
        second.append_cell(cell_record("ddd"))

        # The torn prefix has no newline, so the next appender's record
        # merged onto the same line.  Recovery truncates back to the last
        # clean boundary: every record written before the crash survives,
        # and the merged-away record is recomputable by content address —
        # exactly the replay-safe semantics resume relies on.
        recovered = SharedResultStore.open(path)
        assert recovered.completed_ids() == {"aaa", "bbb"}
        recovered.append_cell(cell_record("ccc"))
        recovered.append_cell(cell_record("ddd"))
        assert SharedResultStore.open(path).completed_ids() == {
            "aaa", "bbb", "ccc", "ddd"}

    def test_torn_tail_recovery_in_a_campaign_run(self, tmp_path,
                                                  monkeypatch):
        plan, _ = overlapping_plans()
        pool = SharedResultStore.create(str(tmp_path / "pool.jsonl"))
        arm_torn_write(monkeypatch, 31)
        with pytest.raises(OSError, match="simulated crash"):
            run_into_pool(plan, pool)

        recovered = SharedResultStore.open(str(tmp_path / "pool.jsonl"))
        resumed = run_into_pool(plan, recovered)
        assert resumed.complete

        isolated = ResultStore.create(str(tmp_path / "isolated.jsonl"),
                                      plan.campaign.name, plan.campaign_hash)
        run_campaign(plan, isolated)
        assert render_report(plan, recovered.cell_records) == render_report(
            plan, isolated.cell_records)

    def test_exclusive_store_torn_tail_recovery_still_holds(self, tmp_path,
                                                            monkeypatch):
        path = str(tmp_path / "solo.jsonl")
        store = ResultStore.create(path, "camp", "hash")
        store.append_cell(cell_record("aaa"))
        arm_torn_write(monkeypatch, 12)
        with pytest.raises(OSError, match="simulated crash"):
            store.append_cell(cell_record("bbb"))
        recovered = ResultStore.open(path, "camp", "hash")
        assert recovered.completed_ids() == {"aaa"}


# ---------------------------------------------------------------------------
# compaction
# ---------------------------------------------------------------------------


class TestCompaction:
    def populated_pool(self, tmp_path) -> str:
        """A pool with duplicates, a superseded registration and an orphan."""
        path = str(tmp_path / "pool.jsonl")
        pool = SharedResultStore.create(path)
        pool.append_cell(cell_record("bbb"))
        pool.append_cell(cell_record("aaa"))
        pool.append_cell(cell_record("orphan"))
        # A duplicate append of a live cell (a second handle, as a resumed
        # process would be, replaying a cell lost from its in-memory view).
        SharedResultStore.open(path).append_cell(cell_record("aaa"))
        pool.register_campaign("camp", "h1", ["aaa", "bbb", "orphan"])
        pool.register_campaign("camp", "h2", ["aaa", "bbb"])
        return path

    def test_compaction_drops_dead_records_and_is_idempotent(self, tmp_path):
        path = self.populated_pool(tmp_path)
        stats = compact_store(path)
        assert stats.kind == "shared"
        assert stats.cells_kept == 2
        assert stats.duplicates_dropped == 1
        assert stats.orphans_dropped == 1
        assert stats.registrations_dropped == 1
        assert stats.bytes_after < stats.bytes_before

        once = store_bytes(path)
        again = compact_store(path)
        assert store_bytes(path) == once  # compact(compact(s)) == compact(s)
        assert again.duplicates_dropped == again.orphans_dropped == 0
        assert "dropped" not in again.summary()

        reopened = SharedResultStore.open(path)
        assert reopened.completed_ids() == {"aaa", "bbb"}
        assert reopened.registration_for("camp")["campaign_hash"] == "h2"

    def test_compaction_output_is_canonically_ordered(self, tmp_path):
        path = self.populated_pool(tmp_path)
        compact_store(path)
        lines = [json.loads(line)
                 for line in store_bytes(path).decode("utf-8").splitlines()]
        kinds = [line["kind"] for line in lines]
        assert kinds == ["shared-store-manifest", "campaign", "cell", "cell"]
        assert [line["cell_id"] for line in lines[2:]] == ["aaa", "bbb"]

    def test_compaction_preserves_reports_byte_for_byte(self, tmp_path):
        plan_a, plan_b = overlapping_plans()
        pool = SharedResultStore.create(str(tmp_path / "pool.jsonl"))
        run_into_pool(plan_a, pool)
        run_into_pool(plan_b, pool)
        before = {plan.campaign.name: render_report(plan, pool.cell_records)
                  for plan in (plan_a, plan_b)}
        compact_store(pool.path)
        reopened = SharedResultStore.open(pool.path)
        for plan in (plan_a, plan_b):
            assert render_report(plan, reopened.cell_records) == \
                before[plan.campaign.name]

    def test_compaction_reclaims_cells_of_a_superseded_grid(self, tmp_path):
        plan_a, plan_b = overlapping_plans()
        pool = SharedResultStore.create(str(tmp_path / "pool.jsonl"))
        run_into_pool(plan_b, pool)  # six cells under the name "second"
        # Re-register "second" down to the smaller grid: the two extra
        # cells are now orphans (no other campaign references them).
        pool.register_campaign("second", plan_a.campaign_hash,
                               plan_a.cell_ids())
        stats = compact_store(pool.path)
        assert stats.orphans_dropped == 2
        assert SharedResultStore.open(pool.path).completed_ids() == set(
            plan_a.cell_ids())

    def test_exclusive_store_compaction(self, tmp_path):
        path = str(tmp_path / "solo.jsonl")
        store = ResultStore.create(path, "camp", "hash")
        store.append_cell(cell_record("bbb"))
        store.append_cell(cell_record("aaa"))
        ResultStore.open(path, "camp", "hash").append_cell(cell_record("bbb"))
        stats = compact_store(path)
        assert stats.kind == "exclusive"
        assert stats.cells_kept == 2 and stats.duplicates_dropped == 1
        once = store_bytes(path)
        compact_store(path)
        assert store_bytes(path) == once
        reopened = ResultStore.open(path, "camp", "hash")
        assert list(reopened.cell_records) == ["aaa", "bbb"]

    def test_compaction_drops_a_torn_tail(self, tmp_path, monkeypatch):
        path = str(tmp_path / "pool.jsonl")
        pool = SharedResultStore.create(path)
        pool.append_cell(cell_record("aaa"))
        pool.register_campaign("camp", "h1", ["aaa"])
        arm_torn_write(monkeypatch, 19)
        with pytest.raises(OSError, match="simulated crash"):
            pool.append_cell(cell_record("bbb"))
        stats = compact_store(path)
        assert stats.cells_kept == 1
        assert SharedResultStore.open(path).completed_ids() == {"aaa"}

    def test_compaction_rejects_foreign_files(self, tmp_path):
        foreign = tmp_path / "notes.txt"
        foreign.write_text("hello\n", encoding="utf-8")
        with pytest.raises(StoreError):
            compact_store(str(foreign))


# ---------------------------------------------------------------------------
# CLI flows
# ---------------------------------------------------------------------------


class TestSharedStoreCLI:
    def write_spec(self, tmp_path, data, name):
        path = tmp_path / name
        path.write_text(json.dumps(data), encoding="utf-8")
        return str(path)

    def test_shared_run_dedups_across_campaigns(self, tmp_path, monkeypatch,
                                                capsys):
        first = self.write_spec(tmp_path, small_campaign("first"),
                                "first.json")
        second = self.write_spec(
            tmp_path, small_campaign("second", populations=(4, 6, 8)),
            "second.json")
        pool = str(tmp_path / "pool.jsonl")

        assert main(["campaign", "run", first, "--shared", "--store", pool,
                     "--quiet"]) == 0
        executed = counting_runner(monkeypatch)
        # The pool is auto-detected: no --shared needed the second time.
        assert main(["campaign", "run", second, "--store", pool,
                     "--quiet"]) == 0
        assert len(executed) == 2

        capsys.readouterr()
        assert main(["campaign", "status", first, "--store", pool]) == 0
        assert "| done      | 4" in capsys.readouterr().out
        assert main(["campaign", "status", second, "--store", pool]) == 0
        assert "| done      | 6" in capsys.readouterr().out

        # Both campaigns are registered in the pool.
        reopened = SharedResultStore.open(pool)
        assert sorted(reopened.registrations) == ["first", "second"]

    def test_shared_flag_on_an_exclusive_store_fails_loudly(self, tmp_path):
        spec = self.write_spec(tmp_path, small_campaign(), "grid.json")
        assert main(["campaign", "run", spec, "--quiet"]) == 0
        store = str(tmp_path / "grid.results.jsonl")
        with pytest.raises(SystemExit, match="exclusive single-campaign"):
            main(["campaign", "run", spec, "--shared", "--store", store])

    def test_cli_compact_prints_the_stats(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path, small_campaign(), "grid.json")
        pool = str(tmp_path / "pool.jsonl")
        assert main(["campaign", "run", spec, "--shared", "--store", pool,
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["campaign", "compact", spec, "--store", pool]) == 0
        out = capsys.readouterr().out
        assert "compacted" in out and "(shared)" in out and "cells kept" in out

    def test_cli_report_on_the_pool_matches_isolated(self, tmp_path, capsys):
        spec_data = small_campaign()
        spec = self.write_spec(tmp_path, spec_data, "grid.json")
        pool = str(tmp_path / "pool.jsonl")
        assert main(["campaign", "run", spec, "--shared", "--store", pool,
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", spec, "--store", pool]) == 0
        shared_report = capsys.readouterr().out

        assert main(["campaign", "run", spec, "--quiet"]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", spec]) == 0
        assert capsys.readouterr().out == shared_report

    def test_cli_cell_jobs_validation(self, tmp_path):
        spec = self.write_spec(tmp_path, small_campaign(), "grid.json")
        with pytest.raises(SystemExit, match="--cell-jobs"):
            main(["campaign", "run", spec, "--cell-jobs", "0"])
