"""Equivalence suite for the adversary/array compile gap closed by the
injection-schedule lowering.

Four legs:

1. **Protocol equivalence** (hypothesis): for every catalog adversary
   class, under arbitrary chunkings and step budgets, the content-free
   schedule protocol (``plan_chunk_schedule``) and its columnar form
   (``plan_chunk_schedule_columns``) reconstruct exactly the batched plan
   protocol (``plan_interactions``) — same interleaving, same
   consumed/discarded arithmetic, same ``total_injected``, and a
   bit-identical RNG end state after every chunk.
2. **Engine bit-identity**: on the deterministic round-robin scheduler the
   array and python backends execute the same interaction sequence, so
   final configurations, step counts and omission counts must agree
   bit for bit — for every adversary class, including budget exhaustion
   mid-chunk and a stop condition firing mid-chunk.
3. **Ring dumps**: under ``--trace-policy ring`` the array backend's
   decoded crash window equals the python backend's interaction tail,
   injected omissive steps included.
4. **Auto-resolution determinism**: ``backend="auto"`` resolves at plan
   time as a pure function of the spec, so campaign cell ids are identical
   across repeated plannings and experiment results are identical across
   fan-out modes.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.omission import (
    BoundedOmissionAdversary,
    NO1Adversary,
    NOAdversary,
    NoOmissionAdversary,
    UOAdversary,
    _schedule_to_columns,
)
from repro.campaign.planner import plan_campaign
from repro.campaign.spec import campaign_from_dict
from repro.engine.convergence import run_until_stable
from repro.engine.engine import SimulationEngine
from repro.engine.experiment import repeat_experiment
from repro.engine.fastpath import AgentCountPredicate
from repro.protocols.state import Configuration
from repro.interaction.models import get_model
from repro.protocols.catalog.epidemic import (
    INFORMED,
    SUSCEPTIBLE,
    OneWayEpidemicProtocol,
)
from repro.protocols.registry import ExperimentSpec, resolve_backend
from repro.scheduling.runs import Interaction
from repro.scheduling.scheduler import RoundRobinScheduler

I3 = get_model("I3")

ADVERSARY_KINDS = ("none", "bounded", "no", "no1", "uo")


def make_adversary(kind: str, seed: int):
    """One instance per catalog class, parameters chosen so every code path
    (budget spend, active-prefix end, pinned gap, geometric flood) is hit
    within a few hundred steps."""
    if kind == "bounded":
        return BoundedOmissionAdversary(I3, max_omissions=9, rate=0.4, seed=seed)
    if kind == "no":
        return NOAdversary(I3, active_steps=120, rate=0.3, max_per_gap=2, seed=seed)
    if kind == "no1":
        return NO1Adversary(I3, inject_at=37, seed=seed)
    if kind == "uo":
        return UOAdversary(I3, rate=0.25, max_per_gap=3, seed=seed)
    return NoOmissionAdversary()


def rng_state(adversary):
    rng = getattr(adversary, "_rng", None)
    return None if rng is None else rng.getstate()


def kind_index_of(adversary) -> dict:
    kinds = getattr(adversary, "_omissive_kinds", ())
    return {kind: index for index, kind in enumerate(kinds)}


# ---------------------------------------------------------------------------
# 1. protocol equivalence: plan == schedule == columns, chunking-independent
# ---------------------------------------------------------------------------


def reconstruct(schedule, draws):
    """Interleave an InjectionSchedule with its scheduled draws — the
    inverse of the content-free contract."""
    interactions = []
    cursor = 0
    for gap in range(schedule.consumed):
        while cursor < len(schedule.positions) and schedule.positions[cursor] == gap:
            interactions.append(schedule.injections[cursor])
            cursor += 1
        interactions.append(draws[gap])
    assert cursor == len(schedule.positions)
    return interactions


class TestScheduleProtocolEquivalence:
    @pytest.mark.parametrize("kind", ADVERSARY_KINDS)
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_schedule_and_columns_match_plan(self, kind, data):
        n = data.draw(st.integers(min_value=2, max_value=40), label="n")
        seed = data.draw(st.integers(min_value=0, max_value=999), label="seed")
        budget = data.draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=400)),
            label="budget")
        chunks = data.draw(
            st.lists(st.integers(min_value=1, max_value=50), min_size=1,
                     max_size=8),
            label="chunks")

        a_plan = make_adversary(kind, seed)
        a_sched = make_adversary(kind, seed)
        a_cols = make_adversary(kind, seed)
        step = 0
        remaining = budget
        for count in chunks:
            if remaining is not None and remaining < 1:
                break
            draws = [Interaction(i % n, (i + 1) % n if (i + 1) % n != i % n
                                 else (i + 2) % n)
                     for i in range(step, step + count)]
            plan = a_plan.plan_interactions(step, draws, n, remaining)
            schedule = a_sched.plan_chunk_schedule(step, count, n, remaining)
            columns = a_cols.plan_chunk_schedule_columns(step, count, n, remaining)

            assert reconstruct(schedule, draws) == plan.interactions
            assert schedule.consumed == plan.consumed
            assert schedule.discarded == plan.discarded
            assert tuple(columns) == tuple(
                _schedule_to_columns(schedule, kind_index_of(a_sched)))
            assert rng_state(a_plan) == rng_state(a_sched) == rng_state(a_cols)
            assert (getattr(a_plan, "total_injected", 0)
                    == getattr(a_sched, "total_injected", 0)
                    == getattr(a_cols, "total_injected", 0))

            if remaining is not None:
                remaining -= len(plan.interactions)
            step += plan.consumed

    @pytest.mark.parametrize("kind", ADVERSARY_KINDS)
    def test_schedule_is_chunking_independent(self, kind):
        """One 300-gap chunk and three 100-gap chunks produce the same
        flattened schedule and the same adversary end state."""
        whole = make_adversary(kind, 7)
        split = make_adversary(kind, 7)
        one = whole.plan_chunk_schedule(0, 300, 12, None)
        flat_positions, flat_injections = [], []
        step = 0
        for _ in range(3):
            part = split.plan_chunk_schedule(step, 100, 12, None)
            flat_positions.extend(step + p for p in part.positions)
            flat_injections.extend(part.injections)
            step += part.consumed
        assert one.positions == flat_positions
        assert one.injections == flat_injections
        assert one.consumed == step
        assert rng_state(whole) == rng_state(split)


# ---------------------------------------------------------------------------
# 2. engine bit-identity on round-robin, per class × budget/stop mid-chunk
# ---------------------------------------------------------------------------


def run_both(kind: str, *, max_steps: int, stop: bool, chunk_size=None,
             trace_policy: str = "counts-only", ring_size=None, n: int = 24):
    outcomes = {}
    for backend in ("python", "array"):
        engine = SimulationEngine(
            OneWayEpidemicProtocol(), I3, RoundRobinScheduler(n),
            adversary=make_adversary(kind, 3), backend=backend)
        initial = Configuration([INFORMED] + [SUSCEPTIBLE] * (n - 1))
        if stop:
            outcomes[backend] = run_until_stable(
                engine, initial, AgentCountPredicate(lambda s: s == INFORMED),
                max_steps, stability_window=2, trace_policy=trace_policy,
                ring_size=ring_size, chunk_size=chunk_size)
        else:
            outcomes[backend] = engine.execute(
                initial, max_steps, trace_policy=trace_policy,
                ring_size=ring_size, chunk_size=chunk_size)
    return outcomes["python"], outcomes["array"]


class TestEngineBitIdentity:
    @pytest.mark.parametrize("kind", ADVERSARY_KINDS)
    def test_budget_exhaustion_mid_chunk(self, kind):
        """An odd budget with an odd chunk size: the run ends inside a
        chunk, with injections charged against the remaining budget."""
        python, array = run_both(kind, max_steps=97, stop=False, chunk_size=7)
        assert array.steps == python.steps == 97
        assert array.omissions == python.omissions
        assert tuple(array.final_configuration) == tuple(python.final_configuration)

    @pytest.mark.parametrize("kind", ADVERSARY_KINDS)
    def test_stop_condition_mid_chunk(self, kind):
        """A count predicate firing inside a large chunk: both backends must
        stop after the identical completing step."""
        python, array = run_both(kind, max_steps=50_000, stop=True,
                                 chunk_size=4096)
        assert python.converged and array.converged
        assert python.steps_executed < 50_000, "predicate must fire mid-run"
        assert array.steps_executed == python.steps_executed
        assert array.steps_to_convergence == python.steps_to_convergence
        assert array.omissions == python.omissions
        assert tuple(array.final_configuration) == tuple(python.final_configuration)


# ---------------------------------------------------------------------------
# 3. ring dumps: decoded array window == python interaction tail
# ---------------------------------------------------------------------------


class TestRingDumpEquality:
    @pytest.mark.parametrize("kind", ADVERSARY_KINDS)
    def test_ring_window_matches_python_tail(self, kind):
        python, array = run_both(kind, max_steps=500, stop=False,
                                 trace_policy="ring", ring_size=16)
        assert len(array.last_steps) == 16
        assert array.last_steps == python.last_steps

    def test_ring_window_contains_injected_omissions(self):
        """The decoded window must include omissive TraceSteps, not only
        scheduled ones (UO floods enough to guarantee one in any window)."""
        _, array = run_both("uo", max_steps=500, stop=False,
                            trace_policy="ring", ring_size=32)
        assert any(step.interaction.omission.is_omissive
                   for step in array.last_steps
                   if step.interaction.omission is not None)


# ---------------------------------------------------------------------------
# 4. auto-resolution determinism
# ---------------------------------------------------------------------------


def auto_campaign() -> dict:
    return {
        "name": "auto-grid",
        "base": {"protocol": "epidemic", "backend": "auto", "model": "I3",
                 "omissions": 2},
        "axes": {"population": [6, 8]},
        "runs": 2,
        "base_seed": 5,
        "max_steps": 10_000,
        "stability_window": 4,
    }


class TestAutoResolutionDeterminism:
    def test_resolution_is_a_pure_function_of_the_spec(self):
        spec = ExperimentSpec(protocol="epidemic", population=8, model="I3",
                              omissions=2, backend="auto")
        first = resolve_backend(spec)
        second = resolve_backend(spec)
        assert first == second
        assert first.backend == "array"

    def test_cell_ids_stable_across_plannings(self):
        baseline = plan_campaign(campaign_from_dict(auto_campaign()))
        replanned = plan_campaign(campaign_from_dict(auto_campaign()))
        assert baseline.cell_ids() == replanned.cell_ids()
        assert baseline.campaign_hash == replanned.campaign_hash
        # The cells genuinely resolved (identity pins the concrete backend).
        for cell in baseline.cells:
            assert dict(cell.fields)["backend"] == "array"

    def test_results_identical_across_fanout_modes(self):
        spec = ExperimentSpec(protocol="epidemic", population=8, model="I3",
                              omissions=2, backend="auto")
        results = [
            repeat_experiment(spec=spec, runs=3, max_steps=5_000,
                              stability_window=4, base_seed=1,
                              jobs=jobs, jobs_backend=jobs_backend).to_dict()
            for jobs, jobs_backend in
            ((1, "thread"), (2, "thread"), (2, "process"))
        ]
        assert results[0] == results[1] == results[2]
