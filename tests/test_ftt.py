"""Unit tests for Transition Time / Fastest Transition Time (Definitions 6 and 7)."""

import pytest

from repro.adversary.ftt import (
    FTTSearchError,
    fastest_transition_time,
    transition_time,
)
from repro.core.sid import SIDSimulator
from repro.core.skno import SKnOSimulator
from repro.core.trivial import TrivialTwoWaySimulator
from repro.interaction.models import IO, IT, TW, get_model
from repro.interaction.adapters import one_way_as_two_way
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.state import Configuration
from repro.scheduling.runs import Run


@pytest.fixture
def pairing_protocol():
    return PairingProtocol()


class TestTrivialSimulatorFTT:
    def test_tw_baseline_has_ftt_one(self, pairing_protocol):
        simulator = TrivialTwoWaySimulator(pairing_protocol)
        config = Configuration(["p", "c"])
        result = fastest_transition_time(simulator, TW, config)
        assert result.ftt == 1
        assert len(result.witness) == 1

    def test_silent_pair_has_ftt_zero(self, pairing_protocol):
        simulator = TrivialTwoWaySimulator(pairing_protocol)
        config = Configuration(["c", "c"])
        result = fastest_transition_time(simulator, TW, config)
        assert result.ftt == 0
        assert len(result.witness) == 0


class TestSKnOFTT:
    @pytest.mark.parametrize("omission_bound,expected", [(0, 2), (1, 4), (2, 6)])
    def test_ftt_is_two_times_run_length(self, pairing_protocol, omission_bound, expected):
        """SKnO needs (o+1) interactions per direction: FTT = 2(o+1)."""
        simulator = SKnOSimulator(pairing_protocol, omission_bound=omission_bound)
        config = Configuration(
            [simulator.initial_state("p"), simulator.initial_state("c")]
        )
        result = fastest_transition_time(simulator, get_model("I3"), config)
        assert result.ftt == expected

    def test_witness_achieves_the_target(self, pairing_protocol):
        simulator = SKnOSimulator(pairing_protocol, omission_bound=1)
        config = Configuration(
            [simulator.initial_state("p"), simulator.initial_state("c")]
        )
        result = fastest_transition_time(simulator, get_model("I3"), config)
        assert transition_time(simulator, get_model("I3"), config, result.witness) == result.ftt

    def test_ftt_same_under_t3_adapter(self, pairing_protocol):
        """Non-omissive behaviour is identical under I3 and under the T3 adapter."""
        simulator = SKnOSimulator(pairing_protocol, omission_bound=1)
        config = Configuration(
            [simulator.initial_state("p"), simulator.initial_state("c")]
        )
        direct = fastest_transition_time(simulator, get_model("I3"), config)
        adapted = fastest_transition_time(
            one_way_as_two_way(simulator), get_model("T3"), config
        )
        assert direct.ftt == adapted.ftt

    def test_depth_limit_raises(self, pairing_protocol):
        simulator = SKnOSimulator(pairing_protocol, omission_bound=3)
        config = Configuration(
            [simulator.initial_state("p"), simulator.initial_state("c")]
        )
        with pytest.raises(FTTSearchError):
            fastest_transition_time(simulator, get_model("I3"), config, max_depth=3)


class TestSIDFTT:
    def test_sid_ftt_is_three(self, pairing_protocol):
        """SID needs pairing, locking and completion: 3 observations."""
        simulator = SIDSimulator(pairing_protocol)
        config = Configuration(
            [
                simulator.initial_state("p", agent_id=0),
                simulator.initial_state("c", agent_id=1),
            ]
        )
        result = fastest_transition_time(simulator, IO, config)
        assert result.ftt == 3


class TestTransitionTime:
    def test_run_that_never_transitions(self, pairing_protocol):
        simulator = SKnOSimulator(pairing_protocol, omission_bound=0)
        config = Configuration(
            [simulator.initial_state("p"), simulator.initial_state("c")]
        )
        # A single interaction is not enough for SKnO (needs 2).
        assert transition_time(simulator, get_model("I3"), config, Run.from_pairs([(0, 1)])) is None

    def test_requires_two_agents(self, pairing_protocol):
        simulator = SKnOSimulator(pairing_protocol, omission_bound=0)
        config = Configuration([simulator.initial_state("p")])
        with pytest.raises(ValueError):
            transition_time(simulator, get_model("I3"), config, Run())
        with pytest.raises(ValueError):
            fastest_transition_time(simulator, get_model("I3"), config)

    def test_result_str(self, pairing_protocol):
        simulator = TrivialTwoWaySimulator(pairing_protocol)
        result = fastest_transition_time(simulator, TW, Configuration(["p", "c"]))
        assert "FTT=1" in str(result)
