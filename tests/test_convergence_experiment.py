"""Unit tests for convergence detection and the batch experiment runner."""

import pytest

from repro.core.trivial import TrivialTwoWaySimulator
from repro.engine.convergence import run_until_stable, stable_output_condition
from repro.engine.engine import SimulationEngine
from repro.engine.experiment import repeat_experiment
from repro.engine.fastpath import AgentCountPredicate
from repro.interaction.models import TW
from repro.protocols.catalog.leader_election import LEADER, LeaderElectionProtocol
from repro.protocols.catalog.majority import A, B, ExactMajorityProtocol
from repro.protocols.catalog.epidemic import INFORMED, SUSCEPTIBLE, EpidemicProtocol
from repro.protocols.state import Configuration
from repro.scheduling.scheduler import RandomScheduler, ScriptedScheduler
from repro.scheduling.runs import Run


class TestStableOutputCondition:
    def test_without_projection(self):
        protocol = EpidemicProtocol()
        predicate = stable_output_condition(protocol, True)
        assert predicate(Configuration([INFORMED, INFORMED]))
        assert not predicate(Configuration([INFORMED, SUSCEPTIBLE]))

    def test_with_projection(self):
        protocol = EpidemicProtocol()
        predicate = stable_output_condition(protocol, True, projection=lambda s: s[0])
        assert predicate(Configuration([(INFORMED, "extra"), (INFORMED, "extra")]))


class TestRunUntilStable:
    def _leader_engine(self, n, seed=0):
        protocol = LeaderElectionProtocol()
        program = TrivialTwoWaySimulator(protocol)
        return protocol, SimulationEngine(program, TW, RandomScheduler(n, seed=seed))

    def test_converges_on_leader_election(self):
        protocol, engine = self._leader_engine(6, seed=1)
        result = run_until_stable(
            engine,
            Configuration([LEADER] * 6),
            predicate=lambda c: c.count(LEADER) == 1,
            max_steps=10_000,
        )
        assert result.converged
        assert result.steps_to_convergence is not None
        assert result.steps_to_convergence <= result.steps_executed
        assert result.final_configuration.count(LEADER) == 1

    def test_already_converged_initially(self):
        protocol, engine = self._leader_engine(3)
        result = run_until_stable(
            engine,
            Configuration([LEADER, "F", "F"]),
            predicate=lambda c: c.count(LEADER) == 1,
            max_steps=100,
        )
        assert result.converged
        assert result.steps_to_convergence == 0
        assert result.steps_executed == 0

    def test_stability_window_requires_persistence(self):
        protocol, engine = self._leader_engine(6, seed=3)
        result = run_until_stable(
            engine,
            Configuration([LEADER] * 6),
            predicate=lambda c: c.count(LEADER) == 1,
            max_steps=10_000,
            stability_window=50,
        )
        assert result.converged
        # The trace extends past the first satisfying configuration.
        assert result.steps_executed >= result.steps_to_convergence + 50

    def test_non_convergence_reported(self):
        protocol, engine = self._leader_engine(4, seed=5)
        result = run_until_stable(
            engine,
            Configuration([LEADER] * 4),
            predicate=lambda c: False,
            max_steps=200,
        )
        assert not result.converged
        assert result.steps_to_convergence is None
        assert result.steps_executed == 200

    def test_scheduler_exhaustion_ends_run(self):
        protocol = LeaderElectionProtocol()
        program = TrivialTwoWaySimulator(protocol)
        engine = SimulationEngine(program, TW, ScriptedScheduler(Run.from_pairs([(0, 1)])))
        result = run_until_stable(
            engine,
            Configuration([LEADER, LEADER, LEADER]),
            predicate=lambda c: False,
            max_steps=1_000,
        )
        assert result.steps_executed == 1
        assert not result.converged


class TestRepeatExperiment:
    def test_all_runs_converge_for_easy_workload(self):
        protocol = ExactMajorityProtocol()
        program = TrivialTwoWaySimulator(protocol)
        initial = protocol.initial_configuration(5, 2)
        result = repeat_experiment(
            program,
            TW,
            initial,
            predicate=lambda c: all(protocol.output(s) == A for s in c),
            runs=5,
            max_steps=20_000,
            base_seed=10,
        )
        assert result.runs == 5
        assert result.all_succeeded
        assert result.success_rate == 1.0
        assert result.mean_convergence_steps is not None
        assert result.median_convergence_steps is not None
        assert result.max_convergence_steps >= result.median_convergence_steps
        assert "success=5/5" in result.summary()

    def test_failures_are_recorded(self):
        protocol = ExactMajorityProtocol()
        program = TrivialTwoWaySimulator(protocol)
        initial = protocol.initial_configuration(4, 2)
        result = repeat_experiment(
            program,
            TW,
            initial,
            predicate=lambda c: False,
            runs=2,
            max_steps=50,
        )
        assert result.successes == 0
        assert len(result.failures) == 2
        assert result.mean_convergence_steps is None
        assert not result.all_succeeded

    def test_validate_hook_can_fail_runs(self):
        protocol = ExactMajorityProtocol()
        program = TrivialTwoWaySimulator(protocol)
        initial = protocol.initial_configuration(4, 2)
        result = repeat_experiment(
            program,
            TW,
            initial,
            predicate=lambda c: all(protocol.output(s) == A for s in c),
            runs=2,
            max_steps=20_000,
            validate=lambda outcome: "rejected by validator",
        )
        assert result.successes == 0
        assert all("rejected" in failure for failure in result.failures)

    def test_empty_experiment(self):
        protocol = ExactMajorityProtocol()
        program = TrivialTwoWaySimulator(protocol)
        result = repeat_experiment(
            program,
            TW,
            protocol.initial_configuration(3, 1),
            predicate=lambda c: True,
            runs=0,
        )
        assert result.runs == 0
        assert result.success_rate == 0.0


class TestSchedulerErrorPropagation:
    class ExplodingScheduler(ScriptedScheduler):
        def __init__(self, run, fail_at):
            super().__init__(run)
            self.fail_at = fail_at

        def next_interaction(self, step):
            if step >= self.fail_at:
                raise ValueError("real scheduler bug")
            return super().next_interaction(step)

    def test_run_until_stable_propagates_real_scheduler_errors(self):
        # Regression: the seed loop caught bare Exception around the
        # scheduler draw; a ValueError must escape untouched, not be
        # swallowed as exhaustion or re-wrapped.
        protocol = LeaderElectionProtocol()
        engine = SimulationEngine(
            TrivialTwoWaySimulator(protocol),
            TW,
            self.ExplodingScheduler(Run.from_pairs([(0, 1), (1, 2)]), fail_at=1),
        )
        with pytest.raises(ValueError, match="real scheduler bug"):
            run_until_stable(
                engine,
                Configuration([LEADER] * 3),
                predicate=lambda c: False,
                max_steps=100,
            )


class TestRunUntilStableTracePolicies:
    def _engine(self, seed=11):
        protocol = LeaderElectionProtocol()
        return SimulationEngine(
            TrivialTwoWaySimulator(protocol), TW, RandomScheduler(6, seed=seed)
        )

    def test_counts_only_matches_full(self):
        full = run_until_stable(
            self._engine(),
            Configuration([LEADER] * 6),
            predicate=lambda c: c.count(LEADER) == 1,
            max_steps=10_000,
            stability_window=20,
        )
        counts = run_until_stable(
            self._engine(),
            Configuration([LEADER] * 6),
            predicate=lambda c: c.count(LEADER) == 1,
            max_steps=10_000,
            stability_window=20,
            trace_policy="counts-only",
        )
        assert counts.trace is None
        assert counts.converged == full.converged
        assert counts.steps_executed == full.steps_executed
        assert counts.steps_to_convergence == full.steps_to_convergence
        assert counts.final_configuration == full.final_configuration
        assert counts.omissions == full.omissions

    def test_incremental_predicate_matches_plain_predicate(self):
        plain = run_until_stable(
            self._engine(),
            Configuration([LEADER] * 6),
            predicate=lambda c: c.count(LEADER) == 1,
            max_steps=10_000,
            stability_window=10,
        )
        incremental = run_until_stable(
            self._engine(),
            Configuration([LEADER] * 6),
            predicate=AgentCountPredicate(lambda s: s == LEADER, target=1),
            max_steps=10_000,
            stability_window=10,
        )
        assert incremental.converged == plain.converged
        assert incremental.steps_executed == plain.steps_executed
        assert incremental.steps_to_convergence == plain.steps_to_convergence
        assert incremental.final_configuration == plain.final_configuration


class TestParallelRepeatExperiment:
    def _workload(self, jobs, runs=6):
        protocol = ExactMajorityProtocol()
        program = TrivialTwoWaySimulator(protocol)
        initial = protocol.initial_configuration(5, 2)
        return repeat_experiment(
            program,
            TW,
            initial,
            predicate=lambda c: all(protocol.output(s) == A for s in c),
            runs=runs,
            max_steps=20_000,
            base_seed=42,
            jobs=jobs,
        )

    def test_parallel_merge_is_deterministic(self):
        sequential = self._workload(jobs=1)
        parallel = self._workload(jobs=4)
        assert parallel.runs == sequential.runs
        assert parallel.successes == sequential.successes
        assert parallel.convergence_steps == sequential.convergence_steps
        assert parallel.failures == sequential.failures

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            self._workload(jobs=0)

    def test_shared_incremental_predicate_rejected_in_parallel(self):
        protocol = ExactMajorityProtocol()
        program = TrivialTwoWaySimulator(protocol)
        initial = protocol.initial_configuration(5, 2)
        with pytest.raises(ValueError, match="predicate_factory"):
            repeat_experiment(
                program,
                TW,
                initial,
                predicate=AgentCountPredicate(lambda s: protocol.output(s) == A),
                runs=4,
                jobs=2,
            )

    def test_parallel_incremental_predicates_via_factory(self):
        protocol = ExactMajorityProtocol()
        program = TrivialTwoWaySimulator(protocol)
        initial = protocol.initial_configuration(5, 2)
        result = repeat_experiment(
            program,
            TW,
            initial,
            predicate=None,
            predicate_factory=lambda run_index: AgentCountPredicate(
                lambda s: protocol.output(s) == A
            ),
            runs=4,
            max_steps=20_000,
            base_seed=42,
            jobs=2,
        )
        assert result.all_succeeded
