"""Unit tests for the end-to-end simulation verifier."""

import pytest

from repro.core.sid import SIDSimulator
from repro.core.skno import SKnOSimulator
from repro.core.trivial import TrivialTwoWaySimulator
from repro.core.verification import verify_simulation
from repro.engine.engine import SimulationEngine
from repro.interaction.models import IO, TW, get_model
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.state import Configuration
from repro.scheduling.runs import Run
from repro.scheduling.scheduler import RandomScheduler


@pytest.fixture
def protocol():
    return PairingProtocol()


class TestReportFields:
    def test_empty_trace_is_ok_but_no_progress(self, protocol):
        simulator = SIDSimulator(protocol)
        config = simulator.initial_configuration(Configuration(["c", "p"]))
        engine = SimulationEngine(simulator, IO, RandomScheduler(2, seed=0))
        trace = engine.run(config, max_steps=0)
        report = verify_simulation(simulator, trace)
        assert report.ok
        assert not report.made_progress
        assert report.matched_pairs == 0
        assert report.event_count == 0

    def test_summary_mentions_status(self, protocol):
        simulator = SIDSimulator(protocol)
        config = simulator.initial_configuration(Configuration(["c", "p"]))
        engine = SimulationEngine(simulator, IO, RandomScheduler(2, seed=0))
        report = verify_simulation(simulator, engine.run(config, max_steps=50))
        assert "OK" in report.summary() or "VIOLATION" in report.summary()
        assert report.protocol_name == "pairing"

    def test_counts_omissions(self, protocol):
        from repro.interaction.omissions import REACTOR_OMISSION
        from repro.scheduling.runs import Interaction

        simulator = SKnOSimulator(protocol, omission_bound=1)
        config = simulator.initial_configuration(Configuration(["c", "p"]))
        engine = SimulationEngine(simulator, get_model("I3"), scheduler=None)
        run = Run([Interaction(0, 1, omission=REACTOR_OMISSION), Interaction(1, 0)])
        trace = engine.replay(config, run)
        report = verify_simulation(simulator, trace)
        assert report.omissions == 1


class TestPositiveVerification:
    def test_sid_long_random_run_verifies(self, protocol):
        simulator = SIDSimulator(protocol)
        config = simulator.initial_configuration(Configuration(["c", "c", "p", "p", "p"]))
        engine = SimulationEngine(simulator, IO, RandomScheduler(5, seed=21))
        trace = engine.run(config, max_steps=4_000)
        report = verify_simulation(simulator, trace)
        assert report.ok
        assert report.made_progress

    def test_skno_long_random_run_verifies(self, protocol):
        simulator = SKnOSimulator(protocol, omission_bound=1)
        config = simulator.initial_configuration(Configuration(["c", "c", "p", "p", "p"]))
        engine = SimulationEngine(simulator, get_model("I3"), RandomScheduler(5, seed=22))
        trace = engine.run(config, max_steps=6_000)
        report = verify_simulation(simulator, trace)
        assert report.ok
        assert report.made_progress

    def test_trivial_simulator_verifies(self, protocol):
        simulator = TrivialTwoWaySimulator(protocol)
        config = simulator.initial_configuration(Configuration(["c", "p", "c"]))
        engine = SimulationEngine(simulator, TW, RandomScheduler(3, seed=2))
        report = verify_simulation(simulator, engine.run(config, max_steps=200))
        assert report.ok


class TestNegativeVerification:
    def test_broken_simulator_is_caught(self, protocol):
        """A simulator that mangles the starter-side transition must be flagged."""

        class BrokenSID(SIDSimulator):
            def _observe(self, starter, reactor):
                new_state, events = super()._observe(starter, reactor)
                broken_events = []
                for event in events:
                    if event.role == "starter" and event.changed:
                        # Claim a transition that delta_P does not produce.
                        event = type(event)(
                            step=event.step, agent=event.agent, role=event.role,
                            pre_sim=event.pre_sim, post_sim="cs",
                            partner_pre_sim=event.partner_pre_sim,
                            partner_agent=event.partner_agent, key=event.key)
                    broken_events.append(event)
                return new_state, broken_events

        simulator = BrokenSID(protocol)
        config = simulator.initial_configuration(Configuration(["c", "p"]))
        engine = SimulationEngine(simulator, IO, RandomScheduler(2, seed=5))
        trace = engine.run(config, max_steps=200)
        report = verify_simulation(simulator, trace)
        assert not report.ok
        assert report.invalid_pairs > 0 or report.errors

    def test_naive_projection_cannot_pass_as_simulation(self, protocol):
        """Running only the reactor half of delta violates the derived-run check.

        This is the motivating negative example: without a simulator, a
        two-way protocol run on a one-way model double-fires transitions.
        """
        # The core fact the verifier relies on: the naive projection lets two
        # consumers turn critical off one producer, which no perfect matching
        # can explain (reactor-side events alone cannot be paired together).
        from repro.core.events import REACTOR_ROLE, Matching, SimulationEvent

        events = [
            SimulationEvent(step=0, agent=1, role=REACTOR_ROLE, pre_sim="c",
                            post_sim="cs", partner_pre_sim="p", key=("p", "c")),
            SimulationEvent(step=1, agent=2, role=REACTOR_ROLE, pre_sim="c",
                            post_sim="cs", partner_pre_sim="p", key=("p", "c")),
        ]
        matching = Matching.greedy(protocol, events)
        # Reactor-side events alone can never be matched with each other.
        assert matching.pairs == []
        assert len(matching.changed_unmatched_events()) == 2


class TestInFlightDeferral:
    """Matched pairs depending on in-flight events are deferred, not violations.

    Regression for a false positive found by hypothesis: a matched *silent*
    pair ``(bot, p) -> (bot, p)`` whose ``bot`` agent was produced by a
    still-in-flight ``(c, p) -> (cs, bot)`` interaction (the starter half
    never committed within the prefix) made the anonymous derived-run replay
    report "no agent in simulated state 'bot' is available".
    """

    def test_silent_pair_enabled_by_in_flight_event_is_deferred(self, protocol):
        from repro.scheduling.runs import Interaction

        simulator = SKnOSimulator(protocol, omission_bound=0)
        config = simulator.initial_configuration(Configuration(["c", "p", "p"]))
        run = Run([Interaction(s, r) for s, r in
                   [(0, 1), (1, 2), (1, 2), (2, 1), (2, 0), (0, 1)]])
        engine = SimulationEngine(simulator, get_model("I3"), scheduler=None)
        trace = engine.replay(config, run)
        report = verify_simulation(simulator, trace)
        assert report.ok, report.errors
        assert report.derived_consistent
        assert report.deferred_pairs == 1
        assert report.unmatched_changed_events == 1

    def test_exact_replay_unchanged_without_in_flight_events(self, protocol):
        # A clean complete run must still verify exactly, with no deferrals.
        simulator = SKnOSimulator(protocol, omission_bound=0)
        config = simulator.initial_configuration(Configuration(["c"] * 2 + ["p"] * 2))
        engine = SimulationEngine(simulator, get_model("I3"), RandomScheduler(4, seed=1))
        trace = engine.run(config, max_steps=2_000)
        report = verify_simulation(simulator, trace)
        assert report.ok
        if report.unmatched_changed_events == 0:
            assert report.deferred_pairs == 0

    def test_truly_unavailable_state_still_flagged(self, protocol):
        # The softening must not mask hard violations: a derived pair whose
        # pre-state exists in neither the multiset nor the in-flight pool is
        # still an error.
        from repro.core.events import DerivedStep, replay_derived_run_anonymous

        derived = [DerivedStep(
            starter_agent=0, reactor_agent=1,
            starter_pre="bot", reactor_pre="p",
            starter_post="bot", reactor_post="p",
            starter_event_index=0, reactor_event_index=1,
        )]
        report = replay_derived_run_anonymous(
            protocol, Configuration(["c", "p"]), derived, in_flight_events=())
        assert not report.consistent
        assert "no agent in simulated state 'bot'" in report.errors[0]
        assert report.deferred_pairs == 0

    def test_agent_cannot_supply_both_stale_pre_and_in_flight_post(self, protocol):
        # Soundness: consuming an in-flight post-state debits the agent's
        # pre-state from the multiset.  With a single 'p' agent whose
        # in-flight update is p -> bot, a pair needing BOTH a 'p' and a
        # 'bot' is unrealisable in any extension and must stay a violation.
        from repro.core.events import DerivedStep, replay_derived_run_anonymous

        derived = [DerivedStep(
            starter_agent=0, reactor_agent=1,
            starter_pre="bot", reactor_pre="p",
            starter_post="bot", reactor_post="p",
            starter_event_index=0, reactor_event_index=1,
        )]
        report = replay_derived_run_anonymous(
            protocol, Configuration(["p"]), derived, in_flight_events=[("p", "bot")])
        assert not report.consistent
        assert report.deferred_pairs == 0
        # With a second 'p' agent present the pair becomes realisable
        # (one agent completes p -> bot, the other supplies 'p') and is
        # deferred instead of flagged.
        report = replay_derived_run_anonymous(
            protocol, Configuration(["p", "p"]), derived, in_flight_events=[("p", "bot")])
        assert report.consistent
        assert report.deferred_pairs == 1
