"""Unit tests for the trivial TW baseline simulator."""

import pytest

from repro.core.trivial import TrivialTwoWaySimulator
from repro.core.verification import verify_simulation
from repro.engine.engine import SimulationEngine
from repro.interaction.models import TW
from repro.protocols.catalog.majority import ExactMajorityProtocol
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.state import Configuration
from repro.scheduling.runs import Run
from repro.scheduling.scheduler import RandomScheduler


@pytest.fixture
def protocol():
    return PairingProtocol()


@pytest.fixture
def simulator(protocol):
    return TrivialTwoWaySimulator(protocol)


class TestBasics:
    def test_states_are_protocol_states(self, simulator):
        assert simulator.initial_state("c") == "c"
        assert simulator.project("p") == "p"

    def test_initial_state_validation(self, simulator):
        with pytest.raises(Exception):
            simulator.initial_state("bogus")

    def test_fs_fr_match_protocol(self, simulator, protocol):
        assert simulator.fs("c", "p") == protocol.delta("c", "p")[0]
        assert simulator.fr("c", "p") == protocol.delta("c", "p")[1]

    def test_compatible_models(self, simulator):
        assert simulator.compatible_models == ("TW",)


class TestEventsAndMatching:
    def test_every_interaction_is_one_matched_pair(self, simulator):
        config = simulator.initial_configuration(Configuration(["c", "p", "c"]))
        engine = SimulationEngine(simulator, TW, scheduler=None)
        trace = engine.replay(config, Run.from_pairs([(0, 1), (2, 1), (0, 2)]))
        matching = simulator.extract_matching(trace)
        assert len(matching.events) == 6
        assert len(matching.pairs) == 3
        assert matching.invalid_pairs(simulator.protocol) == []
        assert matching.unmatched == []

    def test_verification_ok_on_random_run(self):
        protocol = ExactMajorityProtocol()
        simulator = TrivialTwoWaySimulator(protocol)
        config = simulator.initial_configuration(protocol.initial_configuration(4, 3))
        engine = SimulationEngine(simulator, TW, RandomScheduler(7, seed=4))
        trace = engine.run(config, max_steps=500)
        report = verify_simulation(simulator, trace)
        assert report.ok
        assert report.matched_pairs == 500
        assert report.unmatched_changed_events == 0

    def test_derived_execution_equals_real_execution(self, simulator):
        """For the trivial simulator the derived run IS the physical run."""
        config = simulator.initial_configuration(Configuration(["c", "p"]))
        engine = SimulationEngine(simulator, TW, scheduler=None)
        trace = engine.replay(config, Run.from_pairs([(0, 1)]))
        report = verify_simulation(simulator, trace)
        assert report.ok
        assert report.final_simulated_configuration == trace.final_configuration
