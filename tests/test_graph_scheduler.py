"""Unit and integration tests for interaction-graph-restricted scheduling."""

import networkx as nx
import pytest

from repro.core.sid import SIDSimulator
from repro.core.skno import SKnOSimulator
from repro.core.trivial import TrivialTwoWaySimulator
from repro.core.verification import verify_simulation
from repro.engine.convergence import run_until_stable
from repro.engine.engine import SimulationEngine
from repro.interaction.models import IO, TW, get_model
from repro.protocols.catalog.leader_election import LEADER, LeaderElectionProtocol
from repro.protocols.catalog.epidemic import INFORMED, EpidemicProtocol
from repro.protocols.state import Configuration
from repro.scheduling.graph_scheduler import (
    GraphScheduler,
    InteractionGraphError,
    complete_graph_scheduler,
    random_graph_scheduler,
    ring_scheduler,
    star_scheduler,
    validate_interaction_graph,
)


class TestValidation:
    def test_valid_graph(self):
        validate_interaction_graph(nx.cycle_graph(4), 4)

    def test_too_few_agents(self):
        with pytest.raises(InteractionGraphError):
            validate_interaction_graph(nx.empty_graph(1), 1)

    def test_wrong_node_labels(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(InteractionGraphError):
            validate_interaction_graph(graph, 2)

    def test_self_loop_rejected(self):
        graph = nx.complete_graph(3)
        graph.add_edge(1, 1)
        with pytest.raises(InteractionGraphError):
            validate_interaction_graph(graph, 3)

    def test_disconnected_rejected(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        with pytest.raises(InteractionGraphError):
            validate_interaction_graph(graph, 4)

    def test_edgeless_rejected(self):
        with pytest.raises(InteractionGraphError):
            validate_interaction_graph(nx.empty_graph(3), 3)


class TestGraphScheduler:
    def test_only_graph_edges_are_scheduled(self):
        scheduler = ring_scheduler(5, seed=0)
        allowed = set(scheduler.ordered_pairs())
        for step in range(500):
            interaction = scheduler.next_interaction(step)
            assert interaction.pair in allowed

    def test_ring_ordered_pairs(self):
        scheduler = ring_scheduler(4, seed=0)
        assert set(scheduler.ordered_pairs()) == {
            (0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2), (0, 3), (3, 0)}

    def test_star_centre_participates_in_everything(self):
        scheduler = star_scheduler(5, seed=1)
        for step in range(200):
            interaction = scheduler.next_interaction(step)
            assert 0 in (interaction.starter, interaction.reactor)

    def test_complete_graph_covers_all_pairs(self):
        scheduler = complete_graph_scheduler(4, seed=2)
        seen = {scheduler.next_interaction(step).pair for step in range(2000)}
        assert seen == {(s, r) for s in range(4) for r in range(4) if s != r}

    def test_deterministic_with_seed_and_reset(self):
        scheduler = GraphScheduler(nx.cycle_graph(5), seed=7)
        first = [scheduler.next_interaction(i) for i in range(50)]
        scheduler.reset()
        second = [scheduler.next_interaction(i) for i in range(50)]
        assert first == second

    def test_random_graph_is_connected(self):
        scheduler = random_graph_scheduler(8, edge_probability=0.4, seed=3)
        assert nx.is_connected(scheduler.graph)

    def test_random_graph_invalid_probability(self):
        with pytest.raises(InteractionGraphError):
            random_graph_scheduler(5, edge_probability=0.0)

    def test_both_orientations_occur(self):
        scheduler = ring_scheduler(3, seed=5)
        pairs = {scheduler.next_interaction(step).pair for step in range(300)}
        assert (0, 1) in pairs and (1, 0) in pairs


class TestProtocolsOnRestrictedTopologies:
    def test_epidemic_spreads_on_a_ring(self):
        protocol = EpidemicProtocol()
        program = TrivialTwoWaySimulator(protocol)
        n = 8
        engine = SimulationEngine(program, TW, ring_scheduler(n, seed=1))
        trace = engine.run(
            EpidemicProtocol.initial_configuration(1, n - 1),
            max_steps=10_000,
            stop_condition=EpidemicProtocol.all_informed,
        )
        assert EpidemicProtocol.all_informed(trace.final_configuration)

    def test_epidemic_on_a_star(self):
        """The hub relays the rumour to every spoke (any connected graph suffices)."""
        protocol = EpidemicProtocol()
        program = TrivialTwoWaySimulator(protocol)
        n = 6
        engine = SimulationEngine(program, TW, star_scheduler(n, seed=2))
        result = run_until_stable(
            engine, EpidemicProtocol.initial_configuration(1, n - 1),
            predicate=EpidemicProtocol.all_informed,
            max_steps=20_000,
        )
        assert result.converged

    def test_leader_election_fails_on_a_star(self):
        """Restricted topologies genuinely change computability: with rule
        (L, L) -> (F, L), spoke leaders can never meet each other, so once the
        hub is demoted the population is stuck with several leaders."""
        protocol = LeaderElectionProtocol()
        program = TrivialTwoWaySimulator(protocol)
        n = 6
        # Deterministic stuck configuration: the hub is already a follower.
        config = Configuration(["F"] + [LEADER] * (n - 1))
        engine = SimulationEngine(program, TW, star_scheduler(n, seed=2))
        trace = engine.run(config, max_steps=5_000)
        assert trace.final_configuration.count(LEADER) == n - 1

    def test_skno_simulation_on_a_ring(self):
        """SKnO is topology-agnostic: it still simulates correctly on a sparse graph."""
        protocol = LeaderElectionProtocol()
        simulator = SKnOSimulator(protocol, omission_bound=0)
        n = 6
        config = simulator.initial_configuration(protocol.initial_configuration(n))
        engine = SimulationEngine(simulator, get_model("IT"), ring_scheduler(n, seed=3))
        result = run_until_stable(
            engine, config,
            predicate=lambda c: sum(1 for s in c if simulator.project(s) == LEADER) == 1,
            max_steps=150_000, stability_window=200,
        )
        report = verify_simulation(simulator, result.trace)
        assert result.converged
        assert report.ok, report.errors

    def test_sid_simulation_on_a_star(self):
        """SID simulates the two-way epidemic on a star: the hub relays everything."""
        protocol = EpidemicProtocol()
        simulator = SIDSimulator(protocol)
        n = 6
        config = simulator.initial_configuration(
            EpidemicProtocol.initial_configuration(1, n - 1))
        engine = SimulationEngine(simulator, IO, star_scheduler(n, seed=4))
        result = run_until_stable(
            engine, config,
            predicate=lambda c: all(simulator.project(s) == INFORMED for s in c),
            max_steps=200_000, stability_window=200,
        )
        report = verify_simulation(simulator, result.trace)
        assert result.converged
        assert report.ok, report.errors

    def test_sparse_topology_is_slower_than_complete(self):
        """Shape check: restricting the topology slows dissemination down."""
        protocol = EpidemicProtocol()
        program = TrivialTwoWaySimulator(protocol)
        n = 10

        def steps_to_full(scheduler):
            engine = SimulationEngine(program, TW, scheduler)
            trace = engine.run(
                EpidemicProtocol.initial_configuration(1, n - 1),
                max_steps=50_000,
                stop_condition=EpidemicProtocol.all_informed,
            )
            assert EpidemicProtocol.all_informed(trace.final_configuration)
            return len(trace)

        complete_steps = [steps_to_full(complete_graph_scheduler(n, seed=s)) for s in range(5)]
        ring_steps = [steps_to_full(ring_scheduler(n, seed=s)) for s in range(5)]
        assert sum(ring_steps) > sum(complete_steps)
