"""Unit tests for the SKnO simulator's token mechanics (Section 4.1)."""

import pytest

from repro.core.base import SimulatorError
from repro.core.skno import (
    AVAILABLE,
    PENDING,
    ChangeToken,
    JokerToken,
    SKnOSimulator,
    SKnOState,
    StateToken,
)
from repro.interaction.models import get_model
from repro.interaction.omissions import NO_OMISSION, REACTOR_OMISSION
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.state import Configuration


@pytest.fixture
def protocol():
    return PairingProtocol()


@pytest.fixture
def simulator(protocol):
    return SKnOSimulator(protocol, omission_bound=1)


class TestConstruction:
    def test_negative_bound_rejected(self, protocol):
        with pytest.raises(SimulatorError):
            SKnOSimulator(protocol, omission_bound=-1)

    def test_unknown_variant_rejected(self, protocol):
        with pytest.raises(SimulatorError):
            SKnOSimulator(protocol, variant="I9")

    def test_requires_population_protocol(self):
        with pytest.raises(SimulatorError):
            SKnOSimulator("not a protocol")

    def test_run_length(self, protocol):
        assert SKnOSimulator(protocol, omission_bound=0).run_length == 1
        assert SKnOSimulator(protocol, omission_bound=3).run_length == 4

    def test_compatible_models(self, protocol):
        assert "IT" in SKnOSimulator(protocol, omission_bound=0).compatible_models
        assert SKnOSimulator(protocol, omission_bound=2).compatible_models == ("I3",)
        assert SKnOSimulator(protocol, omission_bound=2, variant="I4").compatible_models == ("I4",)

    def test_name_and_describe(self, simulator):
        assert "SKnO" in simulator.name
        assert "pairing" in simulator.describe()

    def test_initial_state(self, simulator):
        state = simulator.initial_state("c")
        assert state.sim == "c"
        assert state.phase == AVAILABLE
        assert state.sending == ()
        assert state.owed == ()

    def test_initial_state_validates_protocol_initial_states(self, simulator):
        with pytest.raises(Exception):
            simulator.initial_state("not-a-state")

    def test_initial_configuration_and_projection(self, simulator):
        p_config = Configuration(["c", "p", "c"])
        config = simulator.initial_configuration(p_config)
        assert simulator.project_configuration(config) == p_config


class TestStarterBehaviour:
    def test_available_empty_queue_becomes_pending_and_sends(self, simulator):
        state = simulator.initial_state("p")
        token = simulator.outgoing_token(state)
        after = simulator.g(state)
        assert token == StateToken("p", 1)
        assert after.phase == PENDING
        assert after.sending == (StateToken("p", 2),)

    def test_pending_starter_just_pops(self, simulator):
        state = SKnOState(sim="p", phase=PENDING, sending=(StateToken("p", 2),))
        after = simulator.g(state)
        assert after.phase == PENDING
        assert after.sending == ()

    def test_pending_starter_with_empty_queue_sends_nothing(self, simulator):
        state = SKnOState(sim="p", phase=PENDING, sending=())
        assert simulator.outgoing_token(state) is None
        assert simulator.g(state) == state

    def test_available_with_nonempty_queue_does_not_go_pending(self, simulator):
        state = SKnOState(sim="p", phase=AVAILABLE, sending=(JokerToken(),))
        after = simulator.g(state)
        assert after.phase == AVAILABLE
        assert after.sending == ()


class TestReactorBehaviour:
    def test_reactor_enqueues_received_token(self, simulator):
        starter = SKnOState(sim="p", phase=PENDING, sending=(StateToken("p", 1),))
        reactor = SKnOState(sim="c", phase=PENDING, sending=())
        after = simulator.f(starter, reactor)
        assert StateToken("p", 1) in after.sending

    def test_complete_run_triggers_simulated_transition(self, simulator):
        """A consumer holding <p,1> that receives <p,2> commits delta(p, c)[1] = cs."""
        starter = SKnOState(sim="p", phase=PENDING, sending=(StateToken("p", 2),))
        reactor = SKnOState(sim="c", phase=AVAILABLE, sending=(StateToken("p", 1),))
        after = simulator.f(starter, reactor)
        assert after.sim == "cs"
        assert after.phase == AVAILABLE
        # The used tokens are withdrawn and a change run is emitted.
        assert StateToken("p", 1) not in after.sending
        assert ChangeToken("p", "c", 1) in after.sending
        assert ChangeToken("p", "c", 2) in after.sending

    def test_change_run_completes_pending_starter(self, simulator):
        """A pending producer that assembles the change run commits delta(p, c)[0] = bot."""
        starter = SKnOState(sim="c", phase=AVAILABLE, sending=(ChangeToken("p", "c", 2),))
        reactor = SKnOState(
            sim="p", phase=PENDING, sending=(ChangeToken("p", "c", 1),)
        )
        after = simulator.f(starter, reactor)
        assert after.sim == "bot"
        assert after.phase == AVAILABLE

    def test_preliminary_check_retracts_own_run(self, simulator):
        """A pending agent that reassembles its own state run becomes available again."""
        starter = SKnOState(sim="x", phase=PENDING, sending=(StateToken("c", 1),))
        reactor = SKnOState(sim="c", phase=PENDING, sending=(StateToken("c", 2),))
        after = simulator.f(starter, reactor)
        assert after.phase == AVAILABLE
        assert after.sim == "c"
        assert StateToken("c", 1) not in after.sending
        assert StateToken("c", 2) not in after.sending

    def test_incomplete_run_does_nothing(self, simulator):
        starter = SKnOState(sim="p", phase=PENDING, sending=(StateToken("p", 1),))
        reactor = SKnOState(sim="c", phase=AVAILABLE, sending=())
        after = simulator.f(starter, reactor)
        assert after.sim == "c"
        assert after.sending == (StateToken("p", 1),)

    def test_joker_completes_a_run(self, simulator):
        """A joker may stand in for the missing token of a run."""
        starter = SKnOState(sim="p", phase=PENDING, sending=(StateToken("p", 2),))
        reactor = SKnOState(sim="c", phase=AVAILABLE, sending=(JokerToken(),))
        after = simulator.f(starter, reactor)
        assert after.sim == "cs"
        # The slot the joker filled is remembered in the owed multiset.
        assert StateToken("p", 1) in after.owed

    def test_late_original_token_becomes_joker(self, simulator):
        """When the real token for an owed slot arrives, it is converted into a joker."""
        starter = SKnOState(sim="x", phase=PENDING, sending=(StateToken("p", 1),))
        reactor = SKnOState(sim="cs", phase=AVAILABLE, sending=(), owed=(StateToken("p", 1),))
        after = simulator.f(starter, reactor)
        assert after.owed == ()
        assert after.joker_count() == 1
        assert StateToken("p", 1) not in after.sending


class TestOmissionHandling:
    def test_i3_reactor_omission_creates_joker(self, simulator):
        reactor = simulator.initial_state("c")
        after = simulator.on_reactor_omission(reactor)
        assert after.joker_count() == 1

    def test_i3_starter_omission_handler_is_identity(self, simulator):
        starter = simulator.initial_state("p")
        assert simulator.on_starter_omission(starter) == starter

    def test_i4_starter_omission_creates_joker_without_popping(self, protocol):
        simulator = SKnOSimulator(protocol, omission_bound=1, variant="I4")
        starter = SKnOState(sim="p", phase=PENDING, sending=(StateToken("p", 2),))
        after = simulator.on_starter_omission(starter)
        assert after.joker_count() == 1
        assert StateToken("p", 2) in after.sending

    def test_i4_reactor_omission_handler_is_identity(self, protocol):
        simulator = SKnOSimulator(protocol, omission_bound=1, variant="I4")
        reactor = simulator.initial_state("c")
        assert simulator.on_reactor_omission(reactor) == reactor

    def test_model_level_omission_in_i3(self, simulator):
        """Under I3, an omissive interaction pops the starter and gives the reactor a joker."""
        model = get_model("I3")
        starter = simulator.initial_state("p")
        reactor = simulator.initial_state("c")
        new_starter, new_reactor = model.apply(simulator, starter, reactor, REACTOR_OMISSION)
        assert new_starter.phase == PENDING          # it tried to send
        assert new_reactor.joker_count() == 1        # the loss was detected

    def test_token_conservation_under_i3_omission(self, simulator):
        """(real tokens in flight) + (jokers) per run never exceeds o + 1."""
        model = get_model("I3")
        starter = simulator.initial_state("p")
        reactor = simulator.initial_state("c")
        new_starter, new_reactor = model.apply(simulator, starter, reactor, REACTOR_OMISSION)
        remaining = sum(
            1 for token in new_starter.sending if isinstance(token, StateToken)
        )
        jokers = new_reactor.joker_count()
        assert remaining + jokers == simulator.run_length


class TestEventExtraction:
    def test_two_agent_full_simulation_produces_matched_pair(self, simulator):
        from repro.engine.engine import SimulationEngine
        from repro.scheduling.runs import Run

        model = get_model("I3")
        config = Configuration(
            [simulator.initial_state("p"), simulator.initial_state("c")]
        )
        engine = SimulationEngine(simulator, model, scheduler=None)
        run = Run.from_pairs([(0, 1), (0, 1), (1, 0), (1, 0)])
        trace = engine.replay(config, run)
        assert simulator.project_configuration(trace.final_configuration) == Configuration(
            ["bot", "cs"]
        )
        matching = simulator.extract_matching(trace)
        assert len(matching.pairs) == 1
        assert matching.invalid_pairs(simulator.protocol) == []

    def test_events_have_correct_roles(self, simulator):
        from repro.engine.engine import SimulationEngine
        from repro.scheduling.runs import Run

        model = get_model("I3")
        config = Configuration(
            [simulator.initial_state("p"), simulator.initial_state("c")]
        )
        engine = SimulationEngine(simulator, model, scheduler=None)
        trace = engine.replay(config, Run.from_pairs([(0, 1), (0, 1), (1, 0), (1, 0)]))
        events = simulator.extract_events(trace)
        roles = [event.role for event in events]
        assert roles == ["reactor", "starter"]
        assert events[0].agent == 1 and events[0].post_sim == "cs"
        assert events[1].agent == 0 and events[1].post_sim == "bot"
