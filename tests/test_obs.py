"""Observability-layer tests: recorder semantics, the JSONL sink, the
injection seams (engine, fan-out, campaign), and the determinism pin —
campaign stores and rendered reports are **byte-identical** with
observability on or off, across the serial walk, the parallel executor,
and the process+shm fan-out.  Telemetry is write-only (RPL007); these
tests are the runtime half of that contract."""

from __future__ import annotations

import io
import json

import pytest

from repro.campaign.planner import plan_campaign
from repro.campaign.queue import CampaignQueue
from repro.campaign.report import render_report
from repro.campaign.runner import build_cell_record, run_campaign
from repro.campaign.spec import campaign_from_dict
from repro.campaign.store import ResultStore
from repro.cli import main
from repro.engine.experiment import repeat_experiment
from repro.engine.transport import shm_unavailable_reason
from repro.obs import (
    NULL_RECORDER,
    SCHEMA_VERSION,
    JsonlSink,
    MetricsRecorder,
    MultiRecorder,
    NullRecorder,
    ProgressReporter,
    Recorder,
    SinkError,
    get_recorder,
    read_sink,
    recording,
    set_recorder,
    summarize_records,
)
from repro.protocols.registry import ExperimentSpec


def small_campaign(name: str = "obs-grid") -> dict:
    """A fast four-cell campaign for the byte-identity pins."""
    return {
        "name": name,
        "base": {"protocol": "epidemic", "backend": "python"},
        "axes": {
            "scheduler": ["random", "round-robin"],
            "population": [4, 6],
        },
        "runs": 2,
        "base_seed": 3,
        "max_steps": 20_000,
        "stability_window": 8,
    }


def store_bytes(path) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


# ---------------------------------------------------------------------------
# NullRecorder — the zero-overhead default
# ---------------------------------------------------------------------------


class TestNullRecorder:
    def test_default_recorder_is_the_null_singleton(self):
        assert get_recorder() is NULL_RECORDER
        assert isinstance(NULL_RECORDER, NullRecorder)

    def test_all_instruments_are_noops(self):
        assert NULL_RECORDER.counter("x") is None
        assert NULL_RECORDER.counter("x", 5) is None
        assert NULL_RECORDER.gauge("x", 1.0) is None
        assert NULL_RECORDER.observe("x", 1.0) is None
        assert NULL_RECORDER.event("x", detail="y") is None
        assert NULL_RECORDER.close() is None

    def test_null_timer_is_shared_and_stateless(self):
        first = NULL_RECORDER.timer("a")
        second = NULL_RECORDER.timer("b")
        assert first is second  # no per-call allocation
        with first:
            pass  # no clock reads, no observations

    def test_null_recorder_holds_no_state(self):
        assert not vars(NULL_RECORDER)

    def test_set_recorder_returns_previous(self):
        replacement = MetricsRecorder()
        previous = set_recorder(replacement)
        try:
            assert previous is NULL_RECORDER
            assert get_recorder() is replacement
        finally:
            set_recorder(previous)

    def test_recording_restores_and_closes(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "s.jsonl"))
        recorder = MetricsRecorder(sink=sink)
        with recording(recorder) as active:
            assert active is recorder
            assert get_recorder() is recorder
        assert get_recorder() is NULL_RECORDER
        # close() ran: the sink no longer accepts writes.
        before = store_bytes(tmp_path / "s.jsonl")
        sink.write({"kind": "event", "event": "late"})
        assert store_bytes(tmp_path / "s.jsonl") == before

    def test_recording_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with recording(MetricsRecorder()):
                raise RuntimeError("boom")
        assert get_recorder() is NULL_RECORDER


# ---------------------------------------------------------------------------
# MetricsRecorder — aggregation, events, thread-safe folding
# ---------------------------------------------------------------------------


class TestMetricsRecorder:
    def test_counters_accumulate_and_gauges_overwrite(self):
        recorder = MetricsRecorder()
        recorder.counter("runs")
        recorder.counter("runs", 4)
        recorder.gauge("width", 2.0)
        recorder.gauge("width", 8.0)
        snapshot = recorder.snapshot()
        assert snapshot["counters"] == {"runs": 5}
        assert snapshot["gauges"] == {"width": 8.0}

    def test_observations_fold_into_count_total_min_max(self):
        recorder = MetricsRecorder()
        for value in (3.0, 1.0, 2.0):
            recorder.observe("latency", value)
        timers = recorder.snapshot()["timers"]
        assert timers["latency"] == {
            "count": 3, "total": 6.0, "min": 1.0, "max": 3.0}

    def test_timer_context_manager_observes(self):
        recorder = MetricsRecorder()
        with recorder.timer("block"):
            pass
        timers = recorder.snapshot()["timers"]
        assert timers["block"]["count"] == 1
        assert timers["block"]["total"] >= 0.0

    def test_event_name_field_does_not_collide(self, tmp_path):
        # Regression: campaign.start carries a name=... field, so the
        # event-name parameter must be positional-only on every recorder.
        sink = JsonlSink(str(tmp_path / "s.jsonl"))
        recorder = MultiRecorder([MetricsRecorder(sink=sink),
                                  ProgressReporter(stream=io.StringIO())])
        recorder.event("campaign.start", name="grid", total=4)
        recorder.close()
        events = [r for r in read_sink(str(tmp_path / "s.jsonl"))
                  if r["kind"] == "event"]
        assert events == [{"kind": "event", "event": "campaign.start",
                           "name": "grid", "total": 4}]

    def test_close_writes_sorted_summaries_and_is_idempotent(self, tmp_path):
        path = tmp_path / "s.jsonl"
        recorder = MetricsRecorder(sink=JsonlSink(str(path)))
        recorder.counter("b.counter")
        recorder.counter("a.counter", 2)
        recorder.gauge("g", 1.5)
        recorder.observe("t", 0.25)
        recorder.close()
        recorder.close()  # idempotent
        records = read_sink(str(path))
        kinds = [record["kind"] for record in records]
        assert kinds == ["meta", "counter", "counter", "gauge", "timer"]
        assert [r["name"] for r in records if r["kind"] == "counter"] == [
            "a.counter", "b.counter"]

    def test_multi_recorder_fans_out(self):
        first, second = MetricsRecorder(), MetricsRecorder()
        multi = MultiRecorder([first, second])
        multi.counter("x", 3)
        multi.gauge("g", 1.0)
        multi.observe("o", 2.0)
        assert first.snapshot() == second.snapshot()
        assert first.snapshot()["counters"] == {"x": 3}


# ---------------------------------------------------------------------------
# JSONL sink — schema, round-trip, validation
# ---------------------------------------------------------------------------


class TestJsonlSink:
    def test_round_trip_with_meta_line_and_sorted_keys(self, tmp_path):
        path = tmp_path / "s.jsonl"
        sink = JsonlSink(str(path))
        sink.write({"kind": "event", "event": "z", "beta": 1, "alpha": 2})
        sink.close()
        lines = store_bytes(path).decode().splitlines()
        assert json.loads(lines[0]) == {"kind": "meta",
                                        "schema": SCHEMA_VERSION}
        # Keys are sorted so sink bytes are deterministic given the records.
        assert lines[1] == ('{"alpha": 2, "beta": 1, "event": "z", '
                            '"kind": "event"}')
        records = read_sink(str(path))
        assert len(records) == 2

    def test_read_sink_rejects_missing_file(self, tmp_path):
        with pytest.raises(SinkError, match="cannot read"):
            read_sink(str(tmp_path / "absent.jsonl"))

    def test_read_sink_rejects_non_json_lines(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"kind": "meta", "schema": 1}\nnot json\n')
        with pytest.raises(SinkError, match="not a JSON record"):
            read_sink(str(path))

    def test_read_sink_rejects_records_without_kind(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"kind": "meta", "schema": 1}\n{"event": "x"}\n')
        with pytest.raises(SinkError, match="'kind' field"):
            read_sink(str(path))

    def test_read_sink_requires_leading_meta(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"kind": "counter", "name": "x", "value": 1}\n')
        with pytest.raises(SinkError, match="meta"):
            read_sink(str(path))

    def test_read_sink_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"kind": "meta", "schema": 999}\n')
        with pytest.raises(SinkError, match="schema 999"):
            read_sink(str(path))


# ---------------------------------------------------------------------------
# Injection seams — engine, fan-out, campaign
# ---------------------------------------------------------------------------


def _spec(**overrides) -> ExperimentSpec:
    fields = {"protocol": "epidemic", "population": 8}
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestEngineSeam:
    def test_engine_counters_recorded_per_run(self):
        recorder = MetricsRecorder()
        with recording(recorder):
            repeat_experiment(spec=_spec(), runs=3, max_steps=5_000,
                              base_seed=1, trace_policy="counts-only")
        counters = recorder.snapshot()["counters"]
        assert counters["engine.runs"] == 3
        assert counters["engine.backend.python"] == 3
        assert counters["engine.converged"] == 3
        assert counters["engine.steps"] > 0
        assert counters["engine.chunks"] >= 3
        timers = recorder.snapshot()["timers"]
        assert timers["engine.run_seconds"]["count"] == 3

    def test_chunks_counter_is_ceil_of_steps_over_chunk_size(self):
        recorder = MetricsRecorder()
        with recording(recorder):
            repeat_experiment(spec=_spec(chunk_size=7), runs=1,
                              max_steps=5_000, base_seed=1,
                              trace_policy="counts-only")
        counters = recorder.snapshot()["counters"]
        assert counters["engine.chunks"] == -(-counters["engine.steps"] // 7)


class TestFanoutSeam:
    def test_thread_fanout_records_backend_and_batch_latency(self):
        recorder = MetricsRecorder()
        with recording(recorder):
            repeat_experiment(spec=_spec(), runs=4, max_steps=5_000,
                              base_seed=1, jobs=2, jobs_backend="thread",
                              trace_policy="counts-only")
        snapshot = recorder.snapshot()
        assert snapshot["counters"]["fanout.backend.thread"] == 1
        assert snapshot["gauges"]["fanout.workers"] == 2
        assert snapshot["timers"]["fanout.batch_seconds"]["count"] == 4

    def test_sequential_path_records_its_backend(self):
        recorder = MetricsRecorder()
        with recording(recorder):
            repeat_experiment(spec=_spec(), runs=2, max_steps=5_000,
                              base_seed=1, trace_policy="counts-only")
        assert recorder.snapshot()["counters"]["fanout.backend.sequential"] == 1

    @pytest.mark.skipif(shm_unavailable_reason() is not None,
                        reason="shared memory unavailable")
    def test_process_shm_fanout_records_transport_lanes(self):
        recorder = MetricsRecorder()
        with recording(recorder):
            result = repeat_experiment(
                spec=_spec(), runs=4, max_steps=5_000, base_seed=1,
                jobs=2, jobs_backend="process", run_chunk=2,
                trace_policy="counts-only", result_transport="shm")
        counters = recorder.snapshot()["counters"]
        assert result.runs == 4
        assert counters["fanout.backend.process"] == 1
        assert counters["fanout.transport.shm"] == 1
        assert counters["transport.shm.batches"] >= 1
        assert counters["transport.shm.rows"] == 4
        assert counters["transport.shm.bytes"] > 0
        # Worker processes start with the NullRecorder, so engine counters
        # of a process fan-out are parent-side only — none leak through.
        assert "engine.runs" not in counters


class TestCampaignSeam:
    def _plan(self):
        return plan_campaign(campaign_from_dict(small_campaign()))

    def test_build_cell_record_emits_cell_event_and_metrics(self, tmp_path):
        plan = self._plan()
        sink = JsonlSink(str(tmp_path / "s.jsonl"))
        recorder = MetricsRecorder(sink=sink)
        with recording(recorder):
            record = build_cell_record(plan.cells[0], plan)
        assert record["status"] == "ok"
        counters = recorder.snapshot()["counters"]
        assert counters["campaign.cells.ok"] == 1
        recorder.close()
        events = [r for r in read_sink(str(tmp_path / "s.jsonl"))
                  if r.get("event") == "campaign.cell"]
        assert len(events) == 1
        assert events[0]["cell_id"] == plan.cells[0].cell_id
        assert events[0]["status"] == "ok"
        assert events[0]["backend"] == "python"

    def test_record_is_identical_with_and_without_recorder(self, tmp_path):
        plan = self._plan()
        bare = build_cell_record(plan.cells[0], plan)
        with recording(MetricsRecorder(sink=JsonlSink(str(tmp_path / "s.jsonl")))):
            observed = build_cell_record(plan.cells[0], plan)
        assert bare == observed  # telemetry never reaches the record

    def test_run_campaign_emits_start_end_and_skip_counters(self, tmp_path):
        plan = self._plan()
        store = ResultStore.create(str(tmp_path / "store.jsonl"),
                                   plan.campaign.name, plan.campaign_hash)
        run_campaign(plan, store)  # warm the store without telemetry
        sink_path = tmp_path / "s.jsonl"
        recorder = MetricsRecorder(sink=JsonlSink(str(sink_path)))
        with recording(recorder):
            run_campaign(plan, store)  # every cell is now a store hit
        counters = recorder.snapshot()["counters"]
        assert counters["campaign.cells.skipped"] == plan.total
        recorder.close()
        events = {r["event"] for r in read_sink(str(sink_path))
                  if r["kind"] == "event"}
        assert {"campaign.start", "campaign.end"} <= events

    def test_queue_records_depth_and_cache_hits(self, tmp_path):
        plan = self._plan()
        store = ResultStore.create(str(tmp_path / "store.jsonl"),
                                   plan.campaign.name, plan.campaign_hash)
        run_campaign(plan, store)
        queue = CampaignQueue()
        queue.submit(plan, store)
        recorder = MetricsRecorder()
        with recording(recorder):
            queue.drain()
        # Everything was already persisted: nothing enqueued, no cache
        # deliveries needed — the gauges still record the drain's shape.
        assert recorder.snapshot()["gauges"]["queue.campaigns"] == 1
        assert recorder.snapshot()["gauges"]["queue.depth"] == 0


# ---------------------------------------------------------------------------
# Progress reporter — stderr line, never stdout
# ---------------------------------------------------------------------------


class TestProgressReporter:
    def test_renders_done_total_rate_and_backend_tally(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, min_interval=0.0)
        reporter.event("campaign.start", name="grid", total=2)
        reporter.event("campaign.cell", status="ok", backend="python")
        reporter.event("campaign.cell", status="ok", backend="array")
        reporter.event("campaign.end")
        text = stream.getvalue()
        assert "2/2 cells" in text
        assert "cells/s" in text
        assert "array:1 python:1" in text
        assert text.endswith("\n")

    def test_unrelated_events_are_ignored(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, min_interval=0.0)
        reporter.event("transport.degraded", reason="x")
        assert stream.getvalue() == ""

    def test_gone_stream_ends_the_display_not_the_run(self):
        stream = io.StringIO()
        stream.close()
        reporter = ProgressReporter(stream=stream, min_interval=0.0)
        reporter.event("campaign.start", total=1)  # must not raise
        reporter.close()


# ---------------------------------------------------------------------------
# Summary fold
# ---------------------------------------------------------------------------


class TestSummary:
    def test_sections_render_for_each_record_kind(self):
        records = [
            {"kind": "meta", "schema": SCHEMA_VERSION},
            {"kind": "event", "event": "campaign.cell"},
            {"kind": "event", "event": "campaign.cell"},
            {"kind": "counter", "name": "engine.runs", "value": 4},
            {"kind": "gauge", "name": "fanout.workers", "value": 2},
            {"kind": "timer", "name": "engine.run_seconds",
             "count": 2, "total": 0.5, "min": 0.2, "max": 0.3},
        ]
        text = summarize_records(records)
        assert "counters" in text and "engine.runs" in text
        assert "gauges" in text and "fanout.workers" in text
        assert "timers (seconds)" in text and "0.2500" in text
        assert "events" in text and "campaign.cell" in text

    def test_meta_only_sink_summarises_to_a_notice(self):
        text = summarize_records([{"kind": "meta", "schema": SCHEMA_VERSION}])
        assert "no records" in text


# ---------------------------------------------------------------------------
# Byte-identity pin — store and report with metrics on vs off
# ---------------------------------------------------------------------------


class TestByteIdentity:
    def _execute(self, tmp_path, label: str, *, metrics: bool, **cli_flags):
        spec_path = tmp_path / "grid.json"
        if not spec_path.exists():
            spec_path.write_text(json.dumps(small_campaign()),
                                 encoding="utf-8")
        store_path = tmp_path / f"{label}.results.jsonl"
        argv = ["campaign", "run", str(spec_path),
                "--store", str(store_path), "--quiet"]
        for flag, value in cli_flags.items():
            argv += [f"--{flag}", str(value)]
        if metrics:
            argv += ["--metrics", str(tmp_path / f"{label}.metrics.jsonl")]
        assert main(argv) == 0
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        store = ResultStore.open(str(store_path), plan.campaign.name,
                                 plan.campaign_hash)
        return store_bytes(store_path), render_report(plan, store.cell_records)

    def test_sequential_store_and_report_bytes_match(self, tmp_path):
        bare = self._execute(tmp_path, "bare", metrics=False)
        observed = self._execute(tmp_path, "observed", metrics=True)
        assert bare == observed
        assert read_sink(str(tmp_path / "observed.metrics.jsonl"))

    def test_parallel_executor_report_bytes_match(self, tmp_path):
        bare = self._execute(tmp_path, "bare", metrics=False)
        _, observed_report = self._execute(
            tmp_path, "observed", metrics=True, **{"cell-jobs": 2})
        # Parallel appends permute the file; the report fold is the pin.
        assert observed_report == bare[1]

    @pytest.mark.skipif(shm_unavailable_reason() is not None,
                        reason="shared memory unavailable")
    def test_process_shm_report_bytes_match(self, tmp_path):
        bare = self._execute(tmp_path, "bare", metrics=False)
        _, observed_report = self._execute(
            tmp_path, "observed", metrics=True,
            **{"jobs": 2, "backend": "process", "run-chunk": 2,
               "result-transport": "shm"})
        assert observed_report == bare[1]

    def test_progress_flag_keeps_stdout_byte_identical(self, tmp_path, capsys):
        spec_path = tmp_path / "grid.json"
        spec_path.write_text(json.dumps(small_campaign()), encoding="utf-8")
        assert main(["campaign", "run", str(spec_path),
                     "--store", str(tmp_path / "a.results.jsonl"),
                     "--quiet"]) == 0
        plain = capsys.readouterr()
        assert main(["campaign", "run", str(spec_path),
                     "--store", str(tmp_path / "b.results.jsonl"),
                     "--quiet", "--progress",
                     "--metrics", str(tmp_path / "b.metrics.jsonl")]) == 0
        observed = capsys.readouterr()
        assert observed.out.replace("b.results", "a.results") == plain.out
        assert "cells/s" in observed.err  # the live line went to stderr
        assert "cells/s" not in plain.err


# ---------------------------------------------------------------------------
# CLI surfaces — repro run --metrics, repro campaign metrics
# ---------------------------------------------------------------------------


class TestCli:
    def test_run_metrics_writes_a_valid_sink(self, tmp_path, capsys):
        sink_path = tmp_path / "run.metrics.jsonl"
        code = main(["run", "--protocol", "epidemic", "--population", "8",
                     "--trace-policy", "counts-only", "--runs", "2",
                     "--metrics", str(sink_path)])
        assert code == 0
        records = read_sink(str(sink_path))
        names = {r.get("name") for r in records if r["kind"] == "counter"}
        assert "engine.runs" in names
        # stdout carries the usual table, untouched by telemetry.
        assert "successes" in capsys.readouterr().out

    def test_campaign_metrics_renders_the_summary(self, tmp_path, capsys):
        sink = JsonlSink(str(tmp_path / "s.jsonl"))
        sink.write({"kind": "counter", "name": "engine.runs", "value": 7})
        sink.close()
        assert main(["campaign", "metrics", str(tmp_path / "s.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "engine.runs" in out and "7" in out

    def test_campaign_metrics_rejects_a_non_sink(self, tmp_path):
        path = tmp_path / "not-a-sink.jsonl"
        path.write_text("{}\n")
        with pytest.raises(SystemExit):
            main(["campaign", "metrics", str(path)])

    def test_campaign_metrics_rejects_a_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "metrics", str(tmp_path / "absent.jsonl")])


# ---------------------------------------------------------------------------
# Degradation events — satellite: warnings also land in the sink
# ---------------------------------------------------------------------------


class TestDegradationEvents:
    def test_auto_degradation_warning_is_mirrored_as_an_event(
            self, tmp_path, monkeypatch):
        from repro.engine import transport

        monkeypatch.setattr(transport, "shm_unavailable_reason",
                            lambda: "no /dev/shm")
        sink_path = tmp_path / "s.jsonl"
        recorder = MetricsRecorder(sink=JsonlSink(str(sink_path)))
        with recording(recorder):
            with pytest.warns(RuntimeWarning, match="falling back"):
                resolved = transport.resolve_transport(
                    "auto", jobs_backend="process",
                    trace_policy="counts-only", process_fanout=True)
        assert resolved == "pickle"
        recorder.close()
        events = [r for r in read_sink(str(sink_path))
                  if r.get("event") == "transport.degraded"]
        assert events == [{
            "kind": "event", "event": "transport.degraded",
            "requested": "auto", "fallback": "pickle",
            "reason": "no /dev/shm"}]

    def test_backend_fallback_reasons_land_in_the_sink(self, tmp_path):
        spec = small_campaign()
        spec["base"] = {"protocol": "epidemic", "backend": "auto",
                        "simulator": "skno", "omission_bound": 1,
                        "model": "I3"}
        spec["axes"] = {"population": [4]}
        plan = plan_campaign(campaign_from_dict(spec))
        store = ResultStore.create(str(tmp_path / "store.jsonl"),
                                   plan.campaign.name, plan.campaign_hash)
        sink_path = tmp_path / "s.jsonl"
        recorder = MetricsRecorder(sink=JsonlSink(str(sink_path)))
        with recording(recorder):
            run_campaign(plan, store)
        recorder.close()
        fallbacks = [r for r in read_sink(str(sink_path))
                     if r.get("event") == "campaign.backend_fallback"]
        assert fallbacks and all(r["backend"] == "python" for r in fallbacks)
        assert all(r["reason"] for r in fallbacks)


class TestRecorderProtocol:
    def test_base_recorder_methods_are_noops_for_subclasses(self):
        class EventsOnly(Recorder):
            def __init__(self) -> None:
                self.seen = []

            def event(self, name: str, /, **fields: object) -> None:
                self.seen.append(name)

        recorder = EventsOnly()
        recorder.counter("x")
        recorder.gauge("x", 1.0)
        recorder.observe("x", 1.0)
        with recorder.timer("t"):
            pass
        recorder.event("only-this")
        assert recorder.seen == ["only-this"]
